"""Hand-written implementation of pprof's ``profile.proto`` messages.

The message and field layout follows the canonical schema from
https://github.com/google/pprof/blob/main/proto/profile.proto, so byte
streams produced by Go's ``runtime/pprof``, ``net/http/pprof``, Google Cloud
Profiler, and ``perf``'s pprof converter all parse with this module.

Repeated scalar fields are encoded *packed* (the proto3 default) but both
packed and unpacked encodings are accepted on decode, like real protobuf
runtimes.  Profiles are conventionally gzip-compressed on disk; the
:func:`loads`/:func:`dumps` helpers handle both raw and gzipped framing.

Decode and encode run on the :mod:`repro.proto.fastwire` kernels: parsing
streams zero-copy ``memoryview`` slices (sample id/value lists go through
the bulk packed decoder, string-table entries through the shared intern
pool), and serialization writes every nested message in one pass into a
single buffer.  Output is byte-identical to the original codec, preserved
as :mod:`repro.proto.reference` and asserted equal in the codec tests.
"""

from __future__ import annotations

import gc
import gzip
from dataclasses import dataclass, field
from typing import List

from ..obs import get_registry, get_tracer
from . import wire
from .fastwire import (_UNPACK_FIXED32, _UNPACK_FIXED64, Buffer,
                       PackedInt64Batch, WireError, Writer, as_view,
                       decode_packed_int64s, decode_packed_samples,
                       intern_string, scan_fields)

GZIP_MAGIC = b"\x1f\x8b"

_tracer = get_tracer()
_registry = get_registry()
_parse_calls = _registry.counter(
    "codec.pprof.parse_calls", "pprof messages parsed via fastwire")
_parse_bytes = _registry.counter(
    "codec.pprof.parse_bytes", "raw pprof bytes decoded via fastwire")
_serialize_calls = _registry.counter(
    "codec.pprof.serialize_calls", "pprof messages serialized via fastwire")
_serialize_bytes = _registry.counter(
    "codec.pprof.serialize_bytes", "pprof bytes encoded via fastwire")

_INT64_SIGN = 1 << 63
_TWO_TO_64 = 1 << 64
_UINT64_MASK = (1 << 64) - 1


@dataclass
class ValueType:
    """A (metric type, unit) pair, both as string-table indices."""

    type: int = 0
    unit: int = 0

    def _fields(self, writer: Writer) -> None:
        writer.varint(1, self.type).varint(2, self.unit)

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "ValueType":
        msg = cls()
        for num, _, value in scan_fields(data):
            if num == 1:
                msg.type = _as_int64(value)
            elif num == 2:
                msg.unit = _as_int64(value)
        return msg


@dataclass
class Label:
    """A key/value annotation attached to a sample."""

    key: int = 0
    str: int = 0
    num: int = 0
    num_unit: int = 0

    def _fields(self, writer: Writer) -> None:
        (writer.varint(1, self.key).varint(2, self.str)
         .varint(3, self.num).varint(4, self.num_unit))

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "Label":
        msg = cls()
        for num, _, value in scan_fields(data):
            if num == 1:
                msg.key = _as_int64(value)
            elif num == 2:
                msg.str = _as_int64(value)
            elif num == 3:
                msg.num = _as_int64(value)
            elif num == 4:
                msg.num_unit = _as_int64(value)
        return msg


@dataclass
class Sample:
    """One monitoring point: a call stack (leaf first) plus metric values."""

    location_id: List[int] = field(default_factory=list)
    value: List[int] = field(default_factory=list)
    label: List[Label] = field(default_factory=list)

    def _fields(self, writer: Writer) -> None:
        writer.packed(1, self.location_id)
        writer.packed(2, self.value)
        for lbl in self.label:
            mark = writer.begin_message(3)
            lbl._fields(writer)
            writer.end_message(mark)

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "Sample":
        msg = cls()
        for num, wtype, value in scan_fields(data):
            if num == 1:
                if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
                    msg.location_id.extend(decode_packed_int64s(value))
                else:
                    msg.location_id.append(_as_int64(value))
            elif num == 2:
                if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
                    msg.value.extend(decode_packed_int64s(value))
                else:
                    msg.value.append(_as_int64(value))
            elif num == 3:
                msg.label.append(Label.parse(value))
        return msg

    @classmethod
    def _parse_deferred(cls, data: "memoryview",
                        batch: PackedInt64Batch) -> "Sample":
        """Like :meth:`parse`, but packed runs decode via the batch.

        ``Profile.parse`` registers every sample's id/value payloads with
        one :class:`PackedInt64Batch` and flushes it once at the end —
        one vectorized pass instead of two small decodes per sample.

        This is the single hottest loop in the repo (one call per sample,
        a hundred thousand calls per large profile), so the field scan is
        fully inlined rather than driven by ``scan_fields``: no generator
        frame per sample, no function call per packed run.  Error
        behavior is byte-for-byte the reference codec's, enforced by the
        every-offset truncation and fuzz tests in
        ``tests/test_proto_fastwire.py``.
        """
        msg = cls.__new__(cls)
        location_id = msg.location_id = []
        value_list = msg.value = []
        labels = msg.label = []
        payloads = batch._payloads
        targets = batch._targets
        buf = data
        pos = 0
        end = len(buf)
        # -- shape fast path ----------------------------------------------
        # Nearly every real sample is exactly two packed runs — field 1
        # (location ids) then field 2 (values), both under 128 bytes, with
        # no labels and nothing trailing.  Recognize that layout up front
        # and skip the general scan: every bound is checked before any
        # read, so a non-matching or malformed buffer just falls through.
        if end > 1 and buf[0] == 0x0A:
            length = buf[1]
            p1_stop = 2 + length
            if length < 0x80 and p1_stop + 1 < end and buf[p1_stop] == 0x12:
                l2 = buf[p1_stop + 1]
                p2_start = p1_stop + 2
                if l2 < 0x80 and p2_start + l2 == end:
                    if length:
                        payloads.append(buf[2:p1_stop])
                        targets.append(location_id)
                    if l2:
                        payloads.append(buf[p2_start:end])
                        targets.append(value_list)
                    return msg
        while pos < end:
            # -- tag varint, inlined (fields 1-3 fit in one byte) ---------
            start = pos
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                key = byte
            else:
                key = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    key |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                key &= _UINT64_MASK
            field_number = key >> 3
            wire_type = key & 0x7
            if field_number == 0:
                raise WireError("field number 0 is reserved")

            if wire_type == 2:  # length-delimited
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                if byte < 0x80:
                    length = byte
                else:
                    length = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        length |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    length &= _UINT64_MASK
                stop = pos + length
                if stop > end:
                    raise WireError(
                        "length-delimited field overruns buffer at "
                        "offset %d" % pos)
                if field_number == 1:
                    if length:
                        payloads.append(buf[pos:stop])
                        targets.append(location_id)
                elif field_number == 2:
                    if length:
                        payloads.append(buf[pos:stop])
                        targets.append(value_list)
                elif field_number == 3:
                    labels.append(Label.parse(buf[pos:stop]))
                pos = stop
            elif wire_type == 0:  # varint
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                if byte < 0x80:
                    value = byte
                else:
                    value = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        value |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    value &= _UINT64_MASK
                if value >= _INT64_SIGN:
                    value -= _TWO_TO_64
                if field_number == 1:
                    batch.drain(location_id)  # keep wire order
                    location_id.append(value)
                elif field_number == 2:
                    batch.drain(value_list)
                    value_list.append(value)
            elif wire_type == 1:  # fixed64
                if pos + 8 > end:
                    raise WireError("truncated fixed64 at offset %d" % pos)
                if field_number == 1 or field_number == 2:
                    value = _UNPACK_FIXED64(buf, pos)[0]
                    if value >= _INT64_SIGN:
                        value -= _TWO_TO_64
                    target = location_id if field_number == 1 else value_list
                    batch.drain(target)
                    target.append(value)
                pos += 8
            elif wire_type == 5:  # fixed32
                if pos + 4 > end:
                    raise WireError("truncated fixed32 at offset %d" % pos)
                if field_number == 1 or field_number == 2:
                    target = location_id if field_number == 1 else value_list
                    batch.drain(target)
                    target.append(_UNPACK_FIXED32(buf, pos)[0])
                pos += 4
            else:
                raise WireError("unsupported wire type %d for field %d"
                                % (wire_type, field_number))
        return msg


@dataclass
class SampleBlock:
    """One profile's sample bodies, kept columnar instead of materialized.

    ``ok`` flags, per sample in wire order, whether the body matched the
    canonical two-packed-runs layout and was bulk-decoded; ``decoded`` is
    the int64 ndarray of every matched sample's location-id and value runs
    laid end to end, with ``offsets`` the cumulative value counts (leading
    zero, two entries per matched sample).  Non-matching bodies are parsed
    into ``irregular`` :class:`Sample` objects, wire order preserved.

    This is the zero-object handoff the columnar CCT builder consumes:
    for a typical profile not a single ``Sample`` is constructed.
    """

    ok: List[bool]
    decoded: "object"
    offsets: "object"
    irregular: List["Sample"] = field(default_factory=list)


@dataclass
class Mapping:
    """A loaded binary or shared object (load module)."""

    id: int = 0
    memory_start: int = 0
    memory_limit: int = 0
    file_offset: int = 0
    filename: int = 0
    build_id: int = 0
    has_functions: bool = False
    has_filenames: bool = False
    has_line_numbers: bool = False
    has_inline_frames: bool = False

    def _fields(self, writer: Writer) -> None:
        (writer.varint(1, self.id)
         .varint(2, self.memory_start)
         .varint(3, self.memory_limit)
         .varint(4, self.file_offset)
         .varint(5, self.filename)
         .varint(6, self.build_id)
         .varint(7, int(self.has_functions))
         .varint(8, int(self.has_filenames))
         .varint(9, int(self.has_line_numbers))
         .varint(10, int(self.has_inline_frames)))

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "Mapping":
        msg = cls()
        for num, _, value in scan_fields(data):
            if num == 1:
                msg.id = _as_int64(value)
            elif num == 2:
                msg.memory_start = _as_int64(value)
            elif num == 3:
                msg.memory_limit = _as_int64(value)
            elif num == 4:
                msg.file_offset = _as_int64(value)
            elif num == 5:
                msg.filename = _as_int64(value)
            elif num == 6:
                msg.build_id = _as_int64(value)
            elif num == 7:
                msg.has_functions = bool(value)
            elif num == 8:
                msg.has_filenames = bool(value)
            elif num == 9:
                msg.has_line_numbers = bool(value)
            elif num == 10:
                msg.has_inline_frames = bool(value)
        return msg


@dataclass
class Line:
    """A (function, line) pair within a location; supports inlining."""

    function_id: int = 0
    line: int = 0

    def _fields(self, writer: Writer) -> None:
        writer.varint(1, self.function_id).varint(2, self.line)

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "Line":
        vals = [0, 0, 0]
        _scan_int_fields(as_view(data), vals)
        msg = cls.__new__(cls)
        msg.function_id = vals[1]
        msg.line = vals[2]
        return msg


@dataclass
class Location:
    """An instruction address attributed to one or more source lines."""

    id: int = 0
    mapping_id: int = 0
    address: int = 0
    line: List[Line] = field(default_factory=list)
    is_folded: bool = False

    def _fields(self, writer: Writer) -> None:
        (writer.varint(1, self.id)
         .varint(2, self.mapping_id)
         .varint(3, self.address))
        for ln in self.line:
            mark = writer.begin_message(4)
            ln._fields(writer)
            writer.end_message(mark)
        writer.varint(5, int(self.is_folded))

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "Location":
        # Scalar fields ride the shared inlined scan; Line submessages and
        # the bool are picked out of the raw buffer here.  One Location
        # per stack frame makes this the third-hottest parse in the repo.
        msg = cls.__new__(cls)
        lines = msg.line = []
        msg.is_folded = False
        vals = [0, 0, 0, 0]
        buf = as_view(data)
        pos = 0
        end = len(buf)
        while pos < end:
            start = pos
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                key = byte
            else:
                key = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    key |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                key &= _UINT64_MASK
            num = key >> 3
            wtype = key & 0x7
            if num == 0:
                raise WireError("field number 0 is reserved")

            if wtype == 0:  # varint
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                if byte < 0x80:
                    value = byte
                else:
                    value = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        value |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    value &= _UINT64_MASK
                if num < 4:
                    if value >= _INT64_SIGN:
                        value -= _TWO_TO_64
                    vals[num] = value
                elif num == 4:
                    lines.append(Line.parse(value))
                elif num == 5:
                    msg.is_folded = bool(value)
            elif wtype == 2:  # length-delimited
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                if byte < 0x80:
                    length = byte
                else:
                    length = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        length |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    length &= _UINT64_MASK
                stop = pos + length
                if stop > end:
                    raise WireError(
                        "length-delimited field overruns buffer at "
                        "offset %d" % pos)
                if num == 4:
                    lines.append(Line.parse(buf[pos:stop]))
                elif num < 4:
                    raise wire.WireError(
                        "expected numeric field, got length-delimited")
                elif num == 5:
                    # matches bool(<memoryview>): truthy iff non-empty
                    msg.is_folded = length > 0
                pos = stop
            elif wtype == 1:  # fixed64
                if pos + 8 > end:
                    raise WireError("truncated fixed64 at offset %d" % pos)
                value = _UNPACK_FIXED64(buf, pos)[0]
                pos += 8
                if num < 4:
                    if value >= _INT64_SIGN:
                        value -= _TWO_TO_64
                    vals[num] = value
                elif num == 4:
                    lines.append(Line.parse(value))
                elif num == 5:
                    msg.is_folded = bool(value)
            elif wtype == 5:  # fixed32
                if pos + 4 > end:
                    raise WireError("truncated fixed32 at offset %d" % pos)
                value = _UNPACK_FIXED32(buf, pos)[0]
                pos += 4
                if num < 4:
                    vals[num] = value
                elif num == 4:
                    lines.append(Line.parse(value))
                elif num == 5:
                    msg.is_folded = bool(value)
            else:
                raise WireError("unsupported wire type %d for field %d"
                                % (wtype, num))
        msg.id = vals[1]
        msg.mapping_id = vals[2]
        msg.address = vals[3]
        return msg


@dataclass
class Function:
    """A source-level function with name and file attribution."""

    id: int = 0
    name: int = 0
    system_name: int = 0
    filename: int = 0
    start_line: int = 0

    def _fields(self, writer: Writer) -> None:
        (writer.varint(1, self.id)
         .varint(2, self.name)
         .varint(3, self.system_name)
         .varint(4, self.filename)
         .varint(5, self.start_line))

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "Function":
        vals = [0, 0, 0, 0, 0, 0]
        _scan_int_fields(as_view(data), vals)
        msg = cls.__new__(cls)
        msg.id = vals[1]
        msg.name = vals[2]
        msg.system_name = vals[3]
        msg.filename = vals[4]
        msg.start_line = vals[5]
        return msg


@dataclass
class Profile:
    """The top-level pprof profile message."""

    sample_type: List[ValueType] = field(default_factory=list)
    sample: List[Sample] = field(default_factory=list)
    mapping: List[Mapping] = field(default_factory=list)
    location: List[Location] = field(default_factory=list)
    function: List[Function] = field(default_factory=list)
    string_table: List[str] = field(default_factory=lambda: [""])
    drop_frames: int = 0
    keep_frames: int = 0
    time_nanos: int = 0
    duration_nanos: int = 0
    period_type: ValueType = field(default_factory=ValueType)
    period: int = 0
    comment: List[int] = field(default_factory=list)
    default_sample_type: int = 0

    def serialize(self) -> bytes:
        writer = Writer()
        begin = writer.begin_message
        end = writer.end_message
        for vt in self.sample_type:
            mark = begin(1)
            vt._fields(writer)
            end(mark)
        for smp in self.sample:
            mark = begin(2)
            smp._fields(writer)
            end(mark)
        for mp in self.mapping:
            mark = begin(3)
            mp._fields(writer)
            end(mark)
        for loc in self.location:
            mark = begin(4)
            loc._fields(writer)
            end(mark)
        for fn in self.function:
            mark = begin(5)
            fn._fields(writer)
            end(mark)
        for s in self.string_table:
            # Index 0 must be "" and proto3 drops empty strings, so emit the
            # tag explicitly for every entry to keep indices stable.
            writer.message(6, s.encode("utf-8"))
        writer.varint(7, self.drop_frames)
        writer.varint(8, self.keep_frames)
        writer.varint(9, self.time_nanos)
        writer.varint(10, self.duration_nanos)
        if self.period_type.type or self.period_type.unit:
            mark = begin(11)
            self.period_type._fields(writer)
            end(mark)
        writer.varint(12, self.period)
        writer.packed(13, self.comment)
        writer.varint(14, self.default_sample_type)
        data = writer.getvalue()
        _serialize_calls.inc()
        _serialize_bytes.inc(len(data))
        return data

    @classmethod
    def parse(cls, data: Buffer) -> "Profile":
        """Decode a raw (non-gzipped) profile message.

        The top-level scan is fully inlined — no :func:`scan_fields`
        generator, no per-sample function call.  A hundred thousand
        samples means a hundred thousand top-level fields, so the sample
        shape fast path (two packed runs, no labels) lives directly in
        this loop; only irregular samples fall back to
        :meth:`Sample._parse_deferred`.  Error behavior matches the
        reference codec byte for byte (see the every-offset truncation
        test in ``tests/test_proto_fastwire.py``).
        """
        _parse_calls.inc()
        _parse_bytes.inc(len(data))
        # A large profile materializes hundreds of thousands of containers
        # in one burst; with the collector enabled, generation-0 sweeps
        # fire every ~700 allocations and rescan the ever-growing object
        # graph, costing more than the decode itself.  Nothing allocated
        # here is cyclic, so pause collection for the duration.  (Inline
        # mirror of ``core.gcguard.no_gc``, which cannot be imported here:
        # ``core.serialize`` imports this package.)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return cls._parse_impl(data)
        finally:
            if gc_was_enabled:
                gc.enable()

    @classmethod
    def parse_columnar(cls, data: Buffer):
        """Decode a raw profile, deferring sample bodies columnar-side.

        Returns ``(profile, block)``.  When ``block`` is a
        :class:`SampleBlock`, ``profile.sample`` is empty and the sample
        data lives in the block's arrays; when ``block`` is ``None`` (no
        numpy, a malformed canonical run, or a sample-free profile), the
        profile is fully materialized exactly as :meth:`parse` returns it.
        Error behavior is identical to :meth:`parse` either way.
        """
        _parse_calls.inc()
        _parse_bytes.inc(len(data))
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return cls._parse_impl(data, defer_samples=True)
        finally:
            if gc_was_enabled:
                gc.enable()

    @classmethod
    def _parse_impl(cls, data: Buffer, defer_samples: bool = False):
        msg = cls(string_table=[])
        batch = PackedInt64Batch()
        sample_parse = Sample._parse_deferred
        sample_new = Sample.__new__
        sample_cls = Sample
        samples_append = msg.sample.append
        strings_append = msg.string_table.append
        spans: List[int] = []
        spans_append = spans.append
        buf = as_view(data)
        pos = 0
        end = len(buf)
        while pos < end:
            byte = buf[pos]
            pos += 1
            if byte == 0x12:
                # Sample field (2, length-delimited) — the tag on half the
                # top-level bytes of a real profile.  Record the body span
                # and move on; the bodies decode in bulk after the walk.
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                length = buf[pos]
                pos += 1
                if length >= 0x80:
                    length &= 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        length |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    length &= _UINT64_MASK
                stop = pos + length
                if stop > end:
                    raise WireError(
                        "length-delimited field overruns buffer at "
                        "offset %d" % pos)
                spans_append(pos)
                spans_append(stop)
                pos = stop
                continue
            # -- tag varint, inlined --------------------------------------
            start = pos - 1
            if byte < 0x80:
                key = byte
            else:
                key = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    key |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                key &= _UINT64_MASK
            num = key >> 3
            wtype = key & 0x7
            if num == 0:
                raise WireError("field number 0 is reserved")

            if wtype == 2:  # length-delimited
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                if byte < 0x80:
                    length = byte
                else:
                    length = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        length |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    length &= _UINT64_MASK
                stop = pos + length
                if stop > end:
                    raise WireError(
                        "length-delimited field overruns buffer at "
                        "offset %d" % pos)
                if num == 2:
                    # Non-canonical (multi-byte) sample tag: same deferred
                    # handling as the fused 0x12 case above.
                    spans_append(pos)
                    spans_append(stop)
                    pos = stop
                    continue
                if num == 6:
                    strings_append(intern_string(buf[pos:stop]))
                    pos = stop
                    continue
                value = buf[pos:stop]
                pos = stop
            elif wtype == 0:  # varint
                start = pos
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                if byte < 0x80:
                    value = byte
                else:
                    value = byte & 0x7F
                    shift = 7
                    while True:
                        if pos >= end:
                            raise WireError(
                                "truncated varint at offset %d" % start)
                        byte = buf[pos]
                        pos += 1
                        value |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift >= 70:
                            raise WireError(
                                "varint longer than 10 bytes at offset %d"
                                % start)
                    value &= _UINT64_MASK
            elif wtype == 1:  # fixed64
                if pos + 8 > end:
                    raise WireError("truncated fixed64 at offset %d" % pos)
                value = _UNPACK_FIXED64(buf, pos)[0]
                pos += 8
            elif wtype == 5:  # fixed32
                if pos + 4 > end:
                    raise WireError("truncated fixed32 at offset %d" % pos)
                value = _UNPACK_FIXED32(buf, pos)[0]
                pos += 4
            else:
                raise WireError("unsupported wire type %d for field %d"
                                % (wtype, num))

            # -- non-delimited or rare fields -----------------------------
            if num == 2:
                samples_append(sample_parse(value, batch))
            elif num == 6:
                strings_append(intern_string(value))
            elif num == 4:
                msg.location.append(Location.parse(value))
            elif num == 5:
                msg.function.append(Function.parse(value))
            elif num == 1:
                msg.sample_type.append(ValueType.parse(value))
            elif num == 3:
                msg.mapping.append(Mapping.parse(value))
            elif num == 7:
                msg.drop_frames = _as_int64(value)
            elif num == 8:
                msg.keep_frames = _as_int64(value)
            elif num == 9:
                msg.time_nanos = _as_int64(value)
            elif num == 10:
                msg.duration_nanos = _as_int64(value)
            elif num == 11:
                msg.period_type = ValueType.parse(value)
            elif num == 12:
                msg.period = _as_int64(value)
            elif num == 13:
                msg.comment.extend(_repeated_int(value, wtype))
            elif num == 14:
                msg.default_sample_type = _as_int64(value)
        block = None
        if spans:
            bulk = decode_packed_samples(buf, spans, as_array=defer_samples)
            if bulk is None:
                # No numpy, or a canonical-looking run was malformed:
                # scan every sample sequentially, in wire order, so the
                # first offender raises the reference-identical error.
                for i in range(0, len(spans), 2):
                    samples_append(
                        sample_parse(buf[spans[i]:spans[i + 1]], batch))
            elif defer_samples:
                ok_list, decoded, offsets = bulk
                irregular: List[Sample] = []
                i = 0
                for matched in ok_list:
                    if not matched:
                        irregular.append(
                            sample_parse(buf[spans[i]:spans[i + 1]], batch))
                    i += 2
                block = SampleBlock(ok=ok_list, decoded=decoded,
                                    offsets=offsets, irregular=irregular)
            else:
                ok_list, decoded, offsets = bulk
                k = 0
                i = 0
                for matched in ok_list:
                    if matched:
                        smp = sample_new(sample_cls)
                        mid = offsets[k + 1]
                        smp.location_id = decoded[offsets[k]:mid]
                        smp.value = decoded[mid:offsets[k + 2]]
                        smp.label = []
                        k += 2
                        samples_append(smp)
                    else:
                        samples_append(
                            sample_parse(buf[spans[i]:spans[i + 1]], batch))
                    i += 2
        batch.flush()
        if not msg.string_table:
            msg.string_table = [""]
        if defer_samples:
            return msg, block
        return msg

    # -- convenience -----------------------------------------------------

    def string(self, index: int) -> str:
        """Resolve a string-table index, tolerating out-of-range indices."""
        if 0 <= index < len(self.string_table):
            return self.string_table[index]
        return ""


def _as_int64(value: object) -> int:
    """Normalize a decoded varint/fixed value to a signed 64-bit int."""
    if not isinstance(value, int):
        raise wire.WireError("expected numeric field, got length-delimited")
    if value >= _INT64_SIGN:
        value -= _TWO_TO_64
    return value


def _scan_int_fields(buf: "memoryview", vals: List[int]) -> None:
    """Decode a message whose known fields are all scalar int64s.

    ``vals`` is indexed by field number (slot 0 unused); known fields are
    ``1 .. len(vals) - 1`` and land sign-extended in their slot, last
    occurrence winning.  Unknown higher-numbered fields are skipped.  The
    scan is inlined for the same reason as :meth:`Profile.parse` — Line
    and Function messages number in the tens of thousands per profile —
    and raises exactly where ``scan_fields`` + ``_as_int64`` would,
    including the numeric-field error for a length-delimited value on a
    known field.
    """
    known = len(vals)
    pos = 0
    end = len(buf)
    while pos < end:
        # -- tag varint, inlined ------------------------------------------
        start = pos
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            key = byte
        else:
            key = byte & 0x7F
            shift = 7
            while True:
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                key |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
                if shift >= 70:
                    raise WireError(
                        "varint longer than 10 bytes at offset %d" % start)
            key &= _UINT64_MASK
        num = key >> 3
        wtype = key & 0x7
        if num == 0:
            raise WireError("field number 0 is reserved")

        if wtype == 0:  # varint
            start = pos
            if pos >= end:
                raise WireError("truncated varint at offset %d" % start)
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                value = byte
            else:
                value = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                value &= _UINT64_MASK
            if num < known:
                if value >= _INT64_SIGN:
                    value -= _TWO_TO_64
                vals[num] = value
        elif wtype == 2:  # length-delimited
            start = pos
            if pos >= end:
                raise WireError("truncated varint at offset %d" % start)
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                length = byte
            else:
                length = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    length |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                length &= _UINT64_MASK
            stop = pos + length
            if stop > end:
                raise WireError(
                    "length-delimited field overruns buffer at offset %d"
                    % pos)
            if num < known:
                raise wire.WireError(
                    "expected numeric field, got length-delimited")
            pos = stop
        elif wtype == 1:  # fixed64
            if pos + 8 > end:
                raise WireError("truncated fixed64 at offset %d" % pos)
            if num < known:
                value = _UNPACK_FIXED64(buf, pos)[0]
                if value >= _INT64_SIGN:
                    value -= _TWO_TO_64
                vals[num] = value
            pos += 8
        elif wtype == 5:  # fixed32
            if pos + 4 > end:
                raise WireError("truncated fixed32 at offset %d" % pos)
            if num < known:
                vals[num] = _UNPACK_FIXED32(buf, pos)[0]
            pos += 4
        else:
            raise WireError("unsupported wire type %d for field %d"
                            % (wtype, num))


def _repeated_int(value: object, wtype: int) -> List[int]:
    """Decode a repeated int field that may be packed or unpacked."""
    if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
        return decode_packed_int64s(value)
    return [_as_int64(value)]


def dumps(profile: Profile, compress: bool = True) -> bytes:
    """Serialize a profile, gzip-compressed by default like pprof files."""
    with _tracer.span("codec.pprof.serialize", compress=compress):
        raw = profile.serialize()
        if compress:
            # mtime=0 keeps the gzip header free of the wall clock so
            # serializing the same profile twice yields identical bytes.
            return gzip.compress(raw, compresslevel=6, mtime=0)
        return raw


def loads(data: bytes) -> Profile:
    """Parse a pprof payload, transparently handling gzip framing."""
    with _tracer.span("codec.pprof.parse", bytes=len(data)):
        if data[:2] == GZIP_MAGIC:
            data = gzip.decompress(data)
        return Profile.parse(data)


def loads_columnar(data: bytes):
    """Parse a pprof payload with sample bodies kept columnar.

    Returns ``(profile, block)`` as :meth:`Profile.parse_columnar`,
    transparently handling gzip framing.
    """
    with _tracer.span("codec.pprof.parse", bytes=len(data)):
        if data[:2] == GZIP_MAGIC:
            data = gzip.decompress(data)
        return Profile.parse_columnar(data)
