"""Zero-copy streaming kernels for the protobuf wire format.

Every byte EasyView touches — pprof payloads, EasyView CCT profiles,
ProfStore WAL records, segment string tables — passes through this module.
It exists because the original codec (:mod:`repro.proto.wire`, preserved
verbatim as :mod:`repro.proto.reference`) decoded varints one function call
at a time, copied every length-delimited slice, and serialized messages by
joining thousands of tiny ``bytes`` chunks.  The kernels here keep the
exact wire semantics while removing the per-byte Python overhead:

* :func:`scan_fields` / :class:`Reader` — streaming decode over a
  ``memoryview`` with the varint loop inlined (no per-call tuple churn);
  length-delimited payloads come back as zero-copy subviews.
* :func:`decode_packed_int64s` — bulk packed-varint decode: an unrolled
  pure-Python scan with an optional numpy kernel for long runs, gated
  behind byte-for-byte equality tests (``tests/test_proto_fastwire.py``).
* :class:`Writer` — a message writer backed by one growing ``bytearray``
  with a precomputed small-varint table and reserved length-prefix
  patching, so nested messages serialize in a single pass instead of
  child-bytes-then-copy.
* :class:`StringInterner` — a shared intern pool for string-table decode,
  so the same function name appearing in ten thousand profiles is one
  ``str`` object process-wide.

The module is dependency-free at import time; numpy is probed lazily and
its absence only disables the long-run packed kernel (the pure-Python scan
is always available and always authoritative).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple, Union

WIRETYPE_VARINT = 0
WIRETYPE_FIXED64 = 1
WIRETYPE_LENGTH_DELIMITED = 2
WIRETYPE_START_GROUP = 3  # deprecated in proto3; recognized but rejected
WIRETYPE_END_GROUP = 4
WIRETYPE_FIXED32 = 5

_MAX_VARINT_BYTES = 10  # ceil(64 / 7)
_UINT64_MASK = (1 << 64) - 1
_INT64_SIGN = 1 << 63
_TWO_TO_64 = 1 << 64

_UNPACK_FIXED64 = struct.Struct("<Q").unpack_from
_UNPACK_FIXED32 = struct.Struct("<I").unpack_from

Buffer = Union[bytes, bytearray, memoryview]


class WireError(ValueError):
    """Raised when a payload violates the protobuf wire format."""


# --------------------------------------------------------------------------
# numpy probe (lazy, optional)
# --------------------------------------------------------------------------

try:  # pragma: no cover - exercised implicitly by every packed decode
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Packed payloads at least this long go through the numpy kernel; shorter
#: runs stay on the unrolled pure-Python scan, whose fixed overhead is
#: lower than one ``np.frombuffer`` round trip.  Tuned on the corpus tiers
#: (see docs/PERFORMANCE.md); equality between both paths is asserted by
#: the property tests regardless of the threshold.
NUMPY_MIN_PACKED_BYTES = 256

#: Plain-int counters (GIL-atomic increments, no locks — these sit on the
#: hottest loops in the repo).  ``packed_stats()`` snapshots them and the
#: obs layer folds them into real Counters at loads/dumps granularity.
_PACKED_RUNS_PY = 0
_PACKED_RUNS_NUMPY = 0


def packed_stats() -> dict:
    """Which packed-decode kernel has been running (process-wide)."""
    return {"pyRuns": _PACKED_RUNS_PY, "numpyRuns": _PACKED_RUNS_NUMPY,
            "numpyAvailable": _np is not None,
            "numpyMinBytes": NUMPY_MIN_PACKED_BYTES}


# --------------------------------------------------------------------------
# Reading
# --------------------------------------------------------------------------

def as_view(data: Buffer) -> memoryview:
    """A flat read view over ``data`` (no copy; idempotent for views)."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    return view.cast("B") if view.format != "B" or view.ndim != 1 else view


def scan_fields(data: Buffer) -> Iterator[Tuple[int, int, object]]:
    """Stream ``(field_number, wire_type, value)`` triples from a message.

    The workhorse decode kernel: one generator frame for the whole
    message, varint decode inlined (no helper calls, no position tuples),
    and length-delimited values returned as zero-copy ``memoryview``
    subviews of the input.  Raises :class:`WireError` exactly where the
    reference codec does — truncation, overlong varints, field number 0,
    group wire types.
    """
    buf = as_view(data)
    pos = 0
    end = len(buf)
    while pos < end:
        # -- tag varint, inlined ------------------------------------------
        start = pos
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            key = byte
        else:
            key = byte & 0x7F
            shift = 7
            while True:
                if pos >= end:
                    raise WireError("truncated varint at offset %d" % start)
                byte = buf[pos]
                pos += 1
                key |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
                if shift >= 70:
                    raise WireError(
                        "varint longer than 10 bytes at offset %d" % start)
            key &= _UINT64_MASK
        field_number = key >> 3
        wire_type = key & 0x7
        if field_number == 0:
            raise WireError("field number 0 is reserved")

        if wire_type == WIRETYPE_VARINT:
            # -- value varint, inlined ------------------------------------
            start = pos
            if pos >= end:
                raise WireError("truncated varint at offset %d" % start)
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                value = byte
            else:
                value = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                value &= _UINT64_MASK
        elif wire_type == WIRETYPE_LENGTH_DELIMITED:
            # -- length varint, inlined -----------------------------------
            start = pos
            if pos >= end:
                raise WireError("truncated varint at offset %d" % start)
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                length = byte
            else:
                length = byte & 0x7F
                shift = 7
                while True:
                    if pos >= end:
                        raise WireError(
                            "truncated varint at offset %d" % start)
                    byte = buf[pos]
                    pos += 1
                    length |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 70:
                        raise WireError(
                            "varint longer than 10 bytes at offset %d"
                            % start)
                length &= _UINT64_MASK
            stop = pos + length
            if stop > end:
                raise WireError(
                    "length-delimited field overruns buffer at offset %d"
                    % pos)
            value = buf[pos:stop]
            pos = stop
        elif wire_type == WIRETYPE_FIXED64:
            if pos + 8 > end:
                raise WireError("truncated fixed64 at offset %d" % pos)
            value = _UNPACK_FIXED64(buf, pos)[0]
            pos += 8
        elif wire_type == WIRETYPE_FIXED32:
            if pos + 4 > end:
                raise WireError("truncated fixed32 at offset %d" % pos)
            value = _UNPACK_FIXED32(buf, pos)[0]
            pos += 4
        else:
            raise WireError("unsupported wire type %d for field %d"
                            % (wire_type, field_number))
        yield field_number, wire_type, value


class Reader:
    """A streaming cursor over a wire-format buffer.

    Where :func:`scan_fields` drives whole-message decode, ``Reader`` is
    the piecewise interface: framing code (the EasyView file header, the
    WAL record scanner) reads one varint or one delimited run at a time
    while keeping the buffer zero-copy.  The position is public; callers
    may seek.
    """

    __slots__ = ("buf", "pos", "end")

    def __init__(self, data: Buffer, pos: int = 0,
                 end: Optional[int] = None) -> None:
        self.buf = as_view(data)
        self.pos = pos
        self.end = len(self.buf) if end is None else end

    def __bool__(self) -> bool:
        return self.pos < self.end

    @property
    def remaining(self) -> int:
        return self.end - self.pos

    def varint(self) -> int:
        """Decode one unsigned varint at the cursor (inlined loop)."""
        buf = self.buf
        pos = self.pos
        end = self.end
        start = pos
        if pos >= end:
            raise WireError("truncated varint at offset %d" % start)
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            self.pos = pos
            return byte
        result = byte & 0x7F
        shift = 7
        while True:
            if pos >= end:
                raise WireError("truncated varint at offset %d" % start)
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
            if shift >= 70:
                raise WireError(
                    "varint longer than 10 bytes at offset %d" % start)
        self.pos = pos
        return result & _UINT64_MASK

    def svarint(self) -> int:
        """Decode one ``int64`` varint (sign-extended two's complement)."""
        value = self.varint()
        return value - _TWO_TO_64 if value >= _INT64_SIGN else value

    def tag(self) -> Tuple[int, int]:
        """Decode a field tag: ``(field_number, wire_type)``."""
        key = self.varint()
        field_number = key >> 3
        if field_number == 0:
            raise WireError("field number 0 is reserved")
        return field_number, key & 0x7

    def delimited(self) -> memoryview:
        """Decode a length-delimited payload as a zero-copy subview."""
        length = self.varint()
        pos = self.pos
        stop = pos + length
        if stop > self.end:
            raise WireError(
                "length-delimited field overruns buffer at offset %d" % pos)
        self.pos = stop
        return self.buf[pos:stop]

    def fixed64(self) -> int:
        pos = self.pos
        if pos + 8 > self.end:
            raise WireError("truncated fixed64 at offset %d" % pos)
        self.pos = pos + 8
        return _UNPACK_FIXED64(self.buf, pos)[0]

    def fixed32(self) -> int:
        pos = self.pos
        if pos + 4 > self.end:
            raise WireError("truncated fixed32 at offset %d" % pos)
        self.pos = pos + 4
        return _UNPACK_FIXED32(self.buf, pos)[0]

    def skip(self, wire_type: int) -> None:
        """Skip an unknown field's payload."""
        if wire_type == WIRETYPE_VARINT:
            self.varint()
        elif wire_type == WIRETYPE_FIXED64:
            if self.pos + 8 > self.end:
                raise WireError(
                    "truncated fixed64 while skipping at offset %d"
                    % self.pos)
            self.pos += 8
        elif wire_type == WIRETYPE_LENGTH_DELIMITED:
            self.delimited()
        elif wire_type == WIRETYPE_FIXED32:
            if self.pos + 4 > self.end:
                raise WireError(
                    "truncated fixed32 while skipping at offset %d"
                    % self.pos)
            self.pos += 4
        else:
            raise WireError(
                "cannot skip wire type %d (groups are unsupported)"
                % wire_type)

    def fields(self) -> Iterator[Tuple[int, int, object]]:
        """Stream the remaining buffer as field triples."""
        return scan_fields(self.buf[self.pos:self.end])


# --------------------------------------------------------------------------
# Bulk packed-varint decode
# --------------------------------------------------------------------------

def _decode_packed_py(buf: memoryview, pos: int, end: int) -> List[int]:
    """The unrolled pure-Python packed scan (authoritative semantics)."""
    global _PACKED_RUNS_PY
    _PACKED_RUNS_PY += 1
    values: List[int] = []
    append = values.append
    while pos < end:
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            append(byte)  # 1-byte varints dominate real id lists
            continue
        start = pos - 1
        result = byte & 0x7F
        shift = 7
        while True:
            if pos >= end:
                raise WireError("truncated varint at offset %d" % start)
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
            if shift >= 70:
                raise WireError(
                    "varint longer than 10 bytes at offset %d" % start)
        result &= _UINT64_MASK
        append(result - _TWO_TO_64 if result >= _INT64_SIGN else result)
    return values


def _decode_packed_numpy(buf: memoryview) -> List[int]:
    """Vectorized packed decode for long runs.

    Terminator positions (bytes with the high bit clear) delimit the
    varints; values are assembled with at most ten vectorized OR-shift
    passes, one per byte position within a varint.  uint64 shifts discard
    bits past 2**64 exactly like the reference codec's final mask, and
    viewing the result as int64 applies the two's-complement sign rule in
    one step.
    """
    global _PACKED_RUNS_NUMPY
    _PACKED_RUNS_NUMPY += 1
    data = _np.frombuffer(buf, dtype=_np.uint8)
    terminator = data < 0x80
    ends = _np.flatnonzero(terminator)
    if ends.size:
        starts = _np.empty_like(ends)
        starts[0] = 0
        starts[1:] = ends[:-1] + 1
        lengths = ends - starts + 1
    else:
        starts = lengths = ends
    # Errors must surface in reference order: the sequential scan raises at
    # the FIRST offending varint, so check complete varints left to right
    # before looking at the torn tail (which is by definition rightmost).
    overlong = _np.flatnonzero(lengths > _MAX_VARINT_BYTES)
    if overlong.size:
        raise WireError("varint longer than 10 bytes at offset %d"
                        % int(starts[overlong[0]]))
    tail_start = int(ends[-1]) + 1 if ends.size else 0
    if tail_start != data.size:
        # The reference scan gives up on a torn varint once it has consumed
        # ten bytes without a terminator; shorter tails read as truncation.
        if data.size - tail_start >= _MAX_VARINT_BYTES:
            raise WireError(
                "varint longer than 10 bytes at offset %d" % tail_start)
        raise WireError("truncated varint at offset %d" % tail_start)
    max_len = int(lengths.max())
    payload = (data & 0x7F).astype(_np.uint64)
    values = payload[starts]
    for k in range(1, max_len):
        mask = lengths > k
        values[mask] |= payload[starts[mask] + k] << _np.uint64(7 * k)
    return values.view(_np.int64).tolist()


def decode_packed_int64s(data: Buffer) -> List[int]:
    """Decode a packed repeated ``int64`` payload into a list.

    Semantics match ``reference.decode_packed_varints`` bit for bit
    (including error offsets); long runs take the numpy kernel when it is
    available, everything else the unrolled scan.
    """
    buf = as_view(data)
    size = len(buf)
    if size == 0:
        return []
    if _np is not None and size >= NUMPY_MIN_PACKED_BYTES:
        return _decode_packed_numpy(buf)
    return _decode_packed_py(buf, 0, size)


class PackedInt64Batch:
    """Deferred bulk decode of many packed runs in one vectorized pass.

    A large pprof profile carries two packed runs per sample — a hundred
    thousand samples means two hundred thousand small payloads, each too
    short to amortize a numpy call on its own.  Message parsers register
    each run with :meth:`add` as they scan, and :meth:`flush` (called once
    per top-level message) concatenates every pending payload and decodes
    the whole batch with a single vectorized pass.  Per-payload value
    counts are recovered from the terminator bytes, so each destination
    list receives exactly its own values, in wire order.

    Varints cannot straddle payloads: a well-formed packed run ends on a
    terminator byte.  Any payload that breaks that invariant — or any
    overlong varint anywhere in the batch — routes the whole batch through
    the sequential scan instead, which reproduces the reference codec's
    error (first bad payload in wire order wins).  Without numpy the batch
    degenerates to exactly that sequential scan, so behavior never depends
    on the accelerator.
    """

    __slots__ = ("_payloads", "_targets")

    def __init__(self) -> None:
        self._payloads: List[memoryview] = []
        self._targets: List[List[int]] = []

    def add(self, payload: memoryview, target: List[int]) -> None:
        """Queue one packed payload to be decoded into ``target``."""
        if len(payload):
            self._payloads.append(payload)
            self._targets.append(target)

    def drain(self, target: List[int]) -> None:
        """Decode ``target``'s pending payloads immediately, in order.

        Needed when an *unpacked* entry for the same field arrives after
        a deferred packed run: wire order must be preserved, so the
        pending values land in the list before the new entry does.
        """
        if not any(tgt is target for tgt in self._targets):
            return  # identity, not ==: distinct empty lists compare equal
        keep_payloads: List[memoryview] = []
        keep_targets: List[List[int]] = []
        for payload, tgt in zip(self._payloads, self._targets):
            if tgt is target:
                tgt.extend(_decode_packed_py(payload, 0, len(payload)))
            else:
                keep_payloads.append(payload)
                keep_targets.append(tgt)
        # In-place, not rebinding: callers on the hot path hold bound
        # ``.append`` methods of these exact list objects.
        self._payloads[:] = keep_payloads
        self._targets[:] = keep_targets

    def _flush_sequential(self, payloads: List[memoryview],
                          targets: List[List[int]]) -> None:
        for payload, target in zip(payloads, targets):
            target.extend(_decode_packed_py(payload, 0, len(payload)))

    def flush(self) -> None:
        """Decode every pending payload into its destination list."""
        if not self._payloads:
            return
        payloads = self._payloads[:]
        targets = self._targets[:]
        # In-place clear, not rebinding — see :meth:`drain`.
        del self._payloads[:]
        del self._targets[:]
        if _np is None:
            self._flush_sequential(payloads, targets)
            return
        global _PACKED_RUNS_NUMPY
        _PACKED_RUNS_NUMPY += 1
        data = _np.frombuffer(b"".join(payloads), dtype=_np.uint8)
        sizes = _np.fromiter(map(len, payloads), dtype=_np.int64,
                             count=len(payloads))
        result = _assemble_packed(data, _np.cumsum(sizes))
        if result is None:
            # Some payload is torn or overlong: decode sequentially so the
            # first offender raises the reference-identical error.
            self._flush_sequential(payloads, targets)
            return
        decoded, cum = result
        offset = 0
        for target, stop in zip(targets, cum.tolist()):
            target.extend(decoded[offset:stop])
            offset = stop


def _assemble_packed(data: "object", bounds_end: "object",
                     as_array: bool = False):
    """Bulk-decode concatenated packed int64 runs (numpy required).

    ``data`` is a uint8 ndarray of run payloads laid end to end;
    ``bounds_end`` holds each run's exclusive end offset (ascending, with
    empty runs repeating the previous offset).  Returns ``(decoded,
    cum)`` — every value in order as a Python list (an int64 ndarray with
    ``as_array``, for consumers that stay columnar), plus the cumulative
    value count at each run end — or ``None`` when any run ends
    mid-varint or contains an overlong varint, so the caller can rerun
    the sequential scan and surface the reference codec's error.

    Varints cannot straddle runs: a well-formed packed run ends on a
    terminator byte, which is exactly the per-run check below.
    """
    terminator = data < 0x80
    prev = _np.empty_like(bounds_end)
    prev[0] = 0
    prev[1:] = bounds_end[:-1]
    nonempty = bounds_end > prev
    if not terminator[bounds_end[nonempty] - 1].all():
        return None
    ends = _np.flatnonzero(terminator)
    v_starts = _np.empty_like(ends)
    if ends.size:
        v_starts[0] = 0
        v_starts[1:] = ends[:-1] + 1
    v_lengths = ends - v_starts + 1
    if v_lengths.size and int(v_lengths.max()) > _MAX_VARINT_BYTES:
        return None
    # Assemble values byte-column by byte-column, shrinking the index set
    # to just the still-unfinished varints each round: total gather work
    # is O(continuation bytes), not O(varints * max_len).
    values = (data[v_starts] & 0x7F).astype(_np.uint64)
    sel = _np.flatnonzero(v_lengths > 1)
    idx = v_starts[sel]
    lens = v_lengths[sel]
    k = 1
    while sel.size:
        values[sel] |= ((data[idx + k] & 0x7F).astype(_np.uint64)
                        << _np.uint64(7 * k))
        k += 1
        keep = _np.flatnonzero(lens > k)
        sel = sel[keep]
        idx = idx[keep]
        lens = lens[keep]
    decoded = values.view(_np.int64)
    if not as_array:
        decoded = decoded.tolist()
    # Values per run = terminators before each run end; ``ends`` is
    # sorted, so binary search beats a reduceat over the byte array.
    cum = _np.searchsorted(ends, bounds_end, side="left")
    return decoded, cum


def decode_packed_samples(buf: "memoryview", span_bounds: List[int],
                          as_array: bool = False):
    """Vectorized shape check + bulk decode for pprof sample messages.

    ``span_bounds`` is a flat ``[start, stop, ...]`` list of sample body
    byte ranges inside ``buf``.  A body matching the canonical layout —
    a field 1 packed run then a field 2 packed run, both with single-byte
    lengths and nothing trailing — is decoded wholesale without ever
    scanning it in Python.  Returns ``(ok, decoded, offsets)``: ``ok``
    flags which samples matched, ``decoded`` holds their values in wire
    order, and ``offsets`` the cumulative value counts (leading zero;
    each ok sample consumes two entries — its id run and its value run).
    With ``as_array``, ``decoded`` and ``offsets`` stay int64 ndarrays —
    the zero-materialization path the columnar CCT builder feeds on.

    Returns ``None`` when numpy is unavailable or any matched run is
    malformed; the caller then re-scans every sample sequentially so the
    first offender raises the reference-identical error.  Every gather
    below is index-clamped, so a garbage length byte can never read out
    of bounds — it just fails the mask.
    """
    if _np is None:
        return None
    data = _np.frombuffer(buf, dtype=_np.uint8)
    last = data.size - 1
    bounds = _np.array(span_bounds, dtype=_np.int64)
    starts = bounds[0::2]
    stops = bounds[1::2]
    ok = (stops - starts) >= 4  # smallest canonical body: 0A 00 12 00
    ok &= data[_np.minimum(starts, last)] == 0x0A
    len1 = data[_np.minimum(starts + 1, last)].astype(_np.int64)
    ok &= len1 < 0x80
    run2_tag = starts + 2 + len1
    ok &= run2_tag + 1 < stops
    ok &= data[_np.minimum(run2_tag, last)] == 0x12
    len2 = data[_np.minimum(run2_tag + 1, last)].astype(_np.int64)
    ok &= len2 < 0x80
    ok &= run2_tag + 2 + len2 == stops
    ok_idx = _np.flatnonzero(ok)
    ok_list = ok.tolist()
    if not ok_idx.size:
        if as_array:
            return ok_list, _np.empty(0, dtype=_np.int64), \
                _np.zeros(1, dtype=_np.int64)
        return ok_list, [], [0]
    global _PACKED_RUNS_NUMPY
    _PACKED_RUNS_NUMPY += 1
    n_ok = ok_idx.size
    run_starts = _np.empty(2 * n_ok, dtype=_np.int64)
    run_lens = _np.empty(2 * n_ok, dtype=_np.int64)
    run_starts[0::2] = starts[ok_idx] + 2
    run_lens[0::2] = len1[ok_idx]
    run_starts[1::2] = run2_tag[ok_idx] + 2
    run_lens[1::2] = len2[ok_idx]
    bounds_end = _np.cumsum(run_lens)
    total = int(bounds_end[-1])
    gathered_starts = _np.empty_like(bounds_end)
    gathered_starts[0] = 0
    gathered_starts[1:] = bounds_end[:-1]
    # Lay every run's bytes end to end with one fancy gather: for run r,
    # position j in the gathered array maps back to
    # run_starts[r] + (j - gathered_starts[r]).
    gather = (_np.repeat(run_starts - gathered_starts, run_lens)
              + _np.arange(total, dtype=_np.int64))
    result = _assemble_packed(data[gather], bounds_end, as_array=as_array)
    if result is None:
        return None
    decoded, cum = result
    if as_array:
        offsets_a = _np.empty(cum.size + 1, dtype=_np.int64)
        offsets_a[0] = 0
        offsets_a[1:] = cum
        return ok_list, decoded, offsets_a
    offsets = [0]
    offsets.extend(cum.tolist())
    return ok_list, decoded, offsets


# --------------------------------------------------------------------------
# Writing
# --------------------------------------------------------------------------

#: Every 1- and 2-byte varint, pre-encoded.  Covers field tags, string
#: lengths, ids, line numbers — the overwhelming majority of varints a
#: profile writes.
_SMALL_VARINT_LIMIT = 1 << 14
_SMALL_VARINTS: Tuple[bytes, ...] = tuple(
    bytes([value]) if value < 0x80
    else bytes([(value & 0x7F) | 0x80, value >> 7])
    for value in range(_SMALL_VARINT_LIMIT))

_DOUBLE_ZERO = struct.pack("<d", 0.0)
_PACK_DOUBLE = struct.Struct("<d").pack


def append_varint(buf: bytearray, value: int) -> None:
    """Append one unsigned varint to ``buf`` (table fast path)."""
    if 0 <= value < _SMALL_VARINT_LIMIT:
        buf += _SMALL_VARINTS[value]
        return
    if value < 0:
        raise WireError("varint cannot encode negative value %d; "
                        "use the int64 sign-extension rule" % value)
    if value > _UINT64_MASK:
        raise WireError("varint value %d exceeds 64 bits" % value)
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def encode_varint(value: int) -> bytes:
    """Encode one unsigned varint (< 2**64) as ``bytes``."""
    if 0 <= value < _SMALL_VARINT_LIMIT:
        return _SMALL_VARINTS[value]
    buf = bytearray()
    append_varint(buf, value)
    return bytes(buf)


def encode_packed_int64s(values: Sequence[int]) -> bytes:
    """Bulk-encode a packed repeated ``int64`` body (no tag, no length).

    The all-single-byte fast path covers the id lists that dominate real
    profiles; everything else runs the table-assisted loop.  Negative
    values sign-extend to ten bytes, exactly like the reference codec.
    """
    if not values:
        return b""
    if 0 <= min(values) and max(values) < 0x80:
        return bytes(values)
    out = bytearray()
    append = out.append
    small = _SMALL_VARINTS
    for value in values:
        if 0 <= value < _SMALL_VARINT_LIMIT:
            out += small[value]
            continue
        value &= _UINT64_MASK
        while value >= 0x80:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    return bytes(out)


class Writer:
    """A one-pass message writer over a single growing ``bytearray``.

    API-compatible with the original chunk-list writer (``varint`` /
    ``sint`` / ``double`` / ``bytes`` / ``string`` / ``message`` /
    ``packed`` / ``getvalue``), with two additions:

    * ``begin_message(field)`` / ``end_message(mark)`` serialize a nested
      message *in place*: one length-prefix byte is reserved up front and
      patched when the scope closes, so child messages never serialize to
      a separate buffer first.  Messages under 128 bytes — almost every
      submessage in both schemas — patch without moving a single byte;
      larger ones shift their tail once.
    * ``__len__`` is O(1): the buffer knows its own size (the original
      recomputed ``sum(len(chunk) ...)`` per call).

    Proto3 default-suppression semantics are identical to the reference
    writer, including the ``-0.0`` bit-pattern presence rule.
    """

    __slots__ = ("_buf", "_emit_defaults")

    def __init__(self, emit_defaults: bool = False) -> None:
        self._buf = bytearray()
        self._emit_defaults = emit_defaults

    # -- scalar fields ----------------------------------------------------

    def varint(self, field_number: int, value: int) -> "Writer":
        """Write an ``int64``/``uint64``/``bool``/enum field."""
        if value or self._emit_defaults:
            if field_number < 1:
                raise WireError("field numbers must be positive, got %d"
                                % field_number)
            buf = self._buf
            append_varint(buf, field_number << 3)
            append_varint(buf, int(value) & _UINT64_MASK)
        return self

    def sint(self, field_number: int, value: int) -> "Writer":
        """Write a ZigZag-encoded ``sint64`` field."""
        if value or self._emit_defaults:
            if field_number < 1:
                raise WireError("field numbers must be positive, got %d"
                                % field_number)
            if not -_INT64_SIGN <= value < _INT64_SIGN:
                raise WireError("sint64 value %d out of range" % value)
            buf = self._buf
            append_varint(buf, field_number << 3)
            append_varint(buf,
                          ((value << 1) ^ (value >> 63)) & _UINT64_MASK)
        return self

    def double(self, field_number: int, value: float) -> "Writer":
        """Write a ``double`` field.

        Presence is judged on the bit pattern, not truthiness: ``-0.0``
        is falsy but bit-distinct from the proto3 default ``0.0`` and
        must reach the wire, or a round trip silently flips its sign.
        """
        packed = _PACK_DOUBLE(value)
        if self._emit_defaults or packed != _DOUBLE_ZERO:
            if field_number < 1:
                raise WireError("field numbers must be positive, got %d"
                                % field_number)
            buf = self._buf
            append_varint(buf, (field_number << 3) | WIRETYPE_FIXED64)
            buf += packed
        return self

    def fixed64(self, field_number: int, value: int) -> "Writer":
        """Write an unsigned ``fixed64`` field."""
        if value or self._emit_defaults:
            if field_number < 1:
                raise WireError("field numbers must be positive, got %d"
                                % field_number)
            buf = self._buf
            append_varint(buf, (field_number << 3) | WIRETYPE_FIXED64)
            buf += struct.pack("<Q", value & _UINT64_MASK)
        return self

    # -- delimited fields -------------------------------------------------

    def bytes(self, field_number: int, value: Buffer) -> "Writer":
        """Write a ``bytes`` field."""
        if value or self._emit_defaults:
            self._delimited(field_number, value)
        return self

    def string(self, field_number: int, value: str) -> "Writer":
        """Write a ``string`` field."""
        if value or self._emit_defaults:
            self._delimited(field_number, value.encode("utf-8"))
        return self

    def message(self, field_number: int, payload: Buffer) -> "Writer":
        """Write an embedded message field from its serialized payload.

        Unlike scalar fields, an *empty* message is still written when
        explicitly requested, because presence is meaningful for messages.
        (Prefer ``begin_message``/``end_message`` when the child is built
        by this writer; this form is for payloads that already exist.)
        """
        self._delimited(field_number, payload)
        return self

    def packed(self, field_number: int, values: Sequence[int]) -> "Writer":
        """Write a packed repeated integer field (bulk-encoded body)."""
        if values:
            self._delimited(field_number, encode_packed_int64s(values))
        return self

    def _delimited(self, field_number: int, payload: Buffer) -> None:
        if field_number < 1:
            raise WireError("field numbers must be positive, got %d"
                            % field_number)
        buf = self._buf
        append_varint(buf, (field_number << 3) | WIRETYPE_LENGTH_DELIMITED)
        append_varint(buf, len(payload))
        buf += payload

    # -- nested message scopes --------------------------------------------

    def begin_message(self, field_number: int) -> int:
        """Open a nested message field; returns the mark to close it with.

        Reserves a single length byte.  Scopes nest; close them in LIFO
        order (``end_message`` of an inner scope must precede the outer's).
        """
        if field_number < 1:
            raise WireError("field numbers must be positive, got %d"
                            % field_number)
        buf = self._buf
        append_varint(buf, (field_number << 3) | WIRETYPE_LENGTH_DELIMITED)
        buf.append(0)  # length placeholder, patched by end_message
        return len(buf)

    def end_message(self, mark: int) -> "Writer":
        """Close the scope opened at ``mark``, patching its length prefix."""
        buf = self._buf
        length = len(buf) - mark
        if length < 0x80:
            buf[mark - 1] = length
        else:
            # Rare path: the placeholder byte grows into a full varint and
            # the tail shifts once (a C-level memmove).
            buf[mark - 1:mark] = encode_varint(length)
        return self

    # -- output -----------------------------------------------------------

    def getvalue(self) -> bytes:
        """Return the serialized message."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


# --------------------------------------------------------------------------
# Interning string-table decode
# --------------------------------------------------------------------------

class StringInterner:
    """A bounded intern pool for decoded UTF-8 payloads.

    Profile string tables repeat enormously across profiles — every
    segment in a store, every WAL record from the same service carries the
    same function names and file paths.  Decoding through one shared pool
    makes each distinct string a single ``str`` object process-wide, which
    both skips redundant UTF-8 decodes and turns downstream equality
    checks into pointer compares.

    The pool is bounded: when full it is cleared wholesale (a decode
    cache, not a registry — correctness never depends on a hit).  Lookups
    and inserts are single dict operations, safe under the GIL.
    """

    __slots__ = ("max_entries", "_cache", "hits", "misses")

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self.max_entries = max_entries
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    def decode(self, payload: Buffer) -> str:
        """Decode a UTF-8 payload through the pool."""
        key = bytes(payload)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        text = key.decode("utf-8")
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[key] = text
        return text

    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> dict:
        return {"entries": len(self._cache), "hits": self.hits,
                "misses": self.misses, "maxEntries": self.max_entries}


#: The process-wide pool shared by pprof string tables, segment footers,
#: and WAL metadata decode.
_interner = StringInterner()


def get_interner() -> StringInterner:
    """The shared string-table intern pool."""
    return _interner


def intern_string(payload: Buffer) -> str:
    """Decode a UTF-8 payload through the shared intern pool."""
    return _interner.decode(payload)


def decode_string(payload: Buffer) -> str:
    """Decode a UTF-8 payload without interning (one-off strings)."""
    return str(payload, "utf-8")
