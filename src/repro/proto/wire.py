"""Protocol Buffers wire-format codec, implemented from scratch.

EasyView expresses its generic profile representation in a Protocol Buffer
schema and consumes pprof's binary ``profile.proto`` payloads.  This module
implements the subset of the proto3 wire format both schemas need:

* base-128 varints (``uint64``/``int64``/``bool``/enums),
* ZigZag-encoded signed varints (``sint64``),
* little-endian fixed 32/64-bit fields (``fixed64``/``double``/``float``),
* length-delimited fields (``bytes``/``string``/embedded messages),
* packed repeated scalar fields.

The encoding rules follow the official wire-format specification
(https://protobuf.dev/programming-guides/encoding/).  No third-party
dependency is used; real ``pprof`` files produced by Go's runtime decode with
this codec (see ``repro.proto.pprof_pb``).

The scalar helpers below are the simple, single-value implementations and
double as the codec's executable spec.  The *hot* paths — :class:`Writer`
and :func:`iter_fields` — are thin shims over the zero-copy streaming
kernels in :mod:`repro.proto.fastwire`; the original chunk-list writer and
per-call field iterator are preserved in :mod:`repro.proto.reference` for
equality testing and benchmarking.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from . import fastwire
from .fastwire import WireError  # single error type across both codecs

# Wire types from the protobuf specification.
WIRETYPE_VARINT = 0
WIRETYPE_FIXED64 = 1
WIRETYPE_LENGTH_DELIMITED = 2
WIRETYPE_START_GROUP = 3  # deprecated in proto3; recognized but rejected
WIRETYPE_END_GROUP = 4
WIRETYPE_FIXED32 = 5

_MAX_VARINT_BYTES = 10  # ceil(64 / 7)
_UINT64_MASK = (1 << 64) - 1


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer (< 2**64) as a base-128 varint."""
    if value < 0:
        raise WireError("varint cannot encode negative value %d; "
                        "use encode_signed_varint" % value)
    if value > _UINT64_MASK:
        raise WireError("varint value %d exceeds 64 bits" % value)
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def decode_varint(data: bytes, pos: int = 0) -> Tuple[int, int]:
    """Decode a varint starting at ``pos``.

    Returns ``(value, next_pos)``.  Raises :class:`WireError` on truncated or
    over-long input.
    """
    result = 0
    shift = 0
    start = pos
    end = len(data)
    while pos < end:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if pos - start > _MAX_VARINT_BYTES:
                raise WireError("varint longer than 10 bytes at offset %d" % start)
            return result & _UINT64_MASK, pos
        shift += 7
        if shift >= 70:
            raise WireError("varint longer than 10 bytes at offset %d" % start)
    raise WireError("truncated varint at offset %d" % start)


def zigzag_encode(value: int) -> int:
    """Map a signed 64-bit integer onto an unsigned one (ZigZag)."""
    if not -(1 << 63) <= value < (1 << 63):
        raise WireError("sint64 value %d out of range" % value)
    return ((value << 1) ^ (value >> 63)) & _UINT64_MASK


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_signed_varint(value: int) -> bytes:
    """Encode a signed integer using the two's-complement ``int64`` rule.

    proto3 ``int64`` fields sign-extend negative numbers to ten bytes rather
    than ZigZag-encoding them; pprof uses ``int64`` throughout.
    """
    return encode_varint(value & _UINT64_MASK)


def decode_signed_varint(data: bytes, pos: int = 0) -> Tuple[int, int]:
    """Decode an ``int64`` varint (sign-extended two's complement)."""
    value, pos = decode_varint(data, pos)
    if value >= 1 << 63:
        value -= 1 << 64
    return value, pos


def encode_tag(field_number: int, wire_type: int) -> bytes:
    """Encode a field tag (field number + wire type)."""
    if field_number < 1:
        raise WireError("field numbers must be positive, got %d" % field_number)
    if wire_type not in (WIRETYPE_VARINT, WIRETYPE_FIXED64,
                         WIRETYPE_LENGTH_DELIMITED, WIRETYPE_FIXED32):
        raise WireError("unsupported wire type %d" % wire_type)
    return encode_varint((field_number << 3) | wire_type)


def decode_tag(data: bytes, pos: int) -> Tuple[int, int, int]:
    """Decode a field tag; returns ``(field_number, wire_type, next_pos)``."""
    key, pos = decode_varint(data, pos)
    field_number = key >> 3
    wire_type = key & 0x7
    if field_number == 0:
        raise WireError("field number 0 is reserved")
    return field_number, wire_type, pos


def encode_fixed64(value: int) -> bytes:
    """Encode an unsigned integer as 8 little-endian bytes."""
    return struct.pack("<Q", value & _UINT64_MASK)


def decode_fixed64(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode an 8-byte little-endian unsigned integer."""
    if pos + 8 > len(data):
        raise WireError("truncated fixed64 at offset %d" % pos)
    return struct.unpack_from("<Q", data, pos)[0], pos + 8


def encode_fixed32(value: int) -> bytes:
    """Encode an unsigned integer as 4 little-endian bytes."""
    return struct.pack("<I", value & 0xFFFFFFFF)


def decode_fixed32(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode a 4-byte little-endian unsigned integer."""
    if pos + 4 > len(data):
        raise WireError("truncated fixed32 at offset %d" % pos)
    return struct.unpack_from("<I", data, pos)[0], pos + 4


def encode_double(value: float) -> bytes:
    """Encode a ``double`` field payload."""
    return struct.pack("<d", value)


#: The bit pattern of the proto3 double default (+0.0); only this exact
#: pattern is absent from the wire — ``-0.0`` has the sign bit set.
_DOUBLE_ZERO = struct.pack("<d", 0.0)


def decode_double(data: bytes, pos: int) -> Tuple[float, int]:
    """Decode a ``double`` field payload."""
    if pos + 8 > len(data):
        raise WireError("truncated double at offset %d" % pos)
    return struct.unpack_from("<d", data, pos)[0], pos + 8


def encode_bytes(value: bytes) -> bytes:
    """Encode a length-delimited payload (length prefix + raw bytes)."""
    return encode_varint(len(value)) + value


def decode_bytes(data: bytes, pos: int) -> Tuple[bytes, int]:
    """Decode a length-delimited payload; returns ``(payload, next_pos)``."""
    length, pos = decode_varint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireError("length-delimited field overruns buffer at offset %d" % pos)
    return data[pos:end], end


def encode_string(value: str) -> bytes:
    """Encode a UTF-8 string field payload."""
    return encode_bytes(value.encode("utf-8"))


def skip_field(data: bytes, wire_type: int, pos: int) -> int:
    """Skip an unknown field's payload; returns the next position."""
    if wire_type == WIRETYPE_VARINT:
        _, pos = decode_varint(data, pos)
        return pos
    if wire_type == WIRETYPE_FIXED64:
        if pos + 8 > len(data):
            raise WireError("truncated fixed64 while skipping at offset %d" % pos)
        return pos + 8
    if wire_type == WIRETYPE_LENGTH_DELIMITED:
        _, pos = decode_bytes(data, pos)
        return pos
    if wire_type == WIRETYPE_FIXED32:
        if pos + 4 > len(data):
            raise WireError("truncated fixed32 while skipping at offset %d" % pos)
        return pos + 4
    raise WireError("cannot skip wire type %d (groups are unsupported)" % wire_type)


def iter_fields(data: bytes) -> Iterator[Tuple[int, int, object]]:
    """Iterate over the top-level fields of a serialized message.

    Yields ``(field_number, wire_type, raw_value)`` where ``raw_value`` is an
    ``int`` for varint/fixed fields and ``bytes`` for length-delimited fields.
    Unknown wire types raise :class:`WireError`.

    This is the compatibility surface over :func:`fastwire.scan_fields`:
    delimited payloads are materialized as ``bytes`` so existing callers
    keep ``.decode()`` and hashing working.  Hot paths that can handle
    ``memoryview`` should call ``scan_fields`` directly and skip the copy.
    """
    for field_number, wire_type, value in fastwire.scan_fields(data):
        if wire_type == WIRETYPE_LENGTH_DELIMITED:
            value = bytes(value)
        yield field_number, wire_type, value


def encode_packed_varints(values: List[int]) -> bytes:
    """Encode a packed repeated varint payload (proto3 default packing)."""
    body = b"".join(encode_signed_varint(v) for v in values)
    return encode_bytes(body)


def decode_packed_varints(payload: bytes) -> List[int]:
    """Decode a packed repeated ``int64`` payload into a list."""
    values: List[int] = []
    pos = 0
    end = len(payload)
    while pos < end:
        value, pos = decode_signed_varint(payload, pos)
        values.append(value)
    return values


class Writer(fastwire.Writer):
    """Incremental message writer.

    Accumulates encoded fields and produces the final byte string.  Methods
    are no-ops for proto3 default values (0, empty, False) unless
    ``emit_defaults`` is set, mirroring proto3 semantics where defaults are
    not put on the wire.

    Since the fast-path rewrite this is the single-``bytearray`` writer
    from :mod:`repro.proto.fastwire` — byte-identical output to the
    original chunk-list writer (asserted against
    :class:`repro.proto.reference.Writer` in the codec tests), with an
    O(1) ``__len__`` instead of a per-call ``sum()`` over chunks, and
    one-pass nested serialization via ``begin_message``/``end_message``.
    """

    __slots__ = ()
