"""EasyView's generic profile representation as Protocol Buffer messages.

This is the schema sketched in Figure 2 of the paper: all monitoring points
are organized into a compact calling context tree (CCT) formed by merging
common call-path prefixes.  Each monitoring point carries (a) one or more
*context* references into the CCT — more than one for multi-context
inefficiencies such as use/reuse pairs, redundant/killing pairs, data races,
and false sharing — and (b) a list of metric values.

Contexts cover both traditional code regions (program, function, loop, basic
block, instruction) and data objects (heap objects named by their allocation
call path, static objects named from the symbol table), which is what lets
EasyView host data-centric memory profilers.

All strings are interned in a single string table (index 0 is the empty
string, like pprof), keeping serialized profiles compact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from . import wire

FORMAT_MAGIC = b"EZVW"
FORMAT_VERSION = 1

# ContextNode.kind values.
CONTEXT_ROOT = 0
CONTEXT_FUNCTION = 1
CONTEXT_LOOP = 2
CONTEXT_BASIC_BLOCK = 3
CONTEXT_INSTRUCTION = 4
CONTEXT_DATA_OBJECT = 5
CONTEXT_THREAD = 6

CONTEXT_KIND_NAMES = {
    CONTEXT_ROOT: "root",
    CONTEXT_FUNCTION: "function",
    CONTEXT_LOOP: "loop",
    CONTEXT_BASIC_BLOCK: "basic_block",
    CONTEXT_INSTRUCTION: "instruction",
    CONTEXT_DATA_OBJECT: "data_object",
    CONTEXT_THREAD: "thread",
}

# MonitoringPoint.kind values.
POINT_PLAIN = 0
POINT_ALLOCATION = 1
POINT_USE_REUSE = 2
POINT_REDUNDANCY = 3
POINT_DATA_RACE = 4
POINT_FALSE_SHARING = 5

# MetricDescriptor.aggregation values.
AGG_SUM = 0
AGG_MIN = 1
AGG_MAX = 2
AGG_MEAN = 3
AGG_LAST = 4


@dataclass
class MetricDescriptor:
    """Schema for one metric column (name/unit/description as string ids)."""

    name: int = 0
    unit: int = 0
    description: int = 0
    aggregation: int = AGG_SUM

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.name)
                .varint(2, self.unit)
                .varint(3, self.description)
                .varint(4, self.aggregation)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "MetricDescriptor":
        msg = cls()
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.name = int(value)  # type: ignore[arg-type]
            elif num == 2:
                msg.unit = int(value)  # type: ignore[arg-type]
            elif num == 3:
                msg.description = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.aggregation = int(value)  # type: ignore[arg-type]
        return msg


@dataclass
class ContextNode:
    """One CCT node with its source-code attribution.

    ``parent_id`` forms the tree (0 for the root, whose own id is 0).  All
    textual attribution (function name, file path, load module, data-object
    name) is interned in the profile string table.
    """

    id: int = 0
    parent_id: int = 0
    kind: int = CONTEXT_FUNCTION
    name: int = 0          # function name / loop label / object name
    file: int = 0          # source file path
    line: int = 0          # 1-based source line; 0 = unknown
    module: int = 0        # load module (binary / shared library)
    address: int = 0       # instruction pointer, when available

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.id)
                .varint(2, self.parent_id)
                .varint(3, self.kind)
                .varint(4, self.name)
                .varint(5, self.file)
                .varint(6, self.line)
                .varint(7, self.module)
                .varint(8, self.address)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "ContextNode":
        # proto3 drops zero values, so the decode default for ``kind`` must
        # be the zero enum member (CONTEXT_ROOT), not the dataclass default.
        msg = cls(kind=CONTEXT_ROOT)
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.id = int(value)  # type: ignore[arg-type]
            elif num == 2:
                msg.parent_id = int(value)  # type: ignore[arg-type]
            elif num == 3:
                msg.kind = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.name = int(value)  # type: ignore[arg-type]
            elif num == 5:
                msg.file = int(value)  # type: ignore[arg-type]
            elif num == 6:
                msg.line = int(value)  # type: ignore[arg-type]
            elif num == 7:
                msg.module = int(value)  # type: ignore[arg-type]
            elif num == 8:
                msg.address = int(value)  # type: ignore[arg-type]
        return msg


@dataclass
class MetricValue:
    """One metric sample: a descriptor index plus a numeric value.

    Values are stored as IEEE doubles; integer metrics (bytes, counts) are
    exact up to 2**53 which covers every profiler we studied.
    """

    metric_id: int = 0
    value: float = 0.0

    def serialize(self) -> bytes:
        return (wire.Writer()
                .varint(1, self.metric_id)
                .double(2, self.value)
                .getvalue())

    @classmethod
    def parse(cls, data: bytes) -> "MetricValue":
        msg = cls()
        for num, wtype, value in wire.iter_fields(data):
            if num == 1:
                msg.metric_id = int(value)  # type: ignore[arg-type]
            elif num == 2:
                if wtype != wire.WIRETYPE_FIXED64:
                    raise wire.WireError("MetricValue.value must be a double")
                raw = int(value)  # type: ignore[arg-type]
                msg.value = _bits_to_double(raw)
        return msg


@dataclass
class MonitoringPoint:
    """A measurement: N context references + M metric values.

    ``context_id`` usually holds one id; multi-context inefficiencies (use /
    reuse, redundant / killing, racing accesses) reference several contexts
    in a kind-specific order.  ``sequence`` orders points within a series of
    snapshots (e.g. periodic memory captures) and is 0 otherwise.
    """

    context_id: List[int] = field(default_factory=list)
    values: List[MetricValue] = field(default_factory=list)
    kind: int = POINT_PLAIN
    sequence: int = 0

    def serialize(self) -> bytes:
        writer = wire.Writer()
        writer.packed(1, self.context_id)
        for mv in self.values:
            writer.message(2, mv.serialize())
        writer.varint(3, self.kind)
        writer.varint(4, self.sequence)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: bytes) -> "MonitoringPoint":
        msg = cls()
        for num, wtype, value in wire.iter_fields(data):
            if num == 1:
                if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
                    assert isinstance(value, bytes)
                    msg.context_id.extend(wire.decode_packed_varints(value))
                else:
                    msg.context_id.append(int(value))  # type: ignore[arg-type]
            elif num == 2:
                msg.values.append(MetricValue.parse(value))
            elif num == 3:
                msg.kind = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.sequence = int(value)  # type: ignore[arg-type]
        return msg


@dataclass
class ProfileMessage:
    """Top-level EasyView profile message."""

    tool: int = 0                      # producing profiler's name (string id)
    string_table: List[str] = field(default_factory=lambda: [""])
    metrics: List[MetricDescriptor] = field(default_factory=list)
    nodes: List[ContextNode] = field(default_factory=list)
    points: List[MonitoringPoint] = field(default_factory=list)
    time_nanos: int = 0
    duration_nanos: int = 0

    def serialize(self) -> bytes:
        writer = wire.Writer()
        writer.varint(1, self.tool)
        for s in self.string_table:
            writer.message(2, s.encode("utf-8"))
        for md in self.metrics:
            writer.message(3, md.serialize())
        for node in self.nodes:
            writer.message(4, node.serialize())
        for point in self.points:
            writer.message(5, point.serialize())
        writer.varint(6, self.time_nanos)
        writer.varint(7, self.duration_nanos)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: bytes) -> "ProfileMessage":
        msg = cls(string_table=[])
        for num, _, value in wire.iter_fields(data):
            if num == 1:
                msg.tool = int(value)  # type: ignore[arg-type]
            elif num == 2:
                msg.string_table.append(value.decode("utf-8"))
            elif num == 3:
                msg.metrics.append(MetricDescriptor.parse(value))
            elif num == 4:
                msg.nodes.append(ContextNode.parse(value))
            elif num == 5:
                msg.points.append(MonitoringPoint.parse(value))
            elif num == 6:
                msg.time_nanos = int(value)  # type: ignore[arg-type]
            elif num == 7:
                msg.duration_nanos = int(value)  # type: ignore[arg-type]
        if not msg.string_table:
            msg.string_table = [""]
        return msg


def dumps(message: ProfileMessage) -> bytes:
    """Serialize with the EasyView file framing (magic + version)."""
    body = message.serialize()
    header = FORMAT_MAGIC + bytes([FORMAT_VERSION])
    return header + wire.encode_varint(len(body)) + body


def loads(data: bytes) -> ProfileMessage:
    """Parse an EasyView file, validating magic, version, and length."""
    if data[:4] != FORMAT_MAGIC:
        raise wire.WireError("not an EasyView profile: bad magic %r" % data[:4])
    if len(data) < 5 or data[4] != FORMAT_VERSION:
        raise wire.WireError("unsupported EasyView format version")
    length, pos = wire.decode_varint(data, 5)
    body = data[pos:pos + length]
    if len(body) != length:
        raise wire.WireError("truncated EasyView profile body")
    return ProfileMessage.parse(body)


def _bits_to_double(bits: int) -> float:
    import struct
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]
