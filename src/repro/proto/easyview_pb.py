"""EasyView's generic profile representation as Protocol Buffer messages.

This is the schema sketched in Figure 2 of the paper: all monitoring points
are organized into a compact calling context tree (CCT) formed by merging
common call-path prefixes.  Each monitoring point carries (a) one or more
*context* references into the CCT — more than one for multi-context
inefficiencies such as use/reuse pairs, redundant/killing pairs, data races,
and false sharing — and (b) a list of metric values.

Contexts cover both traditional code regions (program, function, loop, basic
block, instruction) and data objects (heap objects named by their allocation
call path, static objects named from the symbol table), which is what lets
EasyView host data-centric memory profilers.

All strings are interned in a single string table (index 0 is the empty
string, like pprof), keeping serialized profiles compact.

Decode and encode run on the :mod:`repro.proto.fastwire` kernels
(zero-copy ``memoryview`` streaming, one-pass nested serialization);
output is byte-identical to the original codec preserved in
:mod:`repro.proto.reference`.
"""

from __future__ import annotations

import gc
import struct
from dataclasses import dataclass, field
from typing import List

from ..obs import get_registry, get_tracer
from . import wire
from .fastwire import (Buffer, PackedInt64Batch, Reader, Writer, as_view,
                       decode_packed_int64s, intern_string, scan_fields)

FORMAT_MAGIC = b"EZVW"
FORMAT_VERSION = 1

_tracer = get_tracer()
_registry = get_registry()
_parse_calls = _registry.counter(
    "codec.easyview.parse_calls", "EasyView profiles parsed via fastwire")
_parse_bytes = _registry.counter(
    "codec.easyview.parse_bytes", "raw EasyView bytes decoded via fastwire")
_serialize_calls = _registry.counter(
    "codec.easyview.serialize_calls",
    "EasyView profiles serialized via fastwire")
_serialize_bytes = _registry.counter(
    "codec.easyview.serialize_bytes", "EasyView bytes encoded via fastwire")

# ContextNode.kind values.
CONTEXT_ROOT = 0
CONTEXT_FUNCTION = 1
CONTEXT_LOOP = 2
CONTEXT_BASIC_BLOCK = 3
CONTEXT_INSTRUCTION = 4
CONTEXT_DATA_OBJECT = 5
CONTEXT_THREAD = 6

CONTEXT_KIND_NAMES = {
    CONTEXT_ROOT: "root",
    CONTEXT_FUNCTION: "function",
    CONTEXT_LOOP: "loop",
    CONTEXT_BASIC_BLOCK: "basic_block",
    CONTEXT_INSTRUCTION: "instruction",
    CONTEXT_DATA_OBJECT: "data_object",
    CONTEXT_THREAD: "thread",
}

# MonitoringPoint.kind values.
POINT_PLAIN = 0
POINT_ALLOCATION = 1
POINT_USE_REUSE = 2
POINT_REDUNDANCY = 3
POINT_DATA_RACE = 4
POINT_FALSE_SHARING = 5

# MetricDescriptor.aggregation values.
AGG_SUM = 0
AGG_MIN = 1
AGG_MAX = 2
AGG_MEAN = 3
AGG_LAST = 4


@dataclass
class MetricDescriptor:
    """Schema for one metric column (name/unit/description as string ids)."""

    name: int = 0
    unit: int = 0
    description: int = 0
    aggregation: int = AGG_SUM

    def _fields(self, writer: Writer) -> None:
        (writer.varint(1, self.name)
         .varint(2, self.unit)
         .varint(3, self.description)
         .varint(4, self.aggregation))

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "MetricDescriptor":
        msg = cls()
        for num, _, value in scan_fields(data):
            if num == 1:
                msg.name = int(value)  # type: ignore[arg-type]
            elif num == 2:
                msg.unit = int(value)  # type: ignore[arg-type]
            elif num == 3:
                msg.description = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.aggregation = int(value)  # type: ignore[arg-type]
        return msg


@dataclass
class ContextNode:
    """One CCT node with its source-code attribution.

    ``parent_id`` forms the tree (0 for the root, whose own id is 0).  All
    textual attribution (function name, file path, load module, data-object
    name) is interned in the profile string table.
    """

    id: int = 0
    parent_id: int = 0
    kind: int = CONTEXT_FUNCTION
    name: int = 0          # function name / loop label / object name
    file: int = 0          # source file path
    line: int = 0          # 1-based source line; 0 = unknown
    module: int = 0        # load module (binary / shared library)
    address: int = 0       # instruction pointer, when available

    def _fields(self, writer: Writer) -> None:
        (writer.varint(1, self.id)
         .varint(2, self.parent_id)
         .varint(3, self.kind)
         .varint(4, self.name)
         .varint(5, self.file)
         .varint(6, self.line)
         .varint(7, self.module)
         .varint(8, self.address))

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "ContextNode":
        # proto3 drops zero values, so the decode default for ``kind`` must
        # be the zero enum member (CONTEXT_ROOT), not the dataclass default.
        msg = cls(kind=CONTEXT_ROOT)
        for num, _, value in scan_fields(data):
            if num == 1:
                msg.id = int(value)  # type: ignore[arg-type]
            elif num == 2:
                msg.parent_id = int(value)  # type: ignore[arg-type]
            elif num == 3:
                msg.kind = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.name = int(value)  # type: ignore[arg-type]
            elif num == 5:
                msg.file = int(value)  # type: ignore[arg-type]
            elif num == 6:
                msg.line = int(value)  # type: ignore[arg-type]
            elif num == 7:
                msg.module = int(value)  # type: ignore[arg-type]
            elif num == 8:
                msg.address = int(value)  # type: ignore[arg-type]
        return msg


@dataclass
class MetricValue:
    """One metric sample: a descriptor index plus a numeric value.

    Values are stored as IEEE doubles; integer metrics (bytes, counts) are
    exact up to 2**53 which covers every profiler we studied.
    """

    metric_id: int = 0
    value: float = 0.0

    def _fields(self, writer: Writer) -> None:
        writer.varint(1, self.metric_id).double(2, self.value)

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "MetricValue":
        msg = cls()
        for num, wtype, value in scan_fields(data):
            if num == 1:
                msg.metric_id = int(value)  # type: ignore[arg-type]
            elif num == 2:
                if wtype != wire.WIRETYPE_FIXED64:
                    raise wire.WireError("MetricValue.value must be a double")
                raw = int(value)  # type: ignore[arg-type]
                msg.value = _bits_to_double(raw)
        return msg


@dataclass
class MonitoringPoint:
    """A measurement: N context references + M metric values.

    ``context_id`` usually holds one id; multi-context inefficiencies (use /
    reuse, redundant / killing, racing accesses) reference several contexts
    in a kind-specific order.  ``sequence`` orders points within a series of
    snapshots (e.g. periodic memory captures) and is 0 otherwise.
    """

    context_id: List[int] = field(default_factory=list)
    values: List[MetricValue] = field(default_factory=list)
    kind: int = POINT_PLAIN
    sequence: int = 0

    def _fields(self, writer: Writer) -> None:
        writer.packed(1, self.context_id)
        for mv in self.values:
            mark = writer.begin_message(2)
            mv._fields(writer)
            writer.end_message(mark)
        writer.varint(3, self.kind)
        writer.varint(4, self.sequence)

    def serialize(self) -> bytes:
        writer = Writer()
        self._fields(writer)
        return writer.getvalue()

    @classmethod
    def parse(cls, data: Buffer) -> "MonitoringPoint":
        msg = cls()
        for num, wtype, value in scan_fields(data):
            if num == 1:
                if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
                    msg.context_id.extend(decode_packed_int64s(value))
                else:
                    msg.context_id.append(int(value))  # type: ignore[arg-type]
            elif num == 2:
                msg.values.append(MetricValue.parse(value))
            elif num == 3:
                msg.kind = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.sequence = int(value)  # type: ignore[arg-type]
        return msg

    @classmethod
    def _parse_deferred(cls, data: Buffer,
                        batch: PackedInt64Batch) -> "MonitoringPoint":
        """Like :meth:`parse`, but ``context_id`` decodes via the batch."""
        msg = cls()
        context_id = msg.context_id
        for num, wtype, value in scan_fields(data):
            if num == 1:
                if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
                    batch.add(value, context_id)
                else:
                    batch.drain(context_id)  # keep wire order
                    context_id.append(int(value))  # type: ignore[arg-type]
            elif num == 2:
                msg.values.append(MetricValue.parse(value))
            elif num == 3:
                msg.kind = int(value)  # type: ignore[arg-type]
            elif num == 4:
                msg.sequence = int(value)  # type: ignore[arg-type]
        return msg


@dataclass
class ProfileMessage:
    """Top-level EasyView profile message."""

    tool: int = 0                      # producing profiler's name (string id)
    string_table: List[str] = field(default_factory=lambda: [""])
    metrics: List[MetricDescriptor] = field(default_factory=list)
    nodes: List[ContextNode] = field(default_factory=list)
    points: List[MonitoringPoint] = field(default_factory=list)
    time_nanos: int = 0
    duration_nanos: int = 0

    def serialize(self) -> bytes:
        writer = Writer()
        begin = writer.begin_message
        end = writer.end_message
        writer.varint(1, self.tool)
        for s in self.string_table:
            writer.message(2, s.encode("utf-8"))
        for md in self.metrics:
            mark = begin(3)
            md._fields(writer)
            end(mark)
        for node in self.nodes:
            mark = begin(4)
            node._fields(writer)
            end(mark)
        for point in self.points:
            mark = begin(5)
            point._fields(writer)
            end(mark)
        writer.varint(6, self.time_nanos)
        writer.varint(7, self.duration_nanos)
        data = writer.getvalue()
        _serialize_calls.inc()
        _serialize_bytes.inc(len(data))
        return data

    @classmethod
    def parse(cls, data: Buffer) -> "ProfileMessage":
        _parse_calls.inc()
        _parse_bytes.inc(len(data))
        # Same allocation-burst reasoning as ``pprof_pb.Profile.parse``:
        # pausing the cyclic collector while hundreds of thousands of
        # acyclic containers are born beats letting gen-0 sweeps rescan
        # the growing graph every ~700 allocations.  (Inline mirror of
        # ``core.gcguard.no_gc``; importing it here would be circular.)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return cls._parse_impl(data)
        finally:
            if gc_was_enabled:
                gc.enable()

    @classmethod
    def _parse_impl(cls, data: Buffer) -> "ProfileMessage":
        msg = cls(string_table=[])
        batch = PackedInt64Batch()
        point_parse = MonitoringPoint._parse_deferred
        points = msg.points
        strings = msg.string_table
        for num, _, value in scan_fields(data):
            if num == 5:  # monitoring points dominate; check them first
                points.append(point_parse(value, batch))
            elif num == 4:
                msg.nodes.append(ContextNode.parse(value))
            elif num == 2:
                strings.append(intern_string(value))
            elif num == 3:
                msg.metrics.append(MetricDescriptor.parse(value))
            elif num == 1:
                msg.tool = int(value)  # type: ignore[arg-type]
            elif num == 6:
                msg.time_nanos = int(value)  # type: ignore[arg-type]
            elif num == 7:
                msg.duration_nanos = int(value)  # type: ignore[arg-type]
        batch.flush()
        if not msg.string_table:
            msg.string_table = [""]
        return msg


def dumps(message: ProfileMessage) -> bytes:
    """Serialize with the EasyView file framing (magic + version)."""
    with _tracer.span("codec.easyview.serialize"):
        body = message.serialize()
        header = FORMAT_MAGIC + bytes([FORMAT_VERSION])
        return header + wire.encode_varint(len(body)) + body


def loads(data: Buffer) -> ProfileMessage:
    """Parse an EasyView file, validating magic, version, and length.

    The body is parsed as a zero-copy subview of ``data``; nothing is
    copied between the framing check and the decoded dataclasses.
    """
    with _tracer.span("codec.easyview.parse", bytes=len(data)):
        view = as_view(data)
        if bytes(view[:4]) != FORMAT_MAGIC:
            raise wire.WireError(
                "not an EasyView profile: bad magic %r" % bytes(view[:4]))
        if len(view) < 5 or view[4] != FORMAT_VERSION:
            raise wire.WireError("unsupported EasyView format version")
        reader = Reader(view, pos=5)
        length = reader.varint()
        body = view[reader.pos:reader.pos + length]
        if len(body) != length:
            raise wire.WireError("truncated EasyView profile body")
        return ProfileMessage.parse(body)


def _bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]
