"""Profile construction and validation.

:class:`ProfileBuilder` assembles profiles from call paths and metric
values; :func:`validate` sanity-checks the result.  See
:mod:`repro.builder.builder` and :mod:`repro.builder.validate`.
"""

from .builder import FrameSpec, ProfileBuilder
from .validate import ValidationReport, validate

__all__ = ["FrameSpec", "ProfileBuilder", "ValidationReport", "validate"]
