"""Structural validation of built profiles.

:func:`validate` inspects a finished :class:`~repro.core.profile.Profile`
for model violations (errors) and quality problems that degrade the viewer
experience (warnings): unused metric columns, frames whose line numbers
cannot become code links, negative totals for summed metrics, and
monitoring points whose context lists do not match their kind.

The deeper rule-based diagnostics live in :mod:`repro.lint`; this module
is the cheap always-on sanity check run by converters and the
``easyview validate`` subcommand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..core.monitor import POINT_ARITY
from ..core.profile import Profile


@dataclass
class ValidationReport:
    """The outcome of one validation pass."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings are tolerated)."""
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def __str__(self) -> str:
        lines = ["error: %s" % e for e in self.errors]
        lines += ["warning: %s" % w for w in self.warnings]
        return "\n".join(lines) if lines else "OK"


def validate(profile: Profile) -> ValidationReport:
    """Validate a profile's structure; returns a :class:`ValidationReport`."""
    report = ValidationReport()
    schema_size = len(profile.schema)
    used_columns = set()
    negative_totals = [0.0] * schema_size

    for node in profile.nodes():
        for index, value in node.metrics.items():
            if not 0 <= index < schema_size:
                report.error(
                    "node %r carries metric column %d outside the schema "
                    "(%d columns)" % (node.frame.label(), index, schema_size))
                continue
            used_columns.add(index)
            if math.isnan(value):
                report.error("node %r has NaN for metric %r"
                             % (node.frame.label(),
                                profile.schema[index].name))
            elif value < 0:
                negative_totals[index] += value
        frame = node.frame
        if frame.line > 0 and not frame.file:
            report.warn(
                "frame %r has line %d but no file: the viewer cannot "
                "make a code link for it" % (frame.label(), frame.line))

    for position, point in enumerate(profile.points):
        if not point.arity_ok():
            report.error(
                "monitoring point #%d of kind %s expects %d contexts, "
                "got %d" % (position, point.kind.name,
                            POINT_ARITY.get(point.kind, 0),
                            len(point.contexts)))
        if point.sequence < 0:
            report.error("monitoring point #%d has negative snapshot "
                         "sequence %d" % (position, point.sequence))
        for index in point.values:
            if 0 <= index < schema_size:
                used_columns.add(index)
            else:
                report.error(
                    "monitoring point #%d carries metric column %d outside "
                    "the schema (%d columns)"
                    % (position, index, schema_size))

    for index, metric in enumerate(profile.schema):
        if index not in used_columns:
            report.warn("metric %r is declared but unused (no node or "
                        "point carries a value for it)" % metric.name)
        if negative_totals[index] < 0:
            report.warn(
                "metric %r accumulates negative values (%.6g total); "
                "summed metrics are normally non-negative"
                % (metric.name, negative_totals[index]))

    return report
