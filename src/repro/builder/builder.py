"""The :class:`ProfileBuilder`: the friendly way to construct profiles.

Converters, synthetic profilers, and tests all build profiles the same
way: declare metric columns, then feed call paths with values.  Frames can
be given as plain strings, ``(name, file, line, module)`` tuples, or
:class:`~repro.core.frame.Frame` objects; paths are root-first (use
:meth:`ProfileBuilder.leaf_sample` for leaf-first stacks as produced by
most unwinders).

Advanced monitoring points — snapshot series, allocations with data-object
contexts, and multi-context inefficiency points — are recorded as
first-class :class:`~repro.core.monitor.MonitoringPoint` objects, exactly
as the paper's representation requires (§IV-A).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from ..core.cct import CCTNode
from ..core.frame import Frame, FrameKind, data_object_frame, intern_frame
from ..core.metric import Aggregation, Metric
from ..core.monitor import MonitoringPoint, PointKind
from ..core.profile import Profile, ProfileMeta

#: What callers may pass wherever a frame is expected.
FrameSpec = Union[str, tuple, Frame]


def _coerce_frame(spec: FrameSpec) -> Frame:
    """Normalize a frame spec into an interned :class:`Frame`.

    Accepted shapes: a :class:`Frame` (returned as-is), a bare name string,
    or a ``(name,)`` / ``(name, file)`` / ``(name, file, line)`` /
    ``(name, file, line, module)`` tuple.
    """
    if isinstance(spec, Frame):
        return spec
    if isinstance(spec, str):
        return intern_frame(spec)
    if isinstance(spec, tuple):
        if not 1 <= len(spec) <= 4:
            raise ValueError(
                "frame tuple must have 1..4 elements "
                "(name, file, line, module), got %r" % (spec,))
        name = spec[0]
        file = spec[1] if len(spec) > 1 else ""
        line = spec[2] if len(spec) > 2 else 0
        module = spec[3] if len(spec) > 3 else ""
        return intern_frame(name, file, line, module)
    raise TypeError("cannot interpret %r as a frame" % (spec,))


def _coerce_path(frames: Iterable[FrameSpec]) -> List[Frame]:
    return [_coerce_frame(spec) for spec in frames]


class ProfileBuilder:
    """Incrementally assemble a :class:`~repro.core.profile.Profile`."""

    def __init__(self, tool: str = "", time_nanos: int = 0,
                 duration_nanos: int = 0) -> None:
        meta = ProfileMeta(tool=tool, time_nanos=time_nanos,
                           duration_nanos=duration_nanos)
        self._profile = Profile(meta=meta)
        self._finished = False

    # -- schema ------------------------------------------------------------

    def metric(self, name: str, unit: str = "", description: str = "",
               aggregation: Aggregation = Aggregation.SUM) -> int:
        """Declare a metric column (idempotent per name); returns its index."""
        self._check_open()
        return self._profile.add_metric(Metric(
            name=name, unit=unit, description=description,
            aggregation=aggregation))

    def attribute(self, key: str, value: str) -> "ProfileBuilder":
        """Attach a provenance attribute (host, pid, cmdline, ...)."""
        self._check_open()
        self._profile.meta.attributes[key] = value
        return self

    # -- plain samples -----------------------------------------------------

    def sample(self, frames: Sequence[FrameSpec],
               values: Dict[int, float]) -> CCTNode:
        """Record a root-first call path, accumulating values on the leaf."""
        self._check_open()
        return self._profile.add_sample(_coerce_path(frames), dict(values))

    def leaf_sample(self, frames: Sequence[FrameSpec],
                    values: Dict[int, float]) -> CCTNode:
        """Record a leaf-first stack (the order unwinders produce)."""
        return self.sample(list(reversed(list(frames))), values)

    # -- advanced monitoring points ---------------------------------------

    def snapshot(self, sequence: int, frames: Sequence[FrameSpec],
                 values: Dict[int, float],
                 kind: PointKind = PointKind.ALLOCATION) -> MonitoringPoint:
        """Record one capture of a snapshot series (e.g. heap in-use).

        Snapshot values live on the point, tagged with the capture's
        ``sequence`` number (1-based) — they are *not* folded into the CCT
        node's metrics, since the same context is measured repeatedly.
        Heap snapshots describe live allocations, hence the default kind.
        """
        self._check_open()
        if sequence <= 0:
            raise ValueError("snapshot sequence must be positive, got %d"
                             % sequence)
        node = self._profile.cct.add_path(_coerce_path(frames))
        return self._profile.add_point(MonitoringPoint(
            kind=kind, contexts=[node], values=dict(values),
            sequence=sequence))

    def allocation(self, object_name: str, frames: Sequence[FrameSpec],
                   values: Dict[int, float],
                   sequence: int = 0) -> MonitoringPoint:
        """Record an allocation: a data-object context under the call path.

        The allocated object becomes a ``DATA_OBJECT`` frame child of the
        allocation site, enabling data-centric views.
        """
        self._check_open()
        path = _coerce_path(frames)
        path.append(data_object_frame(object_name))
        node = self._profile.cct.add_path(path)
        return self._profile.add_point(MonitoringPoint(
            kind=PointKind.ALLOCATION, contexts=[node],
            values=dict(values), sequence=sequence))

    def pair_point(self, kind: PointKind,
                   paths: Sequence[Sequence[FrameSpec]],
                   values: Dict[int, float]) -> MonitoringPoint:
        """Record a multi-context point (use/reuse, redundancy, races).

        ``paths`` are root-first call paths, one per context, in the
        kind-specific order documented on :class:`PointKind`.
        """
        self._check_open()
        contexts = [self._profile.cct.add_path(_coerce_path(path))
                    for path in paths]
        return self._profile.add_point(MonitoringPoint(
            kind=kind, contexts=contexts, values=dict(values)))

    # -- finishing ---------------------------------------------------------

    def build(self) -> Profile:
        """Finalize and return the profile.

        Further builder calls raise ``RuntimeError``; the returned profile
        itself stays mutable (converters keep extending the CCT directly).
        """
        self._check_open()
        self._finished = True
        return self._profile

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("ProfileBuilder already finalized by build()")
