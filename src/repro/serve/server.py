"""The concurrent PVP service: many IDE sessions over one asyncio loop.

The paper's ``StdioServer`` is one client, one request at a time.  This
module is the "millions of users" path: an asyncio socket transport
(newline-delimited JSON-RPC, the exact framing stdio uses) serving many
concurrent sessions against shared engine/store state.  Design:

* **Per-connection sessions.**  Every accepted connection owns a
  :class:`Session`: its own :class:`~repro.ide.session.ViewerSession`
  (so profile ids and node refs are private to the client) sharing the
  process-wide :class:`~repro.engine.AnalysisEngine` — equal profiles
  opened by different clients share cached transforms, layouts, and
  store query results.

* **The event loop never blocks.**  The loop only parses lines and moves
  queue entries; all CPU-bound view/transform work runs on a
  :class:`~repro.engine.parallel.WorkerPool` executor via
  ``run_in_executor``.  The dispatch pool is deliberately *separate*
  from the engine's fan-out pool: a request handler that fans out
  through ``engine.pool.map`` must never wait for pool slots occupied
  by other requests' handlers (the classic nested-thread-pool
  deadlock).

* **Pipelining with bounded queues.**  A client may send requests
  without waiting for responses; each session feeds a bounded request
  queue consumed one-at-a-time (a ``ViewerSession`` is not reentrant),
  so responses for *executed* requests come back in submission order
  while control responses — ``CANCELLED`` and ``DENIED`` — overtake
  them, keyed by JSON-RPC id.

* **Cancellation of superseded requests.**  A newer request for the
  same session+pane (see :func:`repro.serve.dispatch.supersede_key`)
  cancels the queued older one: the older request is answered
  immediately with a ``CANCELLED`` error and never runs.  Under an
  interactive burst (mouse-move hovers, rapid shape flips) this is what
  keeps tail latency flat: the server does the newest thing, not every
  thing.

* **Admission control.**  A global pending cap (queued + running across
  all sessions) and a per-session queue depth bound.  An over-cap
  request is answered *fast* with ``DENIED`` plus a ``retryAfterMs``
  hint — shedding at the door beats queueing into a latency cliff.

* **Slow-client isolation.**  Each session writes through a bounded
  write queue drained by its own writer task.  When a stalled reader
  fills the queue, notifications are shed (dropped, counted) and a
  response that cannot be buffered disconnects the client — one slow
  TCP peer never stalls the loop or other sessions.

* **Graceful drain.**  ``SIGTERM`` (or :meth:`PVPServer.drain`) stops
  accepting connections and new requests, finishes queued work up to a
  deadline, flushes write queues, then closes.

Everything is observable through :mod:`repro.obs`: per-request latency
histograms (shared with stdio), queue-depth and session gauges,
cancellation/denial/shed counters, and slow-request log lines carrying
trace *and* session ids.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import sys
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, IO, Optional, Set, Tuple

from ..engine import AnalysisEngine, WorkerPool, default_worker_count
from ..ide.actions import Capabilities
from ..ide.protocol import CANCELLED, DENIED, Request, Response
from ..ide.session import ViewerSession
from ..obs import get_registry
from .admission import AdmissionController
from .dispatch import (Dispatcher, MAX_LINE_BYTES, oversized_response,
                       parse_line, supersede_key, undecodable_response)

#: Read chunk size for the connection's byte buffer.
_READ_CHUNK = 65536


@dataclass
class ServeConfig:
    """Tuning knobs for the socket server (see ``docs/SERVING.md``)."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral, read server.port
    #: Bound on one request line (same contract as stdio).
    max_line_bytes: int = MAX_LINE_BYTES
    #: Global admission cap: queued + running requests across every
    #: session.  Requests past it are answered DENIED immediately.
    max_pending: int = 1024
    #: Per-session request queue depth (excludes the running request).
    max_session_queue: int = 16
    #: Per-session write queue depth (responses + notifications).
    max_write_queue: int = 256
    #: The retry hint attached to DENIED responses, in milliseconds.
    retry_after_ms: int = 50
    #: Dispatch pool width (None = engine default sizing).
    workers: Optional[int] = None
    #: Seconds a drain waits for queued work before force-closing.
    drain_seconds: float = 10.0
    #: Slow-request log threshold override (None = EASYVIEW_SLOW_MS).
    slow_seconds: Optional[float] = None


class _Pending:
    """One queued request plus its supersession key and queue timestamp."""

    __slots__ = ("request", "key", "enqueued")

    def __init__(self, request: Request, key: Optional[Tuple[str, ...]],
                 enqueued: float) -> None:
        self.request = request
        self.key = key
        self.enqueued = enqueued


class Session:
    """One connected client: viewer, dispatcher, queues, and tasks."""

    def __init__(self, server: "PVPServer", session_id: str,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.id = session_id
        self.reader = reader
        self.writer = writer
        self.viewer = server.session_factory(self._notify, session_id)
        self.dispatcher = Dispatcher(self.viewer,
                                     slow_seconds=server.config.slow_seconds,
                                     log=server.log)
        self.queue: Deque[_Pending] = deque()
        self.wakeup = asyncio.Event()
        self.write_queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(
            maxsize=server.config.max_write_queue)
        self.closing = False          # no new requests accepted
        self.dead = False             # transport torn down
        self.tasks: Set["asyncio.Task[Any]"] = set()

    # -- notifications (called from executor threads) ----------------------

    def _notify(self, method: str, params: Dict[str, Any]) -> None:
        """ide/* action from inside a handler: hop to the loop, enqueue."""
        line = Request(method=method, params=params).to_json()
        self.server.loop.call_soon_threadsafe(
            self.send_line, line, False)

    # -- writing -----------------------------------------------------------

    def send_response(self, response: Response) -> None:
        self.send_line(response.to_json(), True)

    def send_line(self, line: str, critical: bool) -> None:
        """Enqueue one wire line; shed or disconnect when the queue is full.

        ``critical`` lines are responses: a client that cannot receive
        responses is broken, so a full queue disconnects it.  Non-critical
        lines (notifications) are shed — dropped and counted — which keeps
        a slow reader from wedging its own dispatch loop.
        """
        if self.dead or self.server.closed:
            return
        data = (line + "\n").encode("utf-8")
        try:
            self.write_queue.put_nowait(data)
        except asyncio.QueueFull:
            if critical:
                self.server.stats_slow_disconnects.inc()
                self.abort()
            else:
                self.server.stats_shed.inc()

    async def _write_loop(self) -> None:
        while True:
            data = await self.write_queue.get()
            if data is None or self.dead:
                break
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.abort()
                break

    # -- reading -----------------------------------------------------------

    async def _read_loop(self) -> None:
        """Bounded line framing over the raw stream.

        Owns its own byte buffer (instead of ``readuntil``) so an
        oversized line can be reported once and skipped precisely to the
        next newline without corrupting message framing.
        """
        limit = self.server.config.max_line_bytes
        buf = bytearray()
        skipping = False
        while not self.closing:
            try:
                chunk = await self.reader.read(_READ_CHUNK)
            except (ConnectionError, OSError):
                break
            if not chunk:
                break  # EOF
            buf += chunk
            while True:
                newline = buf.find(b"\n")
                if newline < 0:
                    break
                raw = bytes(buf[:newline])
                del buf[:newline + 1]
                if skipping:
                    skipping = False  # tail of an oversized line
                    continue
                if len(raw) > limit:  # complete, but over the bound
                    self.send_response(oversized_response(limit))
                    continue
                self._on_raw_line(raw)
                if self.closing:
                    break
            if not skipping and len(buf) > limit:
                self.send_response(oversized_response(limit))
                buf.clear()
                skipping = True
        self.closing = True
        self.wakeup.set()

    def _on_raw_line(self, raw: bytes) -> None:
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            self.send_response(undecodable_response())
            return
        request, error = parse_line(text)
        if request is None and error is None:
            return  # blank line
        if error is not None:
            self.send_response(error)
            return
        if request.method == "shutdown":
            self.send_response(Response.success(request.id, {"ok": True}))
            self.closing = True
            self.wakeup.set()
            return
        self.server.admit(self, request)

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = self.server.loop
        while True:
            while not self.queue:
                if self.closing:
                    await self.write_queue.put(None)  # flush, then stop
                    return
                self.wakeup.clear()
                await self.wakeup.wait()
            pending = self.queue.popleft()
            self.server.note_dequeued(pending)
            try:
                response = await loop.run_in_executor(
                    self.server.executor, self.dispatcher.handle,
                    pending.request)
            except (asyncio.CancelledError, RuntimeError):
                self.server.note_finished()
                raise
            self.server.note_finished()
            if not pending.request.is_notification:
                self.send_response(response)

    # -- teardown ----------------------------------------------------------

    def abort(self) -> None:
        """Tear the transport down now (slow client or write failure)."""
        if self.dead:
            return
        self.dead = True
        self.closing = True
        self.wakeup.set()
        try:
            self.writer.transport.abort()
        except (AttributeError, RuntimeError):
            pass

    async def run(self) -> None:
        """Serve this connection until EOF/shutdown/drain, then clean up."""
        reader = asyncio.ensure_future(self._read_loop())
        writer = asyncio.ensure_future(self._write_loop())
        dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self.tasks = {reader, writer, dispatcher}
        try:
            await dispatcher          # finishes queued work, flushes writes
            await writer              # drains the write queue
        except asyncio.CancelledError:
            pass
        finally:
            for task in self.tasks:
                task.cancel()
            # Drop whatever is still queued from the global pending count.
            while self.queue:
                self.queue.popleft()
                self.server.note_dequeued(None)
                self.server.note_finished()
            self.dead = True
            try:
                self.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass


SessionFactory = Callable[[Callable[[str, Dict[str, Any]], None], str], Any]


class PVPServer:
    """The asyncio PVP service: accept, admit, dispatch, observe."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 engine: Optional[AnalysisEngine] = None,
                 capabilities: Optional[Capabilities] = None,
                 session_factory: Optional[SessionFactory] = None,
                 log: Optional[IO[str]] = None) -> None:
        self.config = config or ServeConfig()
        self.log = log if log is not None else sys.stderr
        self._engine = engine
        self._capabilities = capabilities
        self.session_factory = (session_factory
                                or self._default_session_factory)
        workers = (self.config.workers if self.config.workers is not None
                   else default_worker_count())
        #: Dispatch pool — separate from ``engine.pool`` on purpose; see
        #: the module docstring's deadlock note.
        self.pool = WorkerPool(workers)
        self.executor = self.pool.executor()
        self.loop: asyncio.AbstractEventLoop = None  # set in start()
        self.port: Optional[int] = None
        self.closed = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: Set[Session] = set()
        self._session_ids = itertools.count(1)
        #: Shared admission discipline (also used by the HTTP collector in
        #: :mod:`repro.continuous`): global queued+running cap plus the
        #: per-session queue bound, with structured denials.
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            max_source_queue=self.config.max_session_queue,
            retry_after_ms=self.config.retry_after_ms)
        # Created in start(): asyncio primitives must be born inside a
        # running loop for 3.9 compatibility.
        self._stopped: Optional[asyncio.Event] = None

        registry = get_registry()
        self.stats_accepted = registry.counter(
            "serve.connections", "socket connections accepted")
        self.stats_cancelled = registry.counter(
            "serve.cancelled", "queued requests superseded and cancelled")
        self.stats_denied = registry.counter(
            "serve.denied", "requests rejected by admission control")
        self.stats_shed = registry.counter(
            "serve.shed_notifications",
            "notifications dropped for slow clients")
        self.stats_slow_disconnects = registry.counter(
            "serve.slow_client_disconnects",
            "clients disconnected because responses could not be buffered")
        self.stats_sessions = registry.gauge(
            "serve.sessions", "connected sessions")
        self.stats_queue_depth = registry.gauge(
            "serve.queue_depth", "requests queued or running, server-wide")
        self.stats_queue_seconds = registry.histogram(
            "serve.queue_seconds",
            description="time a request waited in its session queue")

    # -- session plumbing --------------------------------------------------

    def _default_session_factory(self, sink, session_id: str):
        return ViewerSession(sink=sink, capabilities=self._capabilities,
                             engine=self._engine, session_id=session_id)

    # -- admission control and cancellation --------------------------------

    def admit(self, session: Session, request: Request) -> None:
        """Queue a request, or answer DENIED / cancel a superseded one.

        Runs on the event loop (single-threaded); the shared
        :class:`AdmissionController` still takes its lock so the same
        instance could serve threaded fronts, but here it is uncontended.
        """
        denial = self.admission.try_admit(queued=len(session.queue))
        if denial is not None:
            self._deny(session, request, denial.reason)
            return
        key = supersede_key(request)
        if key is not None:
            for pending in list(session.queue):
                if pending.key == key:
                    session.queue.remove(pending)
                    self.admission.release()
                    self.stats_cancelled.inc()
                    session.send_response(Response.failure(
                        pending.request.id, CANCELLED,
                        "superseded by a newer %s request for the same "
                        "pane" % request.method))
        now = self.loop.time()
        session.queue.append(_Pending(request, key, now))
        self.stats_queue_depth.set(self.admission.pending)
        session.wakeup.set()

    def _deny(self, session: Session, request: Request,
              reason: str) -> None:
        self.stats_denied.inc()
        if request.is_notification:
            return  # nothing to answer; the drop is counted
        session.send_response(Response.failure(
            request.id, DENIED,
            "request denied: %s at capacity" % reason,
            data={"retryAfterMs": self.config.retry_after_ms,
                  "reason": reason}))

    def note_dequeued(self, pending: Optional[_Pending]) -> None:
        if pending is not None:
            self.stats_queue_seconds.observe(
                max(0.0, self.loop.time() - pending.enqueued))

    def note_finished(self) -> None:
        self.admission.release()
        self.stats_queue_depth.set(self.admission.pending)

    @property
    def _pending(self) -> int:
        # Kept for the tests/tools that read the pre-refactor counter.
        return self.admission.pending

    @property
    def _draining(self) -> bool:
        # Pre-refactor flag, now owned by the admission controller.
        return self.admission.draining

    @_draining.setter
    def _draining(self, value: bool) -> None:
        self.admission.draining = value

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "PVPServer":
        """Bind and start accepting; ``self.port`` is the bound port."""
        self.loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connect, host=self.config.host, port=self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        if self.admission.draining or self.closed:
            writer.close()
            return
        session = Session(self, "c%d" % next(self._session_ids),
                          reader, writer)
        self._sessions.add(session)
        self.stats_accepted.inc()
        self.stats_sessions.set(len(self._sessions))
        try:
            await session.run()
        finally:
            self._sessions.discard(session)
            self.stats_sessions.set(len(self._sessions))

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish queued work, close."""
        self.admission.start_drain()
        if self._server is not None:
            self._server.close()
        for session in list(self._sessions):
            session.closing = True
            session.wakeup.set()
        deadline = self.loop.time() + self.config.drain_seconds
        while self._sessions and self.loop.time() < deadline:
            await asyncio.sleep(0.01)
        for session in list(self._sessions):
            session.abort()
        if self._server is not None:
            await self._server.wait_closed()
        self.closed = True
        if self._stopped is not None:
            self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT asks for a drain (the CLI path)."""
        if self._server is None:
            await self.start()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self.loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal handler support
        await self._stopped.wait()

    async def stop(self) -> None:
        """Immediate-ish shutdown used by tests and the bench harness."""
        await self.drain()
        self.pool.shutdown()

    def stats(self) -> Dict[str, Any]:
        return {
            "port": self.port,
            "sessions": len(self._sessions),
            "pending": self.admission.pending,
            "connections": self.stats_accepted.value,
            "cancelled": self.stats_cancelled.value,
            "denied": self.stats_denied.value,
            "shedNotifications": self.stats_shed.value,
            "slowClientDisconnects": self.stats_slow_disconnects.value,
            "pool": self.pool.to_dict(),
        }


def run_server(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point: serve until SIGTERM (the CLI calls this)."""
    async def _main() -> None:
        server = PVPServer(config)
        await server.start()
        print("easyview serve: listening on %s:%d"
              % (server.config.host, server.port), file=sys.stderr)
        await server.serve_forever()

    asyncio.run(_main())
