"""``repro.serve.loadgen``: drive thousands of concurrent PVP sessions.

The load generator reuses the rest of the repo instead of inventing a
synthetic protocol exerciser:

* **Workload shapes** come from the program machine — the served profile
  is a :func:`~repro.profilers.workloads.spark_profile` (or any workload
  the caller passes), serialized once and opened by every session, so
  the shared engine cache sees the same content-digest traffic a fleet
  of IDEs produces.

* **Request scripts** come from ``repro.study``'s scripted analysts: a
  study task's primitive-operation workflow (``navigate``,
  ``inspect_block``, ``read_histogram``, ...) is translated step-by-step
  into the PVP requests an IDE would issue for it
  (:data:`STEP_REQUESTS`).  ``inspect_block`` becomes a *burst* of
  hovers — fired without awaiting responses, exactly the mouse-move
  burst the server's supersession cancellation exists for.

Each simulated analyst opens one connection, runs its script, and
records per-request latency plus cancellation/denial/error counts;
:func:`run_load` fans N of them out on one event loop and aggregates
into a :class:`LoadReport` with p50/p95/p99 latency, which
``repro.bench.serve`` turns into ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ide.protocol import CANCELLED, DENIED
from ..study.costmodel import EASYVIEW_CAPS
from ..study.tasks import plan

#: How one analyst primitive translates into PVP traffic.  Each entry is
#: a list of (method, params) templates; ``$profile`` is replaced with
#: the session's opened profile id.  A ``burst`` template group is sent
#: back-to-back without awaiting responses (supersedable traffic).
STEP_REQUESTS: Dict[str, Dict[str, Any]] = {
    "navigate": {
        "burst": False,
        "requests": [
            ("view/switchShape", {"profileId": "$profile",
                                  "shape": "bottom_up"}),
            ("view/switchShape", {"profileId": "$profile",
                                  "shape": "top_down"}),
        ],
    },
    "inspect_block": {
        # A mouse sweep: hovers racing each other for the same pane.
        "burst": True,
        "requests": [
            ("view/hover", {"profileId": "$profile", "file": "Task.scala",
                            "line": 123}),
            ("view/hover", {"profileId": "$profile", "file": "RDD.scala",
                            "line": 288}),
            ("view/hover", {"profileId": "$profile",
                            "file": "Executor.scala", "line": 414}),
        ],
    },
    "open_source": {
        "burst": False,
        "requests": [
            ("view/search", {"profileId": "$profile", "pattern": "run"}),
            ("view/select", {"profileId": "$profile", "nodeRef": 0}),
        ],
    },
    "manual_source_lookup": {
        "burst": False,
        "requests": [
            ("view/search", {"profileId": "$profile", "pattern": "write"}),
        ],
    },
    "learn_view": {
        "burst": False,
        "requests": [
            ("view/summary", {"profileId": "$profile"}),
        ],
    },
    "fold_unfold": {
        "burst": False,
        "requests": [
            ("view/table", {"profileId": "$profile", "maxRows": 20}),
        ],
    },
    "read_histogram": {
        "burst": False,
        "requests": [
            ("view/click", {"profileId": "$profile", "nodeRef": 0}),
        ],
    },
    "inspect_table": {
        "burst": False,
        "requests": [
            ("view/table", {"profileId": "$profile", "maxRows": 50}),
        ],
    },
}

#: Primitives that are purely human time (no tool interaction).
_HUMAN_ONLY = frozenset({"switch_tool", "write_script", "run_script"})


def analyst_script(task: str = "task1", max_steps: int = 12,
                   max_repeat: int = 4) -> List[Dict[str, Any]]:
    """The PVP request script for one scripted analyst.

    Plans the study task with EasyView's capability matrix, walks the
    resulting primitive steps, and emits the request groups of
    :data:`STEP_REQUESTS` (human-only primitives contribute no traffic).
    ``max_steps`` bounds the tool-visible steps so a load tier's request
    count stays proportional to its session count; ``max_repeat`` caps
    each primitive so a long ``inspect_block`` run does not crowd the
    other primitives out of the bounded script.
    """
    flow = plan(task, EASYVIEW_CAPS)
    groups: List[Dict[str, Any]] = []
    taken: Dict[str, int] = {}
    for step in flow.steps:
        if step in _HUMAN_ONLY:
            continue
        template = STEP_REQUESTS.get(step)
        if template is None:
            continue
        if taken.get(step, 0) >= max_repeat:
            continue
        taken[step] = taken.get(step, 0) + 1
        groups.append({"step": step, "burst": template["burst"],
                       "requests": list(template["requests"])})
        if len(groups) >= max_steps:
            break
    return groups


@dataclass
class SessionResult:
    """One analyst session's outcome."""

    session: int
    ok: bool = True
    requests: int = 0
    burst_requests: int = 0
    latencies: List[float] = field(default_factory=list)
    cancelled: int = 0
    denied: int = 0
    errors: int = 0
    notifications: int = 0
    response_digest: str = ""


@dataclass
class LoadReport:
    """Aggregate over every session of one load run."""

    sessions: int = 0
    wall_seconds: float = 0.0
    requests: int = 0
    completed: int = 0
    cancelled: int = 0
    denied: int = 0
    errors: int = 0
    notifications: int = 0
    burst_requests: int = 0
    latencies: List[float] = field(default_factory=list)
    digests: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def percentile(self, pct: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    max(0, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[index]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sessions": self.sessions,
            "wallSeconds": round(self.wall_seconds, 4),
            "requests": self.requests,
            "completed": self.completed,
            "throughputRps": round(self.throughput_rps, 1),
            "latencyMs": {
                "p50": round(self.percentile(50) * 1e3, 3),
                "p95": round(self.percentile(95) * 1e3, 3),
                "p99": round(self.percentile(99) * 1e3, 3),
            },
            "cancelled": self.cancelled,
            "denied": self.denied,
            "errors": self.errors,
            "notifications": self.notifications,
            "burstRequests": self.burst_requests,
        }


VOLATILE_KEYS = frozenset({"responseSeconds"})


def canonical_line(payload: Dict[str, Any]) -> str:
    """One response/notification as volatile-free canonical JSON."""
    def scrub(value: Any) -> Any:
        if isinstance(value, dict):
            return {k: scrub(v) for k, v in sorted(value.items())
                    if k not in VOLATILE_KEYS}
        if isinstance(value, list):
            return [scrub(v) for v in value]
        return value
    return json.dumps(scrub(payload), sort_keys=True)


def digest_lines(lines: Sequence[str]) -> str:
    """Order-independent BLAKE2b digest of canonical wire lines."""
    import hashlib
    blake = hashlib.blake2b(digest_size=16)
    for line in sorted(lines):
        blake.update(line.encode("utf-8"))
        blake.update(b"\n")
    return blake.hexdigest()


def sequential_script(script: Sequence[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
    """The same script with every burst flattened to awaited requests.

    Burst traffic is nondeterministic on purpose (whether a hover gets
    cancelled depends on queue timing); the determinism/digest runs use
    this variant so every request executes exactly once.
    """
    return [dict(group, burst=False) for group in script]


def wire_lines(script: Sequence[Dict[str, Any]], profile_id: Any,
               profile_path: str) -> List[str]:
    """The exact wire lines a :class:`LoadClient` sends for ``script``.

    Same requests, same order, same JSON-RPC ids (``view/open`` is id 1,
    script requests follow, ``shutdown`` is id 999999) — the stdio
    reference run feeds these lines to ``StdioServer`` so its responses
    are comparable line-for-line with a socket session's.
    """
    lines: List[str] = []
    next_id = 0

    def emit(method: str, params: Dict[str, Any]) -> None:
        nonlocal next_id
        next_id += 1
        lines.append(json.dumps(
            {"jsonrpc": "2.0", "id": next_id, "method": method,
             "params": params}, sort_keys=True))

    emit("view/open", {"path": profile_path})
    for group in script:
        for method, template in group["requests"]:
            emit(method, {k: (profile_id if v == "$profile" else v)
                          for k, v in template.items()})
    lines.append('{"jsonrpc": "2.0", "id": 999999, '
                 '"method": "shutdown", "params": {}}')
    return lines


class LoadClient:
    """One scripted analyst talking to the server over asyncio streams."""

    def __init__(self, host: str, port: int, index: int,
                 profile_path: str,
                 script: Sequence[Dict[str, Any]],
                 think_seconds: float = 0.0) -> None:
        self.host = host
        self.port = port
        self.index = index
        self.profile_path = profile_path
        self.script = script
        self.think_seconds = think_seconds
        self.result = SessionResult(session=index)
        self._next_id = 0
        self._inflight: Dict[int, Tuple[float, bool]] = {}
        self._done_sending = True
        self._open_future: Optional["asyncio.Future"] = None
        self._open_id: Optional[int] = None
        self._quiesced: Optional[asyncio.Event] = None
        self._lines: List[str] = []
        self._writer: Optional[asyncio.StreamWriter] = None

    def _send(self, writer: asyncio.StreamWriter, method: str,
              params: Dict[str, Any], burst: bool,
              clock) -> int:
        self._next_id += 1
        request_id = self._next_id
        payload = {"jsonrpc": "2.0", "id": request_id, "method": method,
                   "params": params}
        writer.write((json.dumps(payload, sort_keys=True) + "\n")
                     .encode("utf-8"))
        self._inflight[request_id] = (clock(), burst)
        if self._quiesced is not None:
            self._quiesced.clear()
        self.result.requests += 1
        return request_id

    async def _read_loop(self, reader: asyncio.StreamReader,
                         clock) -> None:
        while self._inflight or not self._done_sending:
            raw = await reader.readline()
            if not raw:
                break
            payload = json.loads(raw.decode("utf-8"))
            self._lines.append(canonical_line(payload))
            if "method" in payload:          # ide/* notification
                self.result.notifications += 1
                continue
            request_id = payload.get("id")
            entry = self._inflight.pop(request_id, None)
            if not self._inflight and self._quiesced is not None:
                self._quiesced.set()
            if entry is not None:
                started, _burst = entry
                error = payload.get("error")
                if error is None:
                    self.result.latencies.append(clock() - started)
                elif error.get("code") == CANCELLED:
                    self.result.cancelled += 1
                elif error.get("code") == DENIED:
                    self.result.denied += 1
                else:
                    self.result.errors += 1
            if self._open_future is not None and \
                    request_id == self._open_id and \
                    not self._open_future.done():
                self._open_future.set_result(payload)
            if not self._inflight and self._done_sending:
                break

    async def run(self) -> SessionResult:
        loop = asyncio.get_running_loop()
        clock = loop.time
        self._done_sending = False
        self._open_future = loop.create_future()
        self._quiesced = asyncio.Event()
        self._quiesced.set()
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port)
        except (ConnectionError, OSError):
            self.result.ok = False
            return self.result
        self._writer = writer
        reader_task = asyncio.ensure_future(self._read_loop(reader, clock))
        try:
            self._open_id = self._send(
                writer, "view/open", {"path": self.profile_path},
                burst=False, clock=clock)
            await writer.drain()
            open_response = await self._open_future
            result = open_response.get("result")
            if result is None:
                self.result.ok = False
                return self.result
            profile_id = result["profileId"]
            for group in self.script:
                burst = group["burst"]
                for method, template in group["requests"]:
                    params = {k: (profile_id if v == "$profile" else v)
                              for k, v in template.items()}
                    self._send(writer, method, params, burst=burst,
                               clock=clock)
                    if burst:
                        self.result.burst_requests += 1
                    else:
                        await writer.drain()
                        await self._wait_quiesce()
                await writer.drain()
                if self.think_seconds:
                    await asyncio.sleep(self.think_seconds)
            self._done_sending = True
            await self._wait_quiesce()
            writer.write(b'{"jsonrpc": "2.0", "id": 999999, '
                         b'"method": "shutdown", "params": {}}\n')
            await writer.drain()
        except (ConnectionError, OSError):
            self.result.ok = False
        finally:
            self._done_sending = True
            try:
                await asyncio.wait_for(reader_task, timeout=30.0)
            except (asyncio.TimeoutError, asyncio.CancelledError,
                    ConnectionError, OSError):
                reader_task.cancel()
                self.result.ok = False
            try:
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        self.result.response_digest = digest_lines(self._lines)
        return self.result

    async def _wait_quiesce(self, timeout: float = 60.0) -> None:
        """Wait until every sent request has been answered."""
        if not self._inflight:
            return
        try:
            await asyncio.wait_for(self._quiesced.wait(), timeout)
        except asyncio.TimeoutError:
            self.result.ok = False


async def run_load(host: str, port: int, sessions: int,
                   profile_path: str,
                   script: Optional[Sequence[Dict[str, Any]]] = None,
                   task: str = "task1",
                   max_steps: int = 12,
                   think_seconds: float = 0.0) -> LoadReport:
    """Fan ``sessions`` scripted analysts out against a running server."""
    script = (list(script) if script is not None
              else analyst_script(task, max_steps=max_steps))
    loop = asyncio.get_running_loop()
    clients = [LoadClient(host, port, index, profile_path, script,
                          think_seconds=think_seconds)
               for index in range(sessions)]
    started = loop.time()
    results = await asyncio.gather(*(client.run() for client in clients))
    wall = loop.time() - started

    report = LoadReport(sessions=sessions, wall_seconds=wall)
    for result in results:
        report.requests += result.requests
        report.completed += len(result.latencies)
        report.cancelled += result.cancelled
        report.denied += result.denied
        report.errors += result.errors
        report.notifications += result.notifications
        report.burst_requests += result.burst_requests
        report.latencies.extend(result.latencies)
        report.digests.append(result.response_digest)
        if not result.ok:
            report.errors += 1
    return report
