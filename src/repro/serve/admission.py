"""Transport-independent admission control.

The discipline PR 8 proved out on the socket transport — a global cap on
queued+running work, a per-source queue bound, and a fast structured
denial carrying a retry hint — is not socket-specific.  This module
factors it into one :class:`AdmissionController` shared by:

* :class:`repro.serve.server.PVPServer` — one source per connected
  session, denials mapped to JSON-RPC ``DENIED`` (-32801);
* :class:`repro.continuous.collector.Collector` — one source per
  uploading service, denials mapped to HTTP 429 / 503.

The controller is lock-protected so it works both on the asyncio event
loop (where the lock is uncontended) and across the threaded HTTP
front's handler threads.  It counts *admissions*: a successful
:meth:`try_admit` increments the pending total and the source's depth;
every admitted unit must eventually be returned through
:meth:`release`, whatever its fate (executed, cancelled, failed).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

#: Denial reasons, shared wire-visible vocabulary across transports.
REASON_SERVER = "server"        # global pending cap reached
REASON_SOURCE = "session"       # per-source queue depth reached
REASON_DRAINING = "draining"    # shutdown in progress


@dataclass
class Denial:
    """Why a unit of work was refused, plus the client's retry hint."""

    reason: str
    retry_after_ms: int

    def to_dict(self) -> Dict[str, int]:
        return {"retryAfterMs": self.retry_after_ms, "reason": self.reason}


class AdmissionController:
    """Global + per-source admission caps with structured denials.

    ``source_reason`` names the per-source cap in denials: the PVP
    transport calls its sources "session" (the wire contract tests pin);
    the HTTP collector overrides it with "service".
    """

    def __init__(self, max_pending: int, max_source_queue: int,
                 retry_after_ms: int = 50,
                 source_reason: str = REASON_SOURCE) -> None:
        self.max_pending = max_pending
        self.max_source_queue = max_source_queue
        self.retry_after_ms = retry_after_ms
        self.source_reason = source_reason
        self._lock = threading.Lock()
        self._pending = 0
        self._per_source: Dict[str, int] = {}
        self._draining = False

    # -- admission ---------------------------------------------------------

    def try_admit(self, source: Optional[str] = None,
                  queued: Optional[int] = None) -> Optional[Denial]:
        """Admit one unit of work, or say why not.

        Returns ``None`` on admission (the counters are already bumped —
        pair with :meth:`release`) or a :class:`Denial` naming the first
        violated constraint: draining beats the global cap beats the
        per-source cap, mirroring the socket server's historical order.

        The per-source depth is either tracked here (pass ``source`` and
        release with the same name — the collector's style) or owned by
        the caller (pass ``queued`` explicitly — the socket server's
        style, whose per-session queues deliberately exclude the running
        request from the bound).
        """
        with self._lock:
            if self._draining:
                return Denial(REASON_DRAINING, self.retry_after_ms)
            if self._pending >= self.max_pending:
                return Denial(REASON_SERVER, self.retry_after_ms)
            if queued is not None:
                depth = queued
            else:
                depth = self._per_source.get(source, 0) if source else 0
            if depth >= self.max_source_queue and (source is not None
                                                   or queued is not None):
                return Denial(self.source_reason, self.retry_after_ms)
            self._pending += 1
            if source is not None:
                self._per_source[source] = \
                    self._per_source.get(source, 0) + 1
            return None

    def release(self, source: Optional[str] = None) -> None:
        """Return one previously admitted unit."""
        with self._lock:
            self._pending -= 1
            if source is not None:
                depth = self._per_source.get(source, 0) - 1
                if depth > 0:
                    self._per_source[source] = depth
                else:
                    self._per_source.pop(source, None)

    # -- lifecycle ---------------------------------------------------------

    def start_drain(self) -> None:
        """Refuse all future admissions (existing work keeps running)."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @draining.setter
    def draining(self, value: bool) -> None:
        with self._lock:
            self._draining = bool(value)

    @property
    def pending(self) -> int:
        """Units admitted and not yet released."""
        with self._lock:
            return self._pending

    def source_depth(self, source: str) -> int:
        with self._lock:
            return self._per_source.get(source, 0)
