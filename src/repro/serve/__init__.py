"""``repro.serve``: the concurrent multi-client PVP service.

The paper's stdio transport serves one editor.  This package is the
shared-service path: :mod:`repro.serve.dispatch` holds the
transport-independent parse/dispatch/error-map layer (used verbatim by
the stdio server, keeping the two transports byte-identical),
:mod:`repro.serve.server` is the asyncio socket transport with
admission control, supersession cancellation, slow-client isolation and
graceful drain, and :mod:`repro.serve.loadgen` drives it with scripted
analysts derived from the ``repro.study`` cost model.
"""

from .dispatch import (DEFAULT_SLOW_SECONDS, Dispatcher, MAX_LINE_BYTES,
                       SUPERSEDABLE, oversized_response, parse_line,
                       supersede_key, undecodable_response)
from .loadgen import (LoadClient, LoadReport, SessionResult, analyst_script,
                      canonical_line, digest_lines, run_load,
                      sequential_script, wire_lines)
from .server import PVPServer, ServeConfig, Session, run_server

__all__ = [
    "DEFAULT_SLOW_SECONDS",
    "Dispatcher",
    "LoadClient",
    "LoadReport",
    "MAX_LINE_BYTES",
    "PVPServer",
    "ServeConfig",
    "Session",
    "SessionResult",
    "SUPERSEDABLE",
    "analyst_script",
    "canonical_line",
    "digest_lines",
    "oversized_response",
    "parse_line",
    "run_load",
    "run_server",
    "sequential_script",
    "supersede_key",
    "undecodable_response",
    "wire_lines",
]
