"""Transport-shared PVP request handling: parse, dispatch, error-map.

Both transports — the single-client stdio server
(:mod:`repro.ide.server`) and the concurrent socket server
(:mod:`repro.serve.server`) — speak the same newline-delimited JSON-RPC
and must answer the same inputs with byte-identical responses.  This
module is that shared half:

* the **line layer** — :func:`parse_line` plus the canonical error
  responses for oversized and undecodable input, so both transports
  produce the exact same ``PARSE_ERROR`` / ``INVALID_REQUEST`` bytes;
* the **dispatcher** — :class:`Dispatcher` wraps one
  :class:`~repro.ide.session.ViewerSession` and executes one request
  under a tracer span with latency accounting, the
  crashed-handler-to-``INTERNAL_ERROR`` mapping, and structured
  slow-request logging carrying both the trace id *and* the session id
  (so a slow interaction in a thousand-session server is attributable);
* the **supersession map** — :func:`supersede_key` names which requests
  describe the *same pane* such that a newer one makes a queued older
  one worthless (the socket transport answers the older one with
  ``CANCELLED``; stdio, which never queues, ignores it).

The transports keep only what genuinely differs: blocking reads on
stdin vs asyncio streams, and one-at-a-time vs queued-and-pooled
execution.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, IO, Optional, Tuple

from ..errors import ProtocolError
from ..obs import get_registry, get_tracer
from ..ide.protocol import (INTERNAL_ERROR, INVALID_REQUEST, PARSE_ERROR,
                            Request, Response, parse_message)
from ..ide import protocol as pvp

#: Upper bound on one request line.  An editor never legitimately sends
#: requests this large; anything bigger is a broken or hostile peer, and
#: reading it unbounded would balloon the server's memory.
MAX_LINE_BYTES = 10 * 1024 * 1024

#: A request slower than this gets a structured log line on stderr
#: carrying its trace id (overridable via ``EASYVIEW_SLOW_MS``).
DEFAULT_SLOW_SECONDS = 0.5


def env_slow_seconds() -> float:
    try:
        return float(os.environ.get("EASYVIEW_SLOW_MS", "")) / 1e3
    except ValueError:
        return DEFAULT_SLOW_SECONDS


# -- the line layer ----------------------------------------------------------

def oversized_response(max_line_bytes: int) -> Response:
    """The canonical answer to a line longer than the transport bound."""
    return Response.failure(None, PARSE_ERROR,
                            "request exceeds %d bytes" % max_line_bytes)


def undecodable_response() -> Response:
    """The canonical answer to bytes that are not UTF-8."""
    return Response.failure(None, PARSE_ERROR, "request is not valid UTF-8")


def parse_line(line: str) -> Tuple[Optional[Request], Optional[Response]]:
    """One stripped request line → ``(request, error_response)``.

    Exactly one of the pair is non-None — except for a blank line, which
    returns ``(None, None)`` and is skipped by both transports.  Error
    responses here are the ones the stdio server has always produced, so
    the two transports stay byte-identical on bad input.
    """
    line = line.strip()
    if not line:
        return None, None
    try:
        message = parse_message(line)
    except ProtocolError as exc:
        return None, Response.failure(None, PARSE_ERROR, str(exc))
    if not isinstance(message, Request):
        return None, Response.failure(None, INVALID_REQUEST,
                                      "expected a request")
    return message, None


# -- supersession ------------------------------------------------------------

#: Requests describing a *pane* whose newest version makes queued older
#: versions worthless: the params listed identify the pane, everything
#: else (the hover line, the search pattern, the zoom node) is the
#: volatile part a newer request replaces.  Mutating requests
#: (``view/open``, ``view/deriveMetric``, ``view/tableExpand``, ...)
#: are deliberately absent — every one of them must run.
SUPERSEDABLE = {
    pvp.VIEW_SHAPE: ("profileId",),
    pvp.VIEW_ZOOM: ("profileId", "shape"),
    pvp.VIEW_HOVER: ("profileId", "shape"),
    pvp.VIEW_SEARCH: ("profileId", "shape"),
    pvp.VIEW_TABLE: ("profileId", "shape"),
    pvp.VIEW_SUMMARY: ("profileId",),
}


def supersede_key(request: Request) -> Optional[Tuple[str, ...]]:
    """The pane identity a request renders, or None if not supersedable.

    Two requests with equal keys target the same pane; when both sit in
    one session's queue only the newer can matter, so the older is
    answered ``CANCELLED`` without ever running.  Notifications are
    never superseded (there is no response to cancel them with).
    """
    names = SUPERSEDABLE.get(request.method)
    if names is None or request.is_notification:
        return None
    return (request.method,) + tuple(
        str(request.params.get(name)) for name in names)


# -- the dispatcher ----------------------------------------------------------

class Dispatcher:
    """Execute PVP requests for one session, transport-independently.

    Robustness contract (shared by every transport): *no* exception from
    a request handler escapes — a handler crash becomes a JSON-RPC
    ``INTERNAL_ERROR`` response carrying the trace id, and the server
    keeps serving.  Every request is counted, timed into the
    ``server.request_seconds`` histogram, and tracked by the
    ``server.inflight`` gauge; requests slower than ``slow_seconds``
    emit one structured JSON log line with the trace id *and* the
    session id, so a slow interaction can be joined to its spans and
    attributed to its client.

    Thread-safety: :meth:`handle` touches only the wrapped session, the
    (lock-protected) obs instruments, and the log stream; the socket
    server runs it on worker threads, one at a time per session.
    """

    def __init__(self, session: Any,
                 slow_seconds: Optional[float] = None,
                 log: Optional[IO[str]] = None) -> None:
        self.session = session
        self.slow_seconds = (slow_seconds if slow_seconds is not None
                             else env_slow_seconds())
        self._log = log if log is not None else sys.stderr
        registry = get_registry()
        self._requests = registry.counter(
            "server.requests", "PVP requests handled")
        self._errors = registry.counter(
            "server.errors", "PVP requests answered with an error")
        self._crashes = registry.counter(
            "server.handler_crashes",
            "unexpected exceptions inside a request handler")
        self._slow = registry.counter(
            "server.slow_requests", "requests over the slow threshold")
        self._inflight = registry.gauge(
            "server.inflight", "requests currently being handled")
        self._latency = registry.histogram(
            "server.request_seconds", description="per-request latency")

    @property
    def session_id(self) -> str:
        return getattr(self.session, "session_id", "local")

    def handle(self, message: Request) -> Response:
        """Handle one request under a span, with latency accounting."""
        tracer = get_tracer()
        self._requests.inc()
        self._inflight.inc()
        started = time.perf_counter()
        trace_id = None
        try:
            with tracer.span("server.request",
                             method=message.method,
                             session=self.session_id) as span:
                if span is not None:
                    trace_id = span.trace_id
                try:
                    response = self.session.handle(message)
                except Exception as exc:  # the handler crashed: answer,
                    self._crashes.inc()   # don't die
                    if span is not None:
                        span.set("crashed", type(exc).__name__)
                    detail = "internal error handling %s: %s" % (
                        message.method, exc)
                    if trace_id is not None:
                        detail += " (trace %s)" % trace_id
                    response = Response.failure(message.id, INTERNAL_ERROR,
                                                detail)
                if span is not None:
                    span.set("ok", response.ok)
        finally:
            elapsed = time.perf_counter() - started
            self._inflight.dec()
            self._latency.observe(elapsed)
        if not response.ok:
            self._errors.inc()
        if elapsed >= self.slow_seconds:
            self._slow.inc()
            self._log_slow(message, elapsed, trace_id, response.ok)
        return response

    def _log_slow(self, message: Request, elapsed: float,
                  trace_id: Optional[str], ok: bool) -> None:
        try:
            self._log.write(json.dumps({
                "event": "slow_request",
                "method": message.method,
                "seconds": round(elapsed, 6),
                "traceId": trace_id,
                "sessionId": self.session_id,
                "ok": ok,
            }, sort_keys=True) + "\n")
            self._log.flush()
        except (OSError, ValueError):
            pass  # logging must never take the server down
