"""A self-contained interactive HTML viewer.

EasyView's GUI is built from web front-end technology (§III "Applicable":
TypeScript/JavaScript/WASM) and runs locally with no server.  This module
produces the equivalent shareable artifact: one HTML file embedding the
profile's views as JSON plus a small vanilla-JS flame-graph renderer —
click to zoom, double-click to reset, a search box that highlights
matches, and a shape selector switching between the top-down, bottom-up,
and flat trees.  No external resources are referenced, so the file works
offline and nothing ever leaves the machine (the paper's privacy point
against upload-based services).
"""

from __future__ import annotations

import html as html_mod
import json
from typing import Any, Dict, List, Optional

from ..analysis.transform import transform
from ..analysis.viewtree import ViewNode, ViewTree
from ..core.profile import Profile
from .color import css, frame_color

_SHAPES = ("top_down", "bottom_up", "flat")


def _tree_json(tree: ViewTree, metric_index: int,
               min_fraction: float = 0.0005,
               max_depth: int = 64) -> Dict[str, Any]:
    """Lower a view tree to the nested JSON the renderer consumes."""
    total = tree.total(metric_index) or 1.0
    threshold = abs(total) * min_fraction

    def lower(node: ViewNode, depth: int) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": node.label(),
            "value": node.inclusive.get(metric_index, 0.0),
            "color": css(frame_color(node)),
        }
        location = node.frame.location
        if location.is_known():
            entry["loc"] = str(location)
        if depth < max_depth:
            children = [lower(child, depth + 1)
                        for child in node.sorted_children()
                        if abs(child.inclusive.get(metric_index, 0.0))
                        >= threshold]
            if children:
                entry["children"] = children
        return entry

    return lower(tree.root, 0)


_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>__TITLE__</title>
<style>
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 16px;
       color: #1c1c1c; }
h1 { font-size: 18px; }
#controls { margin-bottom: 10px; display: flex; gap: 10px;
            align-items: center; }
#controls select, #controls input { font-size: 13px; padding: 3px 6px; }
#status { color: #666; font-size: 12px; }
#flame { position: relative; width: 100%; border: 1px solid #ddd;
         overflow: hidden; }
.blk { position: absolute; height: 17px; font: 11px monospace;
       overflow: hidden; white-space: nowrap; border-radius: 2px;
       box-sizing: border-box; padding: 1px 3px; cursor: pointer;
       border: 0.5px solid rgba(255,255,255,0.6); }
.blk.dim { opacity: 0.25; }
.blk.hit { outline: 2px solid #ba55d3; }
#hint { color: #888; font-size: 11px; margin-top: 6px; }
</style></head><body>
<h1>__TITLE__</h1>
<div id="controls">
  <label>view <select id="shape">__SHAPE_OPTIONS__</select></label>
  <label>metric <select id="metric">__METRIC_OPTIONS__</select></label>
  <input id="search" placeholder="search functions…">
  <span id="status"></span>
</div>
<div id="flame"></div>
<div id="hint">click a block to zoom · double-click anywhere to reset ·
type to highlight matches</div>
<script>
var DATA = __DATA__;
var state = { shape: "top_down", metric: 0, root: null, query: "" };
var flame = document.getElementById("flame");

function currentTree() { return DATA.shapes[state.shape][state.metric]; }

function render() {
  var tree = state.root || currentTree();
  flame.innerHTML = "";
  var width = flame.clientWidth || 1000;
  var total = tree.value || 1;
  var maxDepth = 0;
  var blocks = [];
  (function walk(node, x, depth) {
    var w = node.value / total * width;
    if (w < 0.6) return;
    blocks.push({node: node, x: x, w: w, d: depth});
    if (depth > maxDepth) maxDepth = depth;
    var cx = x;
    (node.children || []).forEach(function (child) {
      walk(child, cx, depth + 1);
      cx += child.value / total * width;
    });
  })(tree, 0, 0);
  flame.style.height = (maxDepth + 1) * 18 + 4 + "px";
  var q = state.query.toLowerCase();
  var covered = 0;
  blocks.forEach(function (b) {
    var el = document.createElement("div");
    el.className = "blk";
    el.style.left = b.x + "px";
    el.style.top = b.d * 18 + 2 + "px";
    el.style.width = Math.max(b.w - 1, 1) + "px";
    el.style.background = b.node.color || "#e8a838";
    el.textContent = b.w > 30 ? b.node.name : "";
    var pct = (100 * b.node.value / total).toFixed(1);
    el.title = b.node.name + " — " + b.node.value.toLocaleString() +
               " (" + pct + "%)" + (b.node.loc ? "\\n" + b.node.loc : "");
    if (q) {
      if (b.node.name.toLowerCase().indexOf(q) >= 0) {
        el.classList.add("hit");
        covered += b.node.value;
      } else { el.classList.add("dim"); }
    }
    el.onclick = function (ev) {
      ev.stopPropagation();
      state.root = b.node;
      render();
    };
    flame.appendChild(el);
  });
  var status = blocks.length + " blocks";
  if (q) status += " · matches hold " +
      (100 * covered / total).toFixed(1) + "% (overcounts nesting)";
  document.getElementById("status").textContent = status;
}

document.getElementById("shape").onchange = function () {
  state.shape = this.value; state.root = null; render();
};
document.getElementById("metric").onchange = function () {
  state.metric = +this.value; state.root = null; render();
};
document.getElementById("search").oninput = function () {
  state.query = this.value; render();
};
document.body.ondblclick = function () { state.root = null; render(); };
window.onresize = render;
render();
</script></body></html>
"""


def render_webview(profile: Profile, title: str = "EasyView",
                   metrics: Optional[List[str]] = None,
                   min_fraction: float = 0.0005) -> str:
    """Render a profile as one interactive, dependency-free HTML page."""
    names = metrics if metrics is not None else profile.schema.names()
    if not names:
        names = []
    indices = [profile.schema.index_of(name) for name in names] or [0]

    shapes: Dict[str, List[Dict[str, Any]]] = {}
    for shape in _SHAPES:
        tree = transform(profile, shape)
        shapes[shape] = [_tree_json(tree, index,
                                    min_fraction=min_fraction)
                         for index in indices]
    data = {"shapes": shapes, "metrics": names or ["value"]}

    shape_options = "".join('<option value="%s">%s</option>'
                            % (s, s.replace("_", "-")) for s in _SHAPES)
    metric_options = "".join('<option value="%d">%s</option>'
                             % (i, html_mod.escape(name))
                             for i, name in enumerate(names or ["value"]))
    page = _PAGE.replace("__TITLE__", html_mod.escape(title))
    page = page.replace("__SHAPE_OPTIONS__", shape_options)
    page = page.replace("__METRIC_OPTIONS__", metric_options)
    page = page.replace("__DATA__", json.dumps(data))
    return page


def save_webview(profile: Profile, path: str, **kwargs: Any) -> None:
    """Write the interactive page to ``path`` (atomic tempfile + rename)."""
    from ..core.atomicio import atomic_write_text
    atomic_write_text(path, render_webview(profile, **kwargs))
