"""ANSI terminal rendering: flame graphs as colored block rows and view
trees as indented outlines.

The terminal renderer is the zero-dependency fallback (and what the CLI
uses); every view the GUI offers has a textual twin here so tests can assert
on rendered output.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.viewtree import ViewNode, ViewTree
from ..core.metric import Metric
from .color import ansi_index, diff_color, frame_color
from .layout import FlameLayout


def render_flame_text(layout: FlameLayout, width: int = 100,
                      color: bool = False, inverted: bool = True,
                      metric: Optional[Metric] = None) -> str:
    """Render a layout as rows of labeled blocks.

    Each row is one depth level; each block occupies a share of ``width``
    columns proportional to its inclusive value.  With ``color`` the blocks
    get 256-color ANSI backgrounds (differential trees use red/blue).
    """
    if not layout.rects:
        return "(empty flame graph)"
    scale = width / layout.canvas_width
    rows = layout.rows()
    if not inverted:
        rows = list(reversed(rows))
    lines: List[str] = []
    for row in rows:
        cells = [" "] * width
        owners: List[Optional[object]] = [None] * width
        for rect in row:
            start = int(rect.x * scale)
            span = max(int(rect.width * scale), 1)
            end = min(start + span, width)
            if start >= width:
                continue
            label = rect.label
            for i in range(start, end):
                offset = i - start
                cells[i] = label[offset] if offset < len(label) else "─"
                owners[i] = rect.node
            if end - 1 >= start:
                cells[end - 1] = "|" if end - start > 1 else cells[end - 1]
        if color:
            line = _colorize(cells, owners, layout.metric_index,
                             layout if _is_diff(layout) else None)
        else:
            line = "".join(cells)
        lines.append(line.rstrip())
    return "\n".join(lines)


def _is_diff(layout: FlameLayout) -> bool:
    return any(rect.node.tag for rect in layout.rects[:8])


def _colorize(cells: List[str], owners: List[Optional[object]],
              metric_index: int, diff_layout: Optional[FlameLayout]) -> str:
    parts: List[str] = []
    current = None
    for ch, owner in zip(cells, owners):
        if owner is not current:
            if current is not None:
                parts.append("\x1b[0m")
            if owner is not None:
                node = owner  # type: ignore[assignment]
                rgb = (diff_color(node, metric_index) if diff_layout
                       else frame_color(node))
                parts.append("\x1b[48;5;%dm" % ansi_index(rgb))
            current = owner
        parts.append(ch)
    if current is not None:
        parts.append("\x1b[0m")
    return "".join(parts)


def render_tree_text(tree: ViewTree, metric_index: int = 0,
                     max_depth: int = 30, min_fraction: float = 0.002,
                     max_children: int = 8) -> str:
    """Render a view tree as an indented outline with values and percents.

    The workhorse textual view: deterministic, value-sorted, pruned to what
    matters.  Differential trees show their ``[A]/[D]/[+]/[-]`` tags.
    """
    total = tree.total(metric_index) or 1.0
    metric = tree.schema[metric_index] if len(tree.schema) else None
    lines: List[str] = []

    def emit(node: ViewNode, depth: int) -> None:
        value = node.inclusive.get(metric_index, 0.0)
        if metric is not None:
            value_text = metric.format_value(value)
        else:
            value_text = "%g" % value
        lines.append("%s%s  %s (%.1f%%)"
                     % ("  " * depth, node.label(), value_text,
                        100.0 * value / total))
        if depth >= max_depth:
            return
        children = [c for c in node.sorted_children()
                    if abs(c.inclusive.get(metric_index, 0.0))
                    >= abs(total) * min_fraction or c.tag in ("A", "D")]
        hidden = len(node.children) - len(children)
        for child in children[:max_children]:
            emit(child, depth + 1)
        overflow = max(len(children) - max_children, 0) + hidden
        if overflow > 0:
            lines.append("%s… %d more" % ("  " * (depth + 1), overflow))

    emit(tree.root, 0)
    return "\n".join(lines)


def render_summary(tree: ViewTree, metric_index: int = 0,
                   count: int = 10) -> str:
    """A floating-window style textual summary: the hottest contexts."""
    total = tree.total(metric_index) or 1.0
    metric = tree.schema[metric_index] if len(tree.schema) else None
    lines = ["Hottest contexts by %s:"
             % (metric.name if metric else "metric %d" % metric_index)]
    for node in tree.top(metric_index, count=count, inclusive=False):
        value = node.value(metric_index, inclusive=False)
        if value == 0.0:
            continue
        value_text = (metric.format_value(value) if metric
                      else "%g" % value)
        lines.append("  %6.1f%%  %-40s %s"
                     % (100.0 * value / total, node.frame.label()[:40],
                        value_text))
    return "\n".join(lines)


def render_diagnostics(diagnostics, color: bool = False) -> str:
    """Textual twin of the IDE's squiggle list: one ProfLint finding per
    line, colored by severity, with a trailing summary count."""
    from ..lint.render import render_text
    return render_text(diagnostics, color=color)
