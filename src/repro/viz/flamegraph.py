"""High-level flame-graph API (§VI-A).

:class:`FlameGraph` wraps a view tree with layout, search, zoom, and
rendering.  Constructors cover the paper's generic views (top-down,
bottom-up, flat — each with inclusive and exclusive variants) and the three
advanced views: differential (Fig. 3), aggregate (Fig. 4), and correlated
(Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

# Import the submodules directly: the package __init__ re-exports functions
# named like their modules (``transform``, ``diff``), which would shadow the
# module objects under ``from ..analysis import transform``.
from ..analysis import query
from ..analysis import reuse as reuse_mod
from ..analysis.viewtree import ViewNode, ViewTree
from ..core.cct import CCTNode
from ..core.profile import Profile
from ..errors import AnalysisError
from .color import diff_color, frame_color
from .layout import FlameLayout, FlameRect, layout
from .svg import render_diff_svg, render_svg
from .terminal import render_flame_text, render_tree_text


class FlameGraph:
    """One flame graph: a view tree + metric + rendering state."""

    def __init__(self, tree: ViewTree, metric: str = "",
                 canvas_width: float = 1200.0, min_width: float = 0.5) -> None:
        self.tree = tree
        if metric:
            self.metric_index = tree.schema.index_of(metric)
        else:
            self.metric_index = 0
        self.canvas_width = canvas_width
        self.min_width = min_width
        self._zoom_root: Optional[ViewNode] = None
        self._highlighted: Set[int] = set()
        self._layout: Optional[FlameLayout] = None

    # -- constructors for the generic views --------------------------------
    #
    # All constructors route through the shared analysis engine
    # (:mod:`repro.engine`), so repeated construction over equal profiles
    # hits the memo instead of re-running the transform.  The import is
    # lazy: the engine itself imports this package's layout module.

    @staticmethod
    def _engine(engine=None):
        if engine is not None:
            return engine
        from ..engine import get_engine
        return get_engine()

    @classmethod
    def top_down(cls, profile: Profile, metric: str = "", engine=None,
                 **kwargs) -> "FlameGraph":
        """The default view: callees under callers (Fig. 4's main pane)."""
        return cls(cls._engine(engine).transform(profile, "top_down"),
                   metric=metric, **kwargs)

    @classmethod
    def bottom_up(cls, profile: Profile, metric: str = "", engine=None,
                  **kwargs) -> "FlameGraph":
        """Hot functions first, callers below (Fig. 6)."""
        return cls(cls._engine(engine).transform(profile, "bottom_up"),
                   metric=metric, **kwargs)

    @classmethod
    def flat(cls, profile: Profile, metric: str = "", engine=None,
             **kwargs) -> "FlameGraph":
        """Program → module → file → function grouping."""
        return cls(cls._engine(engine).transform(profile, "flat"),
                   metric=metric, **kwargs)

    # -- constructors for the advanced views --------------------------------

    @classmethod
    def differential(cls, baseline: Profile, treatment: Profile,
                     shape: str = "top_down", metric: str = "", engine=None,
                     **kwargs) -> "FlameGraph":
        """Differential flame graph with [A]/[D]/[+]/[-] tags (Fig. 3).

        ``metric`` is resolved exactly once, against the diff tree's union
        schema (the resolution ``diff_profiles`` itself uses), so the
        graph's ``metric_index`` and the node tags always agree.
        """
        tree = cls._engine(engine).diff_profiles(baseline, treatment,
                                                 shape=shape,
                                                 metric=metric or None)
        return cls(tree, metric=metric, **kwargs)

    @classmethod
    def aggregate(cls, profiles: Sequence[Profile], shape: str = "top_down",
                  metric: str = "", engine=None, **kwargs) -> "FlameGraph":
        """Aggregate flame graph across threads/processes/runs (Fig. 4)."""
        tree = cls._engine(engine).aggregate_profiles(profiles, shape=shape)
        graph = cls(tree, **kwargs)
        if metric:
            graph.metric_index = tree.schema.index_of("%s:sum" % metric)
        return graph

    # -- interaction ---------------------------------------------------------

    def zoom(self, node: Optional[ViewNode]) -> None:
        """Zoom to a subtree (None resets); the next layout reflects it."""
        self._zoom_root = node
        self._layout = None

    def search(self, pattern: str, regex: bool = False) -> List[ViewNode]:
        """Highlight matching frames; returns the matches (§VI-A)."""
        matches = query.search(self.tree, pattern, regex=regex)
        self._highlighted = {id(node) for node in matches}
        return matches

    def clear_search(self) -> None:
        """Drop all highlights."""
        self._highlighted.clear()

    def compute_layout(self, force: bool = False) -> FlameLayout:
        """The current layout (cached until zoom/search invalidates it)."""
        if self._layout is None or force:
            self._layout = layout(self.tree, metric_index=self.metric_index,
                                  canvas_width=self.canvas_width,
                                  min_width=self.min_width,
                                  root=self._zoom_root)
        return self._layout

    def block_at(self, x: float, depth: int) -> Optional[FlameRect]:
        """Hit-test a canvas position (the click handler's primitive)."""
        for rect in self.compute_layout().rects:
            if rect.depth == depth and rect.x <= x < rect.x + rect.width:
                return rect
        return None

    # -- rendering -------------------------------------------------------------

    @property
    def is_differential(self) -> bool:
        return self.tree.shape.startswith("diff:")

    def to_svg(self, title: str = "") -> str:
        """Render to a self-contained SVG document."""
        metric = (self.tree.schema[self.metric_index]
                  if len(self.tree.schema) else None)
        flame_layout = self.compute_layout()
        if self.is_differential:
            return render_diff_svg(flame_layout, metric=metric,
                                   title=title or "Differential flame graph")
        return render_svg(flame_layout, metric=metric, title=title,
                          inverted=True, highlighted=self._highlighted)

    def to_text(self, width: int = 100, color: bool = False) -> str:
        """Render to terminal text."""
        return render_flame_text(self.compute_layout(), width=width,
                                 color=color)

    def to_outline(self, max_depth: int = 30) -> str:
        """Render the underlying tree as an indented outline."""
        return render_tree_text(self.tree, metric_index=self.metric_index,
                                max_depth=max_depth)


@dataclass
class CorrelatedView:
    """Fig. 7's correlated flame graphs: allocations → uses → reuses.

    Three panes, each a ranked list of contexts.  Selecting an allocation
    populates the uses pane; selecting a use populates the reuses pane —
    exactly the ①/② interaction the paper demonstrates on LULESH.
    """

    profile: Profile
    allocation: Optional[CCTNode] = None
    use: Optional[CCTNode] = None

    def allocations(self) -> List[Tuple[CCTNode, float]]:
        """Left pane: allocation contexts ranked by reuse volume."""
        return reuse_mod.allocations_with_reuse(self.profile)

    def select_allocation(self, node: CCTNode) -> List[Tuple[CCTNode, float]]:
        """Click ①: select an allocation, revealing its uses."""
        self.allocation = node
        self.use = None
        return self.uses()

    def uses(self) -> List[Tuple[CCTNode, float]]:
        """Middle pane: uses of the selected allocation."""
        if self.allocation is None:
            return []
        return reuse_mod.uses_of(self.profile, self.allocation)

    def select_use(self, node: CCTNode) -> List[Tuple[CCTNode, float]]:
        """Click ②: select a use, revealing the reuses that follow it."""
        if self.allocation is None:
            raise AnalysisError("select an allocation before a use")
        self.use = node
        return self.reuses()

    def reuses(self) -> List[Tuple[CCTNode, float]]:
        """Right pane: reuses following the selected use."""
        if self.allocation is None or self.use is None:
            return []
        return reuse_mod.reuses_of(self.profile, self.allocation, self.use)

    def guidance(self, top: int = 5) -> List[str]:
        """Loop-fusion / hoisting guidance lines for the hottest pairs."""
        lines = []
        for pair in reuse_mod.fusion_candidates(self.profile, top=top):
            lines.append(
                "reuse of %s: use in %s, reuse in %s — hoist both to %s "
                "and fuse (volume %g)"
                % (pair.allocation.frame.name, pair.use.frame.label(),
                   pair.reuse.frame.label(), pair.hoist_target(), pair.count))
        return lines

    def render_text(self, top: int = 5) -> str:
        """All three panes as text (used by the CLI and tests)."""
        lines = ["=== allocations (by reuse volume) ==="]
        for node, volume in self.allocations()[:top]:
            marker = "▶" if node is self.allocation else " "
            lines.append(" %s %-40s %g" % (marker, node.frame.label()[:40],
                                           volume))
        lines.append("=== uses of selected allocation ===")
        for node, volume in self.uses()[:top]:
            marker = "▶" if node is self.use else " "
            lines.append(" %s %-40s %g" % (marker, node.frame.label()[:40],
                                           volume))
        lines.append("=== reuses of selected use ===")
        for node, volume in self.reuses()[:top]:
            lines.append("   %-40s %g" % (node.frame.label()[:40], volume))
        return "\n".join(lines)
