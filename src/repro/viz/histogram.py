"""Per-context histograms for aggregate views (§VI-A(b), Fig. 4).

When profiles are aggregated, every context carries the value series across
the inputs (threads, processes, runs, or time-ordered snapshots).  Clicking
a frame pops this histogram; its *shape over time* is what identifies the
memory-leak pattern in the paper's cloud case study: continuously high with
no sign of reclamation ⇒ warning; diminishing at the end ⇒ healthy.
"""

from __future__ import annotations

import html as html_mod
from typing import List, Optional, Sequence

from ..analysis.viewtree import ViewNode
from ..core.metric import Metric

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(series: Sequence[float]) -> str:
    """A unicode sparkline of a value series (the hover's one-liner)."""
    if not series:
        return ""
    peak = max(series)
    if peak <= 0:
        return SPARK_LEVELS[0] * len(series)
    out = []
    for value in series:
        level = int(value / peak * (len(SPARK_LEVELS) - 1) + 0.5)
        out.append(SPARK_LEVELS[max(0, min(level, len(SPARK_LEVELS) - 1))])
    return "".join(out)


def histogram_text(series: Sequence[float], bins: int = 0,
                   width: int = 40, metric: Optional[Metric] = None,
                   labels: Optional[Sequence[str]] = None) -> str:
    """Render a value series as horizontal text bars.

    With ``bins`` > 0 the series is re-bucketed (for very long snapshot
    series); otherwise one bar per entry.
    """
    values = list(series)
    if not values:
        return "(no data)"
    if bins and len(values) > bins:
        step = len(values) / bins
        rebinned = []
        for i in range(bins):
            chunk = values[int(i * step):int((i + 1) * step)] or [0.0]
            rebinned.append(sum(chunk) / len(chunk))
        values = rebinned
        labels = None
    peak = max(values) or 1.0
    lines = []
    for i, value in enumerate(values):
        bar = "█" * max(int(value / peak * width), 1 if value > 0 else 0)
        if metric is not None:
            text = metric.format_value(value)
        else:
            text = "%g" % value
        label = labels[i] if labels else "#%d" % (i + 1)
        lines.append("%8s %-*s %s" % (label, width, bar, text))
    return "\n".join(lines)


def node_histogram_text(node: ViewNode, metric_index: int,
                        metric: Optional[Metric] = None,
                        width: int = 40) -> str:
    """The histogram pane for one aggregate-view node."""
    series = node.histogram.get(metric_index, [])
    if not series:
        return "(context %s has no per-profile series)" % node.frame.label()
    header = "%s — %s across %d profiles\n" % (
        node.frame.label(), metric.name if metric else "metric", len(series))
    return header + histogram_text(series, metric=metric, width=width)


def histogram_svg(series: Sequence[float], width: int = 480,
                  height: int = 160, title: str = "") -> str:
    """Render a value series as an SVG bar chart (the GUI's hover body)."""
    values = list(series)
    if not values:
        return "<svg xmlns='http://www.w3.org/2000/svg' width='10' height='10'/>"
    peak = max(values) or 1.0
    margin = 24 if title else 6
    bar_w = max((width - 10) / len(values), 1.0)
    parts = [
        "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d'>"
        % (width, height + margin),
        "<rect width='100%' height='100%' fill='#ffffff'/>",
    ]
    if title:
        parts.append("<text x='6' y='15' font-family='monospace' "
                     "font-size='12'>%s</text>" % html_mod.escape(title))
    for i, value in enumerate(values):
        bar_h = value / peak * (height - 8)
        parts.append(
            "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' "
            "fill='rgb(84,138,198)'><title>#%d: %g</title></rect>"
            % (5 + i * bar_w, margin + (height - 8) - bar_h,
               max(bar_w - 1, 0.5), bar_h, i + 1, value))
    parts.append("</svg>")
    return "".join(parts)


def trend_label(series: Sequence[float]) -> str:
    """Classify a series's shape for hover text: growing / stable /
    reclaiming.  Mirrors the signals the leak detector scores."""
    from ..analysis.leak import analyze_series
    signals = analyze_series(series)
    if signals["retention"] < 0.5:
        return "reclaiming — active value diminishes by the end"
    if signals["retention"] > 0.8 and signals["monotonicity"] > 0.7:
        # Flat-high or still climbing: the paper's leak warning pattern.
        return "continuously high, no sign of reclamation"
    return "stable"
