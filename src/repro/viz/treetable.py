"""The tree table view (§VI-A(c)): the fold/unfold table that VTune,
HPCToolkit, and TAU users know.

Less immediate than a flame graph — users must unfold paths manually, which
the user study quantifies (Fig. 8; Task II's GoLand penalty) — but the best
way to read a profile with *many metrics*, since every column is visible at
once.  The table supports all three shapes, per-row fold state, sorting by
any column, and text/TSV/HTML rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..analysis.viewtree import ViewNode, ViewTree


@dataclass
class TableRow:
    """One visible row of the rendered table."""

    node: ViewNode
    depth: int
    expanded: bool
    values: List[float]

    def label(self) -> str:
        return self.node.label()


class TreeTable:
    """An interactive (fold/unfold) table over a view tree."""

    def __init__(self, tree: ViewTree,
                 metrics: Optional[Sequence[str]] = None,
                 inclusive: bool = True) -> None:
        self.tree = tree
        if metrics is None:
            self.columns = list(range(len(tree.schema)))
        else:
            self.columns = [tree.schema.index_of(name) for name in metrics]
        self.inclusive = inclusive
        self.sort_column = self.columns[0] if self.columns else 0
        self._expanded: Set[int] = {id(tree.root)}

    # -- fold state ----------------------------------------------------------

    def expand(self, node: ViewNode) -> None:
        """Unfold one node (a click on the triangle)."""
        self._expanded.add(id(node))

    def collapse(self, node: ViewNode) -> None:
        """Fold one node."""
        self._expanded.discard(id(node))

    def expand_all(self, max_depth: Optional[int] = None) -> int:
        """Unfold everything (optionally to a depth); returns rows exposed.

        This is the expensive operation eager baseline viewers perform up
        front and EasyView performs on demand.
        """
        count = 0
        for node in self.tree.nodes():
            if max_depth is None or node.depth() < max_depth:
                self._expanded.add(id(node))
                count += 1
        return count

    def expand_hot_path(self, metric_index: Optional[int] = None,
                        min_fraction: float = 0.5) -> List[ViewNode]:
        """Unfold along the dominant-child path (the drill-down shortcut)."""
        from ..analysis.prune import hot_path
        path = hot_path(self.tree,
                        metric_index=(metric_index if metric_index is not None
                                      else self.sort_column),
                        min_fraction=min_fraction)
        for node in path:
            self._expanded.add(id(node))
        return path

    # -- rows ----------------------------------------------------------------

    def rows(self) -> List[TableRow]:
        """The currently visible rows, respecting fold state and sorting."""
        result: List[TableRow] = []

        def visible_children(node: ViewNode) -> List[ViewNode]:
            children = list(node.children.values())
            children.sort(key=lambda n: -self._value(n, self.sort_column))
            return children

        def emit(node: ViewNode, depth: int) -> None:
            result.append(TableRow(
                node=node, depth=depth,
                expanded=id(node) in self._expanded,
                values=[self._value(node, c) for c in self.columns]))
            if id(node) in self._expanded:
                for child in visible_children(node):
                    emit(child, depth + 1)

        for child in sorted(self.tree.root.children.values(),
                            key=lambda n: -self._value(n, self.sort_column)):
            emit(child, 0)
        return result

    def _value(self, node: ViewNode, column: int) -> float:
        table = node.inclusive if self.inclusive else node.exclusive
        return table.get(column, 0.0)

    def sort_by(self, metric: str) -> None:
        """Re-sort rows by a metric column."""
        self.sort_column = self.tree.schema.index_of(metric)

    # -- rendering ------------------------------------------------------------

    def render_text(self, max_rows: int = 200, indent: str = "  ") -> str:
        """Render the visible rows as aligned text."""
        names = [self.tree.schema[c].name for c in self.columns]
        header = "%-60s %s" % ("context",
                               " ".join("%14s" % n for n in names))
        lines = [header, "-" * len(header)]
        for row in self.rows()[:max_rows]:
            caret = "▾" if row.expanded else ("▸" if row.node.children else " ")
            label = "%s%s %s" % (indent * row.depth, caret, row.label())
            cells = " ".join("%14.6g" % v for v in row.values)
            lines.append("%-60s %s" % (label[:60], cells))
        return "\n".join(lines)

    def render_tsv(self) -> str:
        """Tab-separated dump of visible rows (for scripting)."""
        names = [self.tree.schema[c].name for c in self.columns]
        lines = ["\t".join(["depth", "context"] + names)]
        for row in self.rows():
            lines.append("\t".join(
                [str(row.depth), row.label()]
                + ["%g" % v for v in row.values]))
        return "\n".join(lines)
