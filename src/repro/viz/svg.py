"""SVG rendering of flame-graph layouts.

Produces self-contained SVG documents: one ``<rect>`` + clipped ``<text>``
per laid-out block, with a ``<title>`` tooltip carrying the full label and
metric value (the hover of a static rendering).  Differential layouts use
the red/blue scale; search matches are outlined in the highlight color.
"""

from __future__ import annotations

import html
from typing import Callable, Optional, Set

from ..analysis.viewtree import ViewNode
from ..core.metric import Metric
from .color import RGB, css, diff_color, frame_color, highlight_color
from .layout import FlameLayout, FlameRect

ROW_HEIGHT = 18
FONT_SIZE = 11
CHAR_WIDTH = 6.5

ColorFn = Callable[[ViewNode], RGB]


def render_svg(layout: FlameLayout, metric: Optional[Metric] = None,
               title: str = "", inverted: bool = False,
               color_fn: Optional[ColorFn] = None,
               highlighted: Optional[Set[int]] = None) -> str:
    """Render a layout to an SVG document string.

    ``inverted`` draws an icicle (root at top), the conventional orientation
    for top-down views in IDE panes; the default grows upward like Brendan
    Gregg's original flame graphs.  ``highlighted`` is a set of ``id()``s of
    view nodes to outline (search results).
    """
    height = (layout.max_depth + 1) * ROW_HEIGHT + (30 if title else 10)
    header = 25 if title else 5
    pick_color = color_fn or frame_color
    highlighted = highlighted or set()

    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
        'font-family="monospace" font-size="%d">'
        % (int(layout.canvas_width), height, FONT_SIZE),
        '<rect width="100%" height="100%" fill="#ffffff"/>',
    ]
    if title:
        parts.append('<text x="%d" y="16" font-size="13">%s</text>'
                     % (int(layout.canvas_width / 2 - 4 * len(title)),
                        html.escape(title)))

    for rect in layout.rects:
        if inverted:
            y = header + rect.depth * ROW_HEIGHT
        else:
            y = header + (layout.max_depth - rect.depth) * ROW_HEIGHT
        color = pick_color(rect.node)
        stroke = ""
        if id(rect.node) in highlighted:
            stroke = ' stroke="%s" stroke-width="1.5"' % css(highlight_color())
        value = rect.node.inclusive.get(layout.metric_index, 0.0)
        if metric is not None:
            value_text = metric.format_value(value)
        else:
            value_text = "%g" % value
        percent = (100.0 * value / layout.total_value
                   if layout.total_value else 0.0)
        tooltip = "%s — %s (%.1f%%)" % (rect.label, value_text, percent)
        parts.append(
            '<g><rect x="%.2f" y="%d" width="%.2f" height="%d" '
            'fill="%s" rx="1"%s><title>%s</title></rect>'
            % (rect.x, y, max(rect.width - 0.5, 0.1), ROW_HEIGHT - 1,
               css(color), stroke, html.escape(tooltip)))
        if rect.fits_text(CHAR_WIDTH):
            budget = int(rect.width / CHAR_WIDTH) - 1
            text = rect.label
            if len(text) > budget:
                text = text[:max(budget - 1, 1)] + "…"
            parts.append(
                '<text x="%.2f" y="%d" fill="#1a1a1a">%s</text>'
                % (rect.x + 2, y + ROW_HEIGHT - 5, html.escape(text)))
        parts.append("</g>")

    parts.append("</svg>")
    return "\n".join(parts)


def render_diff_svg(layout: FlameLayout, metric: Optional[Metric] = None,
                    title: str = "Differential flame graph") -> str:
    """Render a differential layout with the red/blue change scale."""
    return render_svg(
        layout, metric=metric, title=title, inverted=True,
        color_fn=lambda node: diff_color(node, layout.metric_index))
