"""Self-contained HTML reports bundling the views.

One HTML file with no external resources (CSS inlined, graphics as inline
SVG): the shareable artifact for a code review or a bug report.  A report
can hold several sections — flame graphs of any shape, tree tables,
histograms, summaries — in the order they are added.
"""

from __future__ import annotations

import html as html_mod
from typing import List, Optional, Sequence

from .flamegraph import FlameGraph
from .histogram import histogram_svg
from .treetable import TreeTable

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 24px;
       color: #1c1c1c; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
pre { background: #f6f6f6; padding: 10px; overflow-x: auto;
      font-size: 12px; line-height: 1.35; }
table { border-collapse: collapse; font-size: 13px; }
td, th { border: 1px solid #ddd; padding: 3px 8px; text-align: right; }
td:first-child, th:first-child { text-align: left; font-family: monospace; }
.section { margin-bottom: 12px; }
.meta { color: #666; font-size: 12px; }
"""


class HtmlReport:
    """Accumulates sections and renders one self-contained document."""

    def __init__(self, title: str = "EasyView report") -> None:
        self.title = title
        self._sections: List[str] = []

    def add_heading(self, text: str) -> "HtmlReport":
        """A section heading."""
        self._sections.append("<h2>%s</h2>" % html_mod.escape(text))
        return self

    def add_paragraph(self, text: str) -> "HtmlReport":
        """A paragraph of commentary."""
        self._sections.append("<p>%s</p>" % html_mod.escape(text))
        return self

    def add_flamegraph(self, graph: FlameGraph, title: str = ""
                       ) -> "HtmlReport":
        """Embed a flame graph as inline SVG."""
        self._sections.append("<div class='section'>%s</div>"
                              % graph.to_svg(title=title))
        return self

    def add_table(self, table: TreeTable, max_rows: int = 100
                  ) -> "HtmlReport":
        """Embed a tree table's visible rows."""
        names = [table.tree.schema[c].name for c in table.columns]
        rows_html = ["<tr><th>context</th>%s</tr>"
                     % "".join("<th>%s</th>" % html_mod.escape(n)
                               for n in names)]
        for row in table.rows()[:max_rows]:
            indent = "&nbsp;" * (2 * row.depth)
            cells = "".join("<td>%g</td>" % v for v in row.values)
            rows_html.append("<tr><td>%s%s</td>%s</tr>"
                             % (indent, html_mod.escape(row.label()), cells))
        self._sections.append("<table>%s</table>" % "".join(rows_html))
        return self

    def add_histogram(self, series: Sequence[float], title: str = ""
                      ) -> "HtmlReport":
        """Embed a value-series bar chart."""
        self._sections.append("<div class='section'>%s</div>"
                              % histogram_svg(series, title=title))
        return self

    def add_preformatted(self, text: str) -> "HtmlReport":
        """Embed preformatted text (e.g. a terminal rendering)."""
        self._sections.append("<pre>%s</pre>" % html_mod.escape(text))
        return self

    def render(self) -> str:
        """The complete HTML document."""
        return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                "<title>%s</title><style>%s</style></head><body>"
                "<h1>%s</h1>%s</body></html>"
                % (html_mod.escape(self.title), _STYLE,
                   html_mod.escape(self.title), "".join(self._sections)))

    def save(self, path: str) -> None:
        """Write the document to a file (atomic tempfile + rename)."""
        from ..core.atomicio import atomic_write_text
        atomic_write_text(path, self.render())
