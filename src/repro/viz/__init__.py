"""EasyView's visualization layer: flame-graph layout and renderers (SVG,
HTML, terminal), tree tables, aggregate histograms, and color semantics."""

from .dot import to_dot
from .color import ansi_index, css, diff_color, frame_color, highlight_color
from .flamegraph import CorrelatedView, FlameGraph
from .histogram import (histogram_svg, histogram_text, node_histogram_text,
                        sparkline, trend_label)
from .html import HtmlReport
from .layout import FlameLayout, FlameRect, layout
from .svg import render_diff_svg, render_svg
from .terminal import render_flame_text, render_summary, render_tree_text
from .timeline import timeline_svg, timeline_text
from .treetable import TableRow, TreeTable
from .webview import render_webview, save_webview

__all__ = [
    "ansi_index", "css", "diff_color", "frame_color", "highlight_color",
    "CorrelatedView", "FlameGraph", "histogram_svg", "histogram_text",
    "node_histogram_text", "sparkline", "trend_label", "HtmlReport",
    "FlameLayout", "FlameRect", "layout", "render_diff_svg", "render_svg",
    "render_flame_text", "render_summary", "render_tree_text", "TableRow",
    "TreeTable", "timeline_svg", "timeline_text", "to_dot",
    "render_webview", "save_webview",
]
