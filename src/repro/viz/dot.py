"""Graphviz DOT export: pprof's classic call-graph view.

pprof users read weighted call graphs (boxes sized by self time, edges by
transfer); EasyView keeps that view available for backward compatibility
(§VI-A's goal of attracting users of existing tools).  The exporter folds
a view tree into a graph — nodes merge across call paths, edges accumulate
caller→callee flow — and emits DOT text renderable with ``dot -Tsvg``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.viewtree import ViewTree
from ..core.frame import FrameKind


def _quote(text: str) -> str:
    return '"%s"' % text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(tree: ViewTree, metric_index: int = 0,
           max_nodes: int = 80, min_edge_fraction: float = 0.001,
           title: str = "") -> str:
    """Render a view tree as a DOT call graph.

    Nodes are functions (merged across call paths) labeled with exclusive
    and inclusive values; node font size scales with exclusive share like
    pprof's.  Edges carry the caller→callee inclusive flow.  Only the
    ``max_nodes`` hottest functions are drawn; edges below
    ``min_edge_fraction`` of the total are dropped.
    """
    total = tree.total(metric_index) or 1.0
    metric = tree.schema[metric_index] if len(tree.schema) else None

    node_flat: Dict[Tuple, Dict[str, float]] = {}
    edges: Dict[Tuple[Tuple, Tuple], float] = {}
    for node in tree.nodes():
        if node.frame.kind is FrameKind.ROOT:
            continue
        key = node.frame.merge_key()
        entry = node_flat.setdefault(key, {"exclusive": 0.0,
                                           "inclusive": 0.0,
                                           "label": node.frame.label()})
        entry["exclusive"] += node.exclusive.get(metric_index, 0.0)
        entry["inclusive"] += node.inclusive.get(metric_index, 0.0)
        parent = node.parent
        if parent is not None and parent.frame.kind is not FrameKind.ROOT:
            edge = (parent.frame.merge_key(), key)
            edges[edge] = edges.get(edge, 0.0) + node.inclusive.get(
                metric_index, 0.0)

    keep = sorted(node_flat,
                  key=lambda k: -(node_flat[k]["exclusive"]
                                  or node_flat[k]["inclusive"] * 1e-6))
    keep = set(keep[:max_nodes])

    def fmt(value: float) -> str:
        if metric is not None:
            return metric.format_value(value)
        return "%g" % value

    lines = ["digraph easyview {"]
    if title:
        lines.append("  label=%s;" % _quote(title))
    lines.append("  node [shape=box, style=filled, "
                 "fillcolor=\"#f2e6d8\", fontname=\"monospace\"];")
    ids: Dict[Tuple, str] = {}
    for i, key in enumerate(sorted(keep,
                                   key=lambda k: node_flat[k]["label"])):
        entry = node_flat[key]
        ids[key] = "n%d" % i
        share = entry["exclusive"] / total
        font = 8 + 22 * min(share * 4, 1.0) ** 0.5
        label = "%s\\n%s of %s (%.1f%%)" % (
            entry["label"], fmt(entry["exclusive"]),
            fmt(entry["inclusive"]), 100.0 * share)
        lines.append("  %s [label=%s, fontsize=%.1f];"
                     % (ids[key], _quote(label), font))
    for (src, dst), weight in sorted(edges.items(),
                                     key=lambda kv: -kv[1]):
        if src not in ids or dst not in ids:
            continue
        if weight < total * min_edge_fraction:
            continue
        width = 0.5 + 4.0 * min(weight / total, 1.0)
        lines.append("  %s -> %s [label=%s, penwidth=%.2f];"
                     % (ids[src], ids[dst], _quote(fmt(weight)), width))
    lines.append("}")
    return "\n".join(lines)
