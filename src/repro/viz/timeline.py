"""Timeline strip rendering for snapshot series (the FlameScope pane).

Renders the per-snapshot activity totals as a selectable strip — text for
the terminal, SVG for reports — with optional phase shading from
:func:`repro.analysis.timerange.find_phases`.
"""

from __future__ import annotations

import html as html_mod
from typing import List, Optional, Sequence, Tuple

from ..analysis.timerange import activity_series, find_phases
from ..core.metric import Metric
from ..core.profile import Profile
from .histogram import SPARK_LEVELS

_PHASE_COLORS = ("#dbe9f6", "#fdebd0", "#e8f6e0", "#f6e0f0", "#e0e0f6")


def timeline_text(profile: Profile, metric: str, width: int = 60,
                  mark_phases: bool = True) -> str:
    """A two-line terminal strip: sparkline + phase markers."""
    totals = activity_series(profile, metric)
    if not totals:
        return "(no snapshot series)"
    sequences = profile.snapshot_sequences()
    peak = max(totals) or 1.0
    # Resample onto the requested width.
    cells = []
    for column in range(min(width, len(totals))):
        index = int(column * len(totals) / min(width, len(totals)))
        level = int(totals[index] / peak * (len(SPARK_LEVELS) - 1) + 0.5)
        cells.append(SPARK_LEVELS[max(0, min(level,
                                             len(SPARK_LEVELS) - 1))])
    lines = ["".join(cells),
             "#%d%s#%d" % (sequences[0],
                           " " * max(len(cells) - 4, 1), sequences[-1])]
    if mark_phases:
        phases = find_phases(profile, metric)
        if len(phases) > 1:
            lines.append("phases: " + ", ".join(
                "[%d..%d]" % phase for phase in phases))
    return "\n".join(lines)


def timeline_svg(profile: Profile, metric: str, width: int = 600,
                 height: int = 90, metric_desc: Optional[Metric] = None,
                 selection: Optional[Tuple[int, int]] = None) -> str:
    """An SVG strip with per-snapshot bars, phase shading, and an optional
    selected window outline."""
    totals = activity_series(profile, metric)
    sequences = profile.snapshot_sequences()
    if not totals:
        return "<svg xmlns='http://www.w3.org/2000/svg' width='8' height='8'/>"
    peak = max(totals) or 1.0
    bar_w = width / len(totals)
    parts = ["<svg xmlns='http://www.w3.org/2000/svg' width='%d' "
             "height='%d'>" % (width, height + 18),
             "<rect width='100%' height='100%' fill='#ffffff'/>"]

    slot = {seq: i for i, seq in enumerate(sequences)}
    for p, (start, end) in enumerate(find_phases(profile, metric)):
        x0 = slot[start] * bar_w
        x1 = (slot[end] + 1) * bar_w
        parts.append("<rect x='%.1f' y='0' width='%.1f' height='%d' "
                     "fill='%s'/>" % (x0, x1 - x0, height,
                                      _PHASE_COLORS[p % len(_PHASE_COLORS)]))

    for i, value in enumerate(totals):
        bar_h = value / peak * (height - 6)
        label = metric_desc.format_value(value) if metric_desc else (
            "%g" % value)
        parts.append(
            "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' "
            "fill='rgb(84,138,198)'><title>#%d: %s</title></rect>"
            % (i * bar_w + 0.5, height - bar_h, max(bar_w - 1, 0.5),
               bar_h, sequences[i], html_mod.escape(label)))

    if selection is not None:
        lo, hi = selection
        if lo in slot and hi in slot:
            x0 = slot[lo] * bar_w
            x1 = (slot[hi] + 1) * bar_w
            parts.append("<rect x='%.1f' y='0' width='%.1f' height='%d' "
                         "fill='none' stroke='#d62728' "
                         "stroke-width='2'/>" % (x0, x1 - x0, height))
    parts.append("<text x='2' y='%d' font-family='monospace' "
                 "font-size='11'>#%d .. #%d</text>"
                 % (height + 14, sequences[0], sequences[-1]))
    parts.append("</svg>")
    return "".join(parts)
