"""Color semantics (§VI-B): stable per-module hues, darkness encoding
line-mapping availability, and the red/blue differential scale.

Colors are deterministic functions of the frame, so a function keeps its
color across views, zooms, and sessions — the property users rely on to
re-find a frame after a transform.
"""

from __future__ import annotations

import colorsys
import hashlib
from typing import Optional, Tuple

from ..analysis.viewtree import ViewNode
from ..core.frame import FrameKind

RGB = Tuple[int, int, int]

#: Base hue ranges (degrees) per frame kind; functions get warm flame hues,
#: data objects green, grouping rows gray-blue.
_KIND_HUE = {
    FrameKind.FUNCTION: (0.0, 55.0),       # red → yellow (classic flame)
    FrameKind.LOOP: (25.0, 55.0),
    FrameKind.BASIC_BLOCK: (200.0, 230.0),  # module/file grouping rows
    FrameKind.INSTRUCTION: (0.0, 55.0),
    FrameKind.DATA_OBJECT: (95.0, 140.0),   # allocations in green
    FrameKind.THREAD: (260.0, 290.0),
    FrameKind.ROOT: (0.0, 0.0),
}


def _stable_unit(text: str) -> float:
    """Map a string to a stable float in [0, 1)."""
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2 ** 32


def frame_color(node: ViewNode) -> RGB:
    """The fill color for a node's block (see :func:`frame_rgb`)."""
    return frame_rgb(node.frame)


def frame_rgb(frame) -> RGB:
    """The fill color for a frame.

    Hue: hashed from the frame's module (falling back to file, then name),
    so frames of one library share a hue family.  Within the family, the
    exact hue is hashed from the function name.  Lightness: frames *with*
    line mapping draw saturated; frames without draw washed out — the
    paper's "darkness represents availability of source line mapping".

    Colors depend only on the frame, so columnar layouts compute one color
    per frame-table entry and broadcast it across every rect sharing it.
    """
    if frame.kind is FrameKind.ROOT:
        return (208, 208, 208)
    low, high = _KIND_HUE.get(frame.kind, (0.0, 55.0))
    family = frame.module or frame.file or frame.name
    family_unit = _stable_unit(family)
    member_unit = _stable_unit(frame.name)
    hue = (low + (high - low) * ((family_unit * 0.7 + member_unit * 0.3) % 1.0)) / 360.0
    has_mapping = frame.location.is_known()
    saturation = 0.75 if has_mapping else 0.25
    lightness = 0.55 if has_mapping else 0.78
    r, g, b = colorsys.hls_to_rgb(hue, lightness, saturation)
    return (int(r * 255), int(g * 255), int(b * 255))


def diff_color(node: ViewNode, metric_index: int = 0,
               max_ratio: float = 2.0) -> RGB:
    """Differential coloring: red for growth, blue for shrinkage.

    Intensity scales with the relative change, saturating at
    ``max_ratio``; added contexts are fully red, deleted fully blue,
    unchanged contexts near-white.
    """
    if node.tag == "A":
        return (214, 39, 40)
    if node.tag == "D":
        return (31, 119, 180)
    before = node.baseline.get(metric_index, 0.0)
    after = node.inclusive.get(metric_index, 0.0)
    if before == 0.0 and after == 0.0:
        return (245, 245, 245)
    base = max(abs(before), abs(after), 1e-12)
    change = (after - before) / base  # in [-1, 1]
    intensity = min(abs(change) * max_ratio, 1.0)
    if change >= 0:
        # white → red
        return (255, int(255 - 180 * intensity), int(255 - 180 * intensity))
    return (int(255 - 180 * intensity), int(255 - 130 * intensity), 255)


def highlight_color() -> RGB:
    """Color of search-highlighted blocks."""
    return (186, 85, 211)


def css(color: RGB) -> str:
    """Render as a CSS rgb() literal."""
    return "rgb(%d,%d,%d)" % color


def ansi_index(color: RGB) -> int:
    """Approximate an RGB color in the xterm-256 palette (for terminals)."""
    r, g, b = color

    def channel(v: int) -> int:
        return max(0, min(5, round((v - 35) / 40)))

    return 16 + 36 * channel(r) + 6 * channel(g) + channel(b)
