"""Flame-graph layout: from a view tree to positioned rectangles.

The layout is resolution-aware and lazy, which is one of EasyView's
response-time levers (§V-C): nodes whose rendered width would fall below
``min_width`` pixels are not laid out at all (their parent draws as a solid
block), so opening a million-node profile only materializes the few thousand
rectangles a screen can show.  Zooming re-runs the layout rooted at the
zoomed node, exactly like the VSCode extension re-renders on click.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..analysis.viewtree import ViewNode, ViewTree


@dataclass
class FlameRect:
    """One positioned flame-graph block.

    ``x`` and ``width`` are in pixels within ``[0, canvas_width)``; ``depth``
    is the row index (0 = the root row at the base of the flame).
    """

    node: ViewNode
    x: float
    width: float
    depth: int

    @property
    def label(self) -> str:
        return self.node.label()

    def fits_text(self, char_width: float = 7.0) -> bool:
        """Whether any useful label text fits inside this block."""
        return self.width >= 3 * char_width


class LazyRects:
    """Rect list over columnar rows; ``FlameRect`` objects build on demand.

    Geometry (count, per-rect x/width/depth) is available without ever
    materializing a ``ViewNode``; iterating or indexing materializes the
    view facade once and wraps each laid-out row in a ``FlameRect``.
    """

    __slots__ = ("_tree", "_columnar", "_rows", "_x", "_width", "_depth",
                 "_items")

    def __init__(self, tree, columnar, rows, x, width, depth) -> None:
        self._tree = tree
        self._columnar = columnar
        self._rows = rows
        self._x = x
        self._width = width
        self._depth = depth
        self._items: Optional[List[FlameRect]] = None

    def _force(self) -> List[FlameRect]:
        if self._items is None:
            columnar = self._columnar
            if columnar.node_objects is None:
                self._tree.root  # materializes the facade into the tree
            if columnar.node_objects is None:  # root was since replaced
                columnar.materialize()
            nodes = columnar.node_objects
            self._items = [
                FlameRect(node=nodes[row], x=x, width=width, depth=depth)
                for row, x, width, depth in zip(
                    self._rows.tolist(), self._x.tolist(),
                    self._width.tolist(), self._depth.tolist())]
        return self._items

    def __iter__(self) -> Iterator[FlameRect]:
        return iter(self._force())

    def __len__(self) -> int:
        return int(self._rows.shape[0])

    def __bool__(self) -> bool:
        return bool(self._rows.shape[0])

    def __getitem__(self, index):
        return self._force()[index]

    def __eq__(self, other):
        if isinstance(other, LazyRects):
            return self._force() == other._force()
        if isinstance(other, list):
            return self._force() == other
        return NotImplemented

    def __repr__(self) -> str:
        return "LazyRects(%d rects)" % len(self)


@dataclass
class RectGeometry:
    """Layout geometry as parallel arrays, one entry per rect.

    This is what a renderer actually ships to a canvas: positions, sizes,
    and a per-rect color bucket (the frame-table index — frames sharing
    an entry share a color), with no per-rect Python objects.
    """

    row: "object"        # int64[k] columnar view row per rect
    x: "object"          # float64[k]
    width: "object"      # float64[k]
    depth: "object"      # int64[k]
    frame_id: "object"   # int64[k] index into ``frames``
    frames: List         # the frame table the buckets refer to

    def colors(self) -> List[Tuple[int, int, int]]:
        """Per-rect RGB fill colors, computed once per distinct frame."""
        from .color import frame_rgb
        cache = {}
        out = []
        for index in self.frame_id.tolist():
            rgb = cache.get(index)
            if rgb is None:
                rgb = cache[index] = frame_rgb(self.frames[index])
            out.append(rgb)
        return out


@dataclass
class FlameLayout:
    """A computed layout plus the parameters that produced it."""

    rects: Sequence[FlameRect]
    canvas_width: float
    max_depth: int
    total_value: float
    metric_index: int
    laid_out_nodes: int
    skipped_nodes: int
    #: Array-form geometry when the layout came off columnar view rows.
    geometry: Optional[RectGeometry] = None

    def rows(self) -> List[List[FlameRect]]:
        """Rectangles grouped by depth (row 0 first)."""
        table: List[List[FlameRect]] = [[] for _ in range(self.max_depth + 1)]
        for rect in self.rects:
            table[rect.depth].append(rect)
        for row in table:
            row.sort(key=lambda r: r.x)
        return table

    def find(self, name: str) -> List[FlameRect]:
        """Rectangles whose frame name contains ``name``."""
        return [r for r in self.rects if name in r.node.frame.name]


def layout(tree: ViewTree, metric_index: int = 0,
           canvas_width: float = 1200.0, min_width: float = 0.5,
           root: Optional[ViewNode] = None,
           max_depth: Optional[int] = None) -> FlameLayout:
    """Lay out a view tree as flame-graph rectangles.

    ``root`` zooms the layout to a subtree (it takes the full canvas width).
    ``min_width`` is the lazy-layout cutoff in pixels; pass 0 to force a
    full layout (the ablation benchmark does).
    """
    if root is None:
        columnar = tree.columnar()
        if columnar is not None:
            return _layout_columnar(tree, columnar, metric_index,
                                    canvas_width, min_width, max_depth)
    origin = root if root is not None else tree.root
    total = origin.inclusive.get(metric_index, 0.0)
    rects: List[FlameRect] = []
    skipped = 0
    deepest = 0
    if total > 0:
        scale = canvas_width / total
        # (node, x, depth); children are laid out left-to-right by
        # descending value, the conventional flame-graph ordering.
        stack = [(origin, 0.0, 0)]
        while stack:
            node, x, depth = stack.pop()
            value = node.inclusive.get(metric_index, 0.0)
            width = value * scale
            if width < min_width:
                skipped += 1 + _subtree_size(node)
                continue
            rects.append(FlameRect(node=node, x=x, width=width, depth=depth))
            if depth > deepest:
                deepest = depth
            if max_depth is not None and depth >= max_depth:
                continue
            child_x = x
            for child in node.sorted_children():
                child_value = child.inclusive.get(metric_index, 0.0)
                if child_value <= 0:
                    continue
                stack.append((child, child_x, depth + 1))
                child_x += child_value * scale
    return FlameLayout(rects=rects, canvas_width=canvas_width,
                       max_depth=deepest, total_value=total,
                       metric_index=metric_index,
                       laid_out_nodes=len(rects), skipped_nodes=skipped)


def _layout_columnar(tree: ViewTree, cvt, metric_index: int,
                     canvas_width: float, min_width: float,
                     max_depth: Optional[int]) -> FlameLayout:
    """Flame rects straight from columnar preorder — no ViewNode in sight.

    Replays :func:`layout` exactly on the view-row arrays: per depth level,
    candidate rows (positive value, parent laid out) get x positions from a
    grouped exclusive running sum of sibling widths in the object path's
    sort order (descending metric-0 value, then frame name/file, insertion
    order on ties), the ``min_width`` cutoff prunes whole subtrees via the
    precomputed subtree sizes, and the final rect order is the preorder
    under the *reversed* sort key — the pop order of the object DFS.  The
    returned layout carries a :class:`RectGeometry` and a :class:`LazyRects`
    sequence, so rendering geometry never materializes the facade.
    """
    import numpy as np

    n = cvt.n_rows
    m = cvt.n_metrics
    if 0 <= metric_index < m:
        total = float(cvt.inclusive[0, metric_index])
    else:
        total = 0.0
    empty = np.zeros(0, dtype=np.int64)
    if not total > 0:
        return FlameLayout(
            rects=LazyRects(tree, cvt, empty, empty.astype(np.float64),
                            empty.astype(np.float64), empty),
            canvas_width=canvas_width, max_depth=0, total_value=total,
            metric_index=metric_index, laid_out_nodes=0, skipped_nodes=0,
            geometry=RectGeometry(row=empty, x=empty.astype(np.float64),
                                  width=empty.astype(np.float64),
                                  depth=empty, frame_id=empty,
                                  frames=cvt.frames))

    scale = canvas_width / total
    value = cvt.inclusive[:, metric_index]
    width = value * scale
    parent = cvt.parent
    sizes = cvt.subtree_sizes()

    # Sibling sort order: descending metric-0 value (sorted_children always
    # ranks on column 0, whatever metric is being laid out), then frame
    # (name, file); stable sorts keep insertion order on full ties.  The
    # ranks are per frame-table entry; candidates gather them per row.
    value0 = cvt.inclusive[:, 0] if m > 0 else np.zeros(n, dtype=np.float64)
    frames = cvt.frames
    name_rank = {text: i for i, text in
                 enumerate(sorted({f.name for f in frames}))}
    file_rank = {text: i for i, text in
                 enumerate(sorted({f.file for f in frames}))}
    name_key = np.array([name_rank[f.name] for f in frames], dtype=np.int64)
    file_key = np.array([file_rank[f.file] for f in frames], dtype=np.int64)
    fid = cvt.frame_id

    emitted = np.zeros(n, dtype=bool)
    x = np.zeros(n, dtype=np.float64)
    skipped = 0
    deepest = 0
    # Emitted children per laid-out row, in sibling sort order — feeds the
    # emission-order replay below.
    kept_children: dict = {}
    if width[0] >= min_width:
        emitted[0] = True
    else:
        skipped = int(sizes[0])

    # Level sweep over candidates only (positive value, laid-out parent):
    # pruning keeps the candidate set near the rendered-rect count, so the
    # sorts here are tiny even on million-row trees — the only full-array
    # work is the per-level candidate mask.
    ids, level_start = cvt.depth_groups()
    for level in range(1, len(level_start) - 1):
        if max_depth is not None and level > max_depth:
            break
        rows = ids[level_start[level]:level_start[level + 1]]
        cand = rows[(value[rows] > 0) & emitted[parent[rows]]]
        if cand.size == 0:
            break
        # Sort candidates by (parent, -value0, name, file); lexsort is
        # stable, so full ties keep ascending row order = insertion order.
        cand.sort()
        cfid = fid[cand]
        ranked = cand[np.lexsort((file_key[cfid], name_key[cfid],
                                  -value0[cand], parent[cand]))]
        # x positions: exclusive running sum of sibling widths in sort
        # order, offset from the parent's x.  Every positive-value sibling
        # advances the cursor, laid out or not — exactly the push loop.
        w = width[ranked]
        running = np.cumsum(w) - w
        p = parent[ranked]
        starts = np.empty(ranked.size, dtype=bool)
        starts[0] = True
        starts[1:] = p[1:] != p[:-1]
        anchor = np.maximum.accumulate(
            np.where(starts, np.arange(ranked.size, dtype=np.int64), 0))
        x[ranked] = x[p] + (running - running[anchor])
        keep = w >= min_width
        emitted[ranked] = keep
        if keep.any():
            deepest = level
            for row, parent_row in zip(ranked[keep].tolist(),
                                       p[keep].tolist()):
                kept_children.setdefault(parent_row, []).append(row)
        if not keep.all():
            skipped += int(sizes[ranked[~keep]].sum())

    # Rect emission order = the object DFS pop order: push children in
    # sort order, pop from the tail.  Replayed over laid-out rows only.
    emission: List[int] = []
    if emitted[0]:
        stack = [0]
        while stack:
            row = stack.pop()
            emission.append(row)
            children = kept_children.get(row)
            if children:
                stack.extend(children)
    laid = np.array(emission, dtype=np.int64)
    rect_x = x[laid]
    rect_w = width[laid]
    rect_d = cvt.depth[laid]
    geometry = RectGeometry(row=laid, x=rect_x, width=rect_w, depth=rect_d,
                            frame_id=cvt.frame_id[laid], frames=cvt.frames)
    return FlameLayout(
        rects=LazyRects(tree, cvt, laid, rect_x, rect_w, rect_d),
        canvas_width=canvas_width, max_depth=deepest, total_value=total,
        metric_index=metric_index, laid_out_nodes=int(laid.shape[0]),
        skipped_nodes=skipped, geometry=geometry)


def layout_profile(profile, metric_index: int = 0,
                   canvas_width: float = 1200.0, min_width: float = 0.5,
                   max_depth: Optional[int] = None) -> FlameLayout:
    """Lay out a profile's top-down flame graph *directly from its CCT*.

    This is the open-pipeline fast path (§V-C): instead of materializing a
    full view tree first, sibling contexts are merged on the fly per
    rendered row, and merging stops wherever the merged block falls under
    ``min_width`` pixels.  Work is proportional to the number of *rendered*
    blocks, not to profile size — on the Fig. 5 corpus this is what keeps
    the large-profile open time flat while eager viewers scale with node
    count.

    Rendered blocks get lightweight :class:`ViewNode` stubs (frame, merged
    inclusive value, contributing CCT nodes as ``sources``) so every
    renderer and the code-link action work unchanged.
    """
    from ..analysis.metrics import compute_inclusive
    compute_inclusive(profile, [metric_index])
    root = profile.root
    total = root.inclusive.get(metric_index, 0.0)
    rects: List[FlameRect] = []
    skipped = 0
    deepest = 0
    if total > 0:
        scale = canvas_width / total
        root_stub = ViewNode(root.frame)
        root_stub.inclusive[metric_index] = total
        root_stub.sources.append(root)
        # Stack entries: (cct node group, view stub, x, depth).  A group is
        # the list of CCT contexts merged into one block.
        stack = [([root], root_stub, 0.0, 0)]
        while stack:
            group, stub, x, depth = stack.pop()
            rects.append(FlameRect(node=stub, x=x, width=stub.inclusive[
                metric_index] * scale, depth=depth))
            if depth > deepest:
                deepest = depth
            if max_depth is not None and depth >= max_depth:
                continue
            # Merge the group's children by frame identity.
            merged: dict = {}
            for cct_node in group:
                for child in cct_node.children.values():
                    value = child.inclusive.get(metric_index, 0.0)
                    if value <= 0:
                        continue
                    key = child.frame.merge_key()
                    entry = merged.get(key)
                    if entry is None:
                        merged[key] = [child.frame, value, [child]]
                    else:
                        entry[1] += value
                        entry[2].append(child)
            # Lay wide children out left-to-right by descending value.
            entries = sorted(merged.values(), key=lambda e: -e[1])
            child_x = x
            for frame, value, members in entries:
                width = value * scale
                if width < min_width:
                    skipped += len(members)
                    child_x += width
                    continue
                child_stub = ViewNode(frame, parent=stub)
                child_stub.inclusive[metric_index] = value
                child_stub.sources.extend(members)
                stack.append((members, child_stub, child_x, depth + 1))
                child_x += width
    return FlameLayout(rects=rects, canvas_width=canvas_width,
                       max_depth=deepest, total_value=total,
                       metric_index=metric_index,
                       laid_out_nodes=len(rects), skipped_nodes=skipped)


def _subtree_size(node: ViewNode) -> int:
    """Count of descendants (for lazy-layout accounting)."""
    count = 0
    stack = list(node.children.values())
    while stack:
        current = stack.pop()
        count += 1
        stack.extend(current.children.values())
    return count
