"""Flame-graph layout: from a view tree to positioned rectangles.

The layout is resolution-aware and lazy, which is one of EasyView's
response-time levers (§V-C): nodes whose rendered width would fall below
``min_width`` pixels are not laid out at all (their parent draws as a solid
block), so opening a million-node profile only materializes the few thousand
rectangles a screen can show.  Zooming re-runs the layout rooted at the
zoomed node, exactly like the VSCode extension re-renders on click.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..analysis.viewtree import ViewNode, ViewTree


@dataclass
class FlameRect:
    """One positioned flame-graph block.

    ``x`` and ``width`` are in pixels within ``[0, canvas_width)``; ``depth``
    is the row index (0 = the root row at the base of the flame).
    """

    node: ViewNode
    x: float
    width: float
    depth: int

    @property
    def label(self) -> str:
        return self.node.label()

    def fits_text(self, char_width: float = 7.0) -> bool:
        """Whether any useful label text fits inside this block."""
        return self.width >= 3 * char_width


@dataclass
class FlameLayout:
    """A computed layout plus the parameters that produced it."""

    rects: List[FlameRect]
    canvas_width: float
    max_depth: int
    total_value: float
    metric_index: int
    laid_out_nodes: int
    skipped_nodes: int

    def rows(self) -> List[List[FlameRect]]:
        """Rectangles grouped by depth (row 0 first)."""
        table: List[List[FlameRect]] = [[] for _ in range(self.max_depth + 1)]
        for rect in self.rects:
            table[rect.depth].append(rect)
        for row in table:
            row.sort(key=lambda r: r.x)
        return table

    def find(self, name: str) -> List[FlameRect]:
        """Rectangles whose frame name contains ``name``."""
        return [r for r in self.rects if name in r.node.frame.name]


def layout(tree: ViewTree, metric_index: int = 0,
           canvas_width: float = 1200.0, min_width: float = 0.5,
           root: Optional[ViewNode] = None,
           max_depth: Optional[int] = None) -> FlameLayout:
    """Lay out a view tree as flame-graph rectangles.

    ``root`` zooms the layout to a subtree (it takes the full canvas width).
    ``min_width`` is the lazy-layout cutoff in pixels; pass 0 to force a
    full layout (the ablation benchmark does).
    """
    origin = root if root is not None else tree.root
    total = origin.inclusive.get(metric_index, 0.0)
    rects: List[FlameRect] = []
    skipped = 0
    deepest = 0
    if total > 0:
        scale = canvas_width / total
        # (node, x, depth); children are laid out left-to-right by
        # descending value, the conventional flame-graph ordering.
        stack = [(origin, 0.0, 0)]
        while stack:
            node, x, depth = stack.pop()
            value = node.inclusive.get(metric_index, 0.0)
            width = value * scale
            if width < min_width:
                skipped += 1 + _subtree_size(node)
                continue
            rects.append(FlameRect(node=node, x=x, width=width, depth=depth))
            if depth > deepest:
                deepest = depth
            if max_depth is not None and depth >= max_depth:
                continue
            child_x = x
            for child in node.sorted_children():
                child_value = child.inclusive.get(metric_index, 0.0)
                if child_value <= 0:
                    continue
                stack.append((child, child_x, depth + 1))
                child_x += child_value * scale
    return FlameLayout(rects=rects, canvas_width=canvas_width,
                       max_depth=deepest, total_value=total,
                       metric_index=metric_index,
                       laid_out_nodes=len(rects), skipped_nodes=skipped)


def layout_profile(profile, metric_index: int = 0,
                   canvas_width: float = 1200.0, min_width: float = 0.5,
                   max_depth: Optional[int] = None) -> FlameLayout:
    """Lay out a profile's top-down flame graph *directly from its CCT*.

    This is the open-pipeline fast path (§V-C): instead of materializing a
    full view tree first, sibling contexts are merged on the fly per
    rendered row, and merging stops wherever the merged block falls under
    ``min_width`` pixels.  Work is proportional to the number of *rendered*
    blocks, not to profile size — on the Fig. 5 corpus this is what keeps
    the large-profile open time flat while eager viewers scale with node
    count.

    Rendered blocks get lightweight :class:`ViewNode` stubs (frame, merged
    inclusive value, contributing CCT nodes as ``sources``) so every
    renderer and the code-link action work unchanged.
    """
    from ..analysis.metrics import compute_inclusive
    compute_inclusive(profile, [metric_index])
    root = profile.root
    total = root.inclusive.get(metric_index, 0.0)
    rects: List[FlameRect] = []
    skipped = 0
    deepest = 0
    if total > 0:
        scale = canvas_width / total
        root_stub = ViewNode(root.frame)
        root_stub.inclusive[metric_index] = total
        root_stub.sources.append(root)
        # Stack entries: (cct node group, view stub, x, depth).  A group is
        # the list of CCT contexts merged into one block.
        stack = [([root], root_stub, 0.0, 0)]
        while stack:
            group, stub, x, depth = stack.pop()
            rects.append(FlameRect(node=stub, x=x, width=stub.inclusive[
                metric_index] * scale, depth=depth))
            if depth > deepest:
                deepest = depth
            if max_depth is not None and depth >= max_depth:
                continue
            # Merge the group's children by frame identity.
            merged: dict = {}
            for cct_node in group:
                for child in cct_node.children.values():
                    value = child.inclusive.get(metric_index, 0.0)
                    if value <= 0:
                        continue
                    key = child.frame.merge_key()
                    entry = merged.get(key)
                    if entry is None:
                        merged[key] = [child.frame, value, [child]]
                    else:
                        entry[1] += value
                        entry[2].append(child)
            # Lay wide children out left-to-right by descending value.
            entries = sorted(merged.values(), key=lambda e: -e[1])
            child_x = x
            for frame, value, members in entries:
                width = value * scale
                if width < min_width:
                    skipped += len(members)
                    child_x += width
                    continue
                child_stub = ViewNode(frame, parent=stub)
                child_stub.inclusive[metric_index] = value
                child_stub.sources.extend(members)
                stack.append((members, child_stub, child_x, depth + 1))
                child_x += width
    return FlameLayout(rects=rects, canvas_width=canvas_width,
                       max_depth=deepest, total_value=total,
                       metric_index=metric_index,
                       laid_out_nodes=len(rects), skipped_nodes=skipped)


def _subtree_size(node: ViewNode) -> int:
    """Count of descendants (for lazy-layout accounting)."""
    count = 0
    stack = list(node.children.values())
    while stack:
        current = stack.pop()
        count += 1
        stack.extend(current.children.values())
    return count
