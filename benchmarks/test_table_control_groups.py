"""§VII-D control groups — Task I/II/III times per tool.

The paper's experimental group (EasyView) and two control groups (default
PProf viewer, GoLand's pprof plugin), 7 people each, perform three tasks:

* Task I (top-down hotspots): ~10 min vs ~30 min vs ~15 min;
* Task II (bottom-up callers): ~10 min vs >3 h vs ~1 h;
* Task III (leak across snapshots): ~10 min vs DNF vs DNF.

We replay the simulation (see ``repro.study`` for the substitution
rationale), feeding it the *measured* per-tool open times from the Fig. 5
pipelines so the two experiments stay coupled.
"""

from __future__ import annotations

import pytest

from repro.baselines import EasyViewViewer, GoLandViewer, PProfViewer
from repro.study.simulate import render_table, run_study


def measured_open_seconds(corpus) -> dict:
    """Per-tool response time on the largest generated tier."""
    biggest = corpus[max(corpus, key=lambda name: len(corpus[name]))]
    return {
        "easyview": EasyViewViewer().open_profile(biggest).seconds,
        "pprof": PProfViewer().open_profile(biggest).seconds,
        "goland": GoLandViewer().open_profile(biggest).seconds,
    }


def test_control_group_table(benchmark, corpus):
    """Regenerate the study table and check all nine cells' bands."""
    open_seconds = measured_open_seconds(corpus)
    table = benchmark.pedantic(
        lambda: run_study(open_seconds=open_seconds),
        rounds=3, iterations=1)

    print("\n§VII-D — control-group study (group means)")
    print("measured open times: %s"
          % {k: round(v, 2) for k, v in open_seconds.items()})
    print(render_table(table))

    t = {tool: {task: cell for task, cell in cells.items()}
         for tool, cells in table.items()}

    # Task I: EasyView ~10, GoLand ~15, PProf ~30 (minutes).
    assert t["easyview"]["task1"].mean_minutes < \
        t["goland"]["task1"].mean_minutes < t["pprof"]["task1"].mean_minutes
    assert 7 <= t["easyview"]["task1"].mean_minutes <= 14
    assert 24 <= t["pprof"]["task1"].mean_minutes <= 40

    # Task II: EasyView ~10, GoLand ~60, PProf ≈3 h but completes.
    assert t["easyview"]["task2"].mean_minutes <= 15
    assert 40 <= t["goland"]["task2"].mean_minutes <= 85
    assert t["pprof"]["task2"].mean_minutes >= 150
    assert t["pprof"]["task2"].completion_rate == 1.0

    # Task III: EasyView ~10 min; both control groups give up.
    assert t["easyview"]["task3"].mean_minutes <= 15
    assert t["easyview"]["task3"].completion_rate == 1.0
    assert t["pprof"]["task3"].completion_rate == 0.0
    assert t["goland"]["task3"].completion_rate == 0.0

    benchmark.extra_info["table"] = {
        tool: {task: cell.render() for task, cell in cells.items()}
        for tool, cells in table.items()}
