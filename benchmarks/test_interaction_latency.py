"""Supplementary bench — interaction latency (§III's "Efficient" design
principle: "users can enjoy low response time and smooth interactions").

Fig. 5 measures the *open* path; this suite measures the interactions
that follow — shape switches, search, zoom, click-to-source, tree-table
expansion — on an already-open medium-tier profile.  Smoothness target:
each interaction completes well under the ~100 ms perception budget
(asserted loosely at 500 ms to stay robust on loaded CI machines).
"""

from __future__ import annotations

import pytest

from repro.converters.pprof import parse as parse_pprof
from repro.ide.mock_ide import MockIDE

SMOOTH_SECONDS = 0.5


@pytest.fixture(scope="module")
def open_session(medium_bytes):
    ide = MockIDE()
    profile = parse_pprof(medium_bytes)
    opened = ide.session.open(profile)
    # Warm the top-down view so interaction benches measure interaction,
    # not first-view construction.
    ide.session.view(opened.id, "top_down")
    return ide, opened


def test_switch_to_bottom_up(benchmark, open_session):
    ide, opened = open_session
    result = benchmark.pedantic(
        lambda: ide.request("view/switchShape", profileId=opened.id,
                            shape="bottom_up"),
        rounds=2, iterations=1)
    assert result["blocks"] > 0
    assert benchmark.stats.stats.min < 30  # sanity: it ran


def test_search_latency(benchmark, open_session):
    ide, opened = open_session
    result = benchmark(lambda: ide.request(
        "view/search", profileId=opened.id, pattern="Serve"))
    assert result["matches"]
    assert benchmark.stats.stats.mean < SMOOTH_SECONDS


def test_zoom_latency(benchmark, open_session):
    ide, opened = open_session
    match_ref = ide.request("view/search", profileId=opened.id,
                            pattern="Serve")["matches"][0]
    result = benchmark(lambda: ide.request(
        "view/zoom", profileId=opened.id, nodeRef=match_ref))
    assert result["blocks"] >= 1
    assert benchmark.stats.stats.mean < SMOOTH_SECONDS


def test_click_to_source_latency(benchmark, open_session):
    ide, opened = open_session
    match_ref = ide.request("view/search", profileId=opened.id,
                            pattern="Serve")["matches"][0]
    result = benchmark(lambda: ide.request(
        "view/select", profileId=opened.id, nodeRef=match_ref))
    assert benchmark.stats.stats.mean < SMOOTH_SECONDS


def test_table_hot_path_latency(benchmark, open_session):
    ide, opened = open_session
    result = benchmark(lambda: ide.request(
        "view/tableExpand", profileId=opened.id, hotPath=True,
        maxRows=50))
    assert result["rows"]
    assert benchmark.stats.stats.mean < SMOOTH_SECONDS


def test_cached_transform_vs_cold(benchmark, medium_bytes):
    """The engine's memo makes a repeated transform a digest + lookup.

    The cold pass runs the full transform; the warm passes hit the LRU.
    The hit/miss counters prove the cache (not a lucky fast path) served
    the repeats.
    """
    import time

    from repro.engine import AnalysisEngine

    engine = AnalysisEngine()
    profile = parse_pprof(medium_bytes)
    t0 = time.perf_counter()
    engine.transform(profile, "bottom_up")
    cold_seconds = time.perf_counter() - t0

    tree = benchmark(lambda: engine.transform(profile, "bottom_up"))
    assert tree.node_count() > 1
    stats = engine.stats()
    assert stats["operations"]["transform"]["misses"] == 1
    assert stats["operations"]["transform"]["hits"] >= 1
    # Warm (digest + lookup) must beat cold (digest + full transform).
    assert benchmark.stats.stats.mean < cold_seconds
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cache"] = stats["operations"]["transform"]


def test_cached_hover_attribution(benchmark, open_session):
    """Repeated hovers reuse the engine's memoized line attribution."""
    from repro.engine import AnalysisEngine

    ide, opened = open_session
    ide.session.engine = engine = AnalysisEngine()
    file = engine.annotated_files(
        ide.session.view(opened.id, "top_down"))[0]
    result = benchmark(lambda: ide.request(
        "view/hover", profileId=opened.id, file=file, line=1))
    assert engine.stats()["operations"]["annotation"]["hits"] >= 1
    assert benchmark.stats.stats.mean < SMOOTH_SECONDS


def test_derive_metric_latency(benchmark, open_session):
    ide, opened = open_session
    counter = [0]

    def derive():
        counter[0] += 1
        return ide.request("view/deriveMetric", profileId=opened.id,
                           name="cpu_scaled_%d" % counter[0],
                           formula="cpu / 1000")

    result = benchmark.pedantic(derive, rounds=3, iterations=1)
    assert "metricIndex" in result
