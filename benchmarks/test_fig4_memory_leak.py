"""Figure 4 + §VII-C1 — aggregate memory profile of the gRPC client.

The paper captures a PProf heap snapshot every 0.1 s while the
rpcx-benchmark gRPC client runs, aggregates the snapshots, and reads the
per-context histograms: ``bufio.NewReaderSize`` and
``transport.newBufWriter`` stay continuously high (potential leaks —
clients not closing connections), while ``passthrough``'s active memory
diminishes by the end of the run (healthy).
"""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import snapshot_series
from repro.analysis.leak import detect_leaks
from repro.profilers.workloads import grpc_client_profile
from repro.viz.histogram import histogram_text, sparkline, trend_label

LEAKY = ("bufio.NewReaderSize", "transport.newBufWriter")
HEALTHY = ("passthrough",)


@pytest.fixture(scope="module")
def profile():
    return grpc_client_profile(clients=50, snapshots=20)


def test_fig4_leak_detection(benchmark, profile):
    """Regenerate the case study: classify every allocation context."""
    verdicts = benchmark.pedantic(
        lambda: detect_leaks(profile, "inuse_bytes", min_peak=1.0),
        rounds=3, iterations=1)

    by_name = {v.context.frame.name: v for v in verdicts}
    print("\nFigure 4 — per-context snapshot histograms and verdicts")
    for name, verdict in by_name.items():
        print("  %-28s %s  %s" % (name, sparkline(verdict.series),
                                  verdict.describe()))

    # Shape: the two client-creation contexts are flagged, the
    # request-serving buffer is not.
    for name in LEAKY:
        assert by_name[name].suspicious, name
        assert by_name[name].retention > 0.8
    for name in HEALTHY:
        assert not by_name[name].suspicious, name
        assert by_name[name].retention < 0.5

    # Shape: the leaks rank above the healthy context.
    ranked = [v.context.frame.name for v in verdicts]
    assert max(ranked.index(n) for n in LEAKY) < ranked.index(HEALTHY[0])

    benchmark.extra_info["verdicts"] = {
        name: {"score": round(v.score, 3), "suspicious": v.suspicious}
        for name, v in by_name.items()}


def test_fig4_histogram_pane(benchmark, profile):
    """Benchmark producing the histogram pane for the hovered frame."""
    series_by_context = snapshot_series(profile, "inuse_bytes")
    leaky_series = next(values for node, values
                        in series_by_context.items()
                        if node.frame.name == "bufio.NewReaderSize")

    text = benchmark(lambda: histogram_text(leaky_series, width=30))
    assert text.count("\n") == len(leaky_series) - 1
    assert "no sign of reclamation" in trend_label(leaky_series)


def test_fig4_aggregate_view(benchmark, profile):
    """Benchmark the full aggregate path the viewer runs on click.

    The paper's workflow: open the profile, aggregate the snapshot series,
    click a frame, and read the popped histogram.
    """
    from repro.ide.mock_ide import MockIDE

    def click_workflow():
        ide = MockIDE()
        opened = ide.session.open(profile)
        tree = ide.session.view(opened.id, "top_down")
        frame = tree.find_by_name("transport.newBufWriter")[0]
        ide.session.select(opened.id, frame)   # code link fires
        return ide

    ide = benchmark.pedantic(click_workflow, rounds=2, iterations=1)
    assert ide.state.open_file == "http2_client.go"
