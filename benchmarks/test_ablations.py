"""Ablation benches for the §V-C design choices DESIGN.md calls out.

Each ablation removes one EasyView efficiency lever and measures the cost:

1. **frame interning** — canonical frames with identity-based merging vs
   freshly constructed frame objects per sample;
2. **prefix-merged CCT** — the shared-prefix tree vs flat per-sample stack
   records (the paper's storage-minimization claim, §IV-A);
3. **lazy flame-graph layout** — resolution-aware layout from the CCT vs
   materializing the full view tree and laying out every node.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.transform import top_down
from repro.converters.pprof import parse as parse_pprof
from repro.core.frame import Frame, FrameKind, intern_frame
from repro.core.serialize import dumps as dumps_native
from repro.proto import pprof_pb
from repro.viz.layout import layout, layout_profile


@pytest.fixture(scope="module")
def message(medium_bytes):
    return pprof_pb.loads(medium_bytes)


@pytest.fixture(scope="module")
def profile(medium_bytes):
    return parse_pprof(medium_bytes)


def resolve_stacks(message):
    """Pre-resolve each sample to (name, file, line, module) tuples."""
    functions = {fn.id: fn for fn in message.function}
    locations = {loc.id: loc for loc in message.location}
    stacks = []
    for sample in message.sample:
        stack = []
        for location_id in reversed(sample.location_id):
            location = locations[location_id]
            for line in reversed(location.line):
                fn = functions[line.function_id]
                stack.append((message.string(fn.name),
                              message.string(fn.filename),
                              line.line, "svc"))
        stacks.append((stack, float(sample.value[0])))
    return stacks


class TestInterningAblation:
    def test_with_interning(self, benchmark, message):
        stacks = resolve_stacks(message)

        def build():
            return [[intern_frame(*spec) for spec in stack]
                    for stack, _ in stacks]

        frames = benchmark.pedantic(build, rounds=2, iterations=1)
        # Interning makes repeated frames the same object.
        assert frames[0][0] is intern_frame(*stacks[0][0][0])

    def test_without_interning(self, benchmark, message):
        stacks = resolve_stacks(message)

        def build():
            return [[Frame(name=name, file=file, line=line, module=module)
                     for name, file, line, module in stack]
                    for stack, _ in stacks]

        frames = benchmark.pedantic(build, rounds=2, iterations=1)
        # Without interning every frame is a fresh object.
        assert frames[0][0] is not frames[-1][0] or len(frames) == 1


class TestCCTMergeAblation:
    def test_merged_cct_storage(self, benchmark, profile, message):
        """The paper's claim: prefix merging minimizes memory and disk."""
        native = benchmark.pedantic(lambda: dumps_native(profile),
                                    rounds=2, iterations=1)

        merged_contexts = profile.node_count()
        flat_frames = sum(len(s.location_id) for s in message.sample)
        print("\nAblation 2 — storage: %d merged contexts vs %d flat "
              "stack frames (%.1fx reduction)"
              % (merged_contexts, flat_frames,
                 flat_frames / merged_contexts))
        benchmark.extra_info["merged_contexts"] = merged_contexts
        benchmark.extra_info["flat_frames"] = flat_frames
        assert merged_contexts < flat_frames

    def test_flat_sample_list_storage(self, benchmark, message):
        """The ablated design: one JSON record per sample."""
        stacks = resolve_stacks(message)

        def serialize_flat():
            return "\n".join(
                json.dumps({"stack": stack, "value": value})
                for stack, value in stacks).encode()

        flat_bytes = benchmark.pedantic(serialize_flat, rounds=2,
                                        iterations=1)
        benchmark.extra_info["flat_bytes"] = len(flat_bytes)

    def test_size_comparison(self, profile, message, benchmark):
        native = dumps_native(profile)
        stacks = resolve_stacks(message)
        flat = "\n".join(json.dumps({"stack": s, "value": v})
                         for s, v in stacks).encode()
        ratio = len(flat) / len(native)
        print("\nAblation 2 — bytes: native (merged) %d vs flat %d "
              "(%.1fx smaller)" % (len(native), len(flat), ratio))
        benchmark.extra_info["ratio"] = round(ratio, 2)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert len(native) < len(flat)


class TestLazyLayoutAblation:
    def test_lazy_layout(self, benchmark, profile):
        flame = benchmark.pedantic(
            lambda: layout_profile(profile, min_width=0.5),
            rounds=3, iterations=1)
        benchmark.extra_info["blocks"] = flame.laid_out_nodes

    def test_full_layout(self, benchmark, profile):
        tree = top_down(profile)  # built once, outside the timer

        flame = benchmark.pedantic(
            lambda: layout(tree, min_width=0.0),
            rounds=3, iterations=1)
        benchmark.extra_info["blocks"] = flame.laid_out_nodes

    def test_lazy_renders_fraction_of_blocks(self, profile, benchmark):
        lazy = layout_profile(profile, min_width=0.5)
        full = layout(top_down(profile), min_width=0.0)
        fraction = lazy.laid_out_nodes / full.laid_out_nodes
        print("\nAblation 3 — lazy layout renders %d of %d blocks (%.1f%%)"
              % (lazy.laid_out_nodes, full.laid_out_nodes,
                 100.0 * fraction))
        benchmark.extra_info["fraction"] = round(fraction, 4)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert fraction < 0.5


class TestGcGuardAblation:
    """Ablation 4 — §V-C's manual memory management claim, measured.

    The paper: "EASYVIEW manages the memory manually to avoid frequent
    invocation of garbage collectors."  Generational collections only
    start to bite once the tree holds hundreds of thousands of young
    container objects, so this ablation runs on the *large* tier (skipped
    when EASYVIEW_BENCH_LARGE=0); the medium tier shows near-parity.
    """

    @pytest.fixture(scope="class")
    def large_bytes(self, corpus):
        if "large" not in corpus:
            pytest.skip("large tier disabled (EASYVIEW_BENCH_LARGE=0)")
        return corpus["large"]

    @pytest.fixture(scope="class")
    def warm_pool(self, large_bytes):
        # Populate the frame intern pool once so both variants measure
        # tree construction, not first-touch string interning.
        parse_pprof(large_bytes)
        return True

    def test_parse_with_gc(self, benchmark, large_bytes, warm_pool):
        import gc

        def build():
            assert gc.isenabled()
            return parse_pprof(large_bytes)

        profile = benchmark.pedantic(build, rounds=2, iterations=1)
        benchmark.extra_info["nodes"] = profile.node_count()

    def test_parse_without_gc(self, benchmark, large_bytes, warm_pool):
        from repro.core.gcguard import no_gc

        def build():
            # collect_after deliberately off: the reclaim happens outside
            # the interactive open path (and outside the timer).
            with no_gc():
                return parse_pprof(large_bytes)

        profile = benchmark.pedantic(build, rounds=2, iterations=1)
        benchmark.extra_info["nodes"] = profile.node_count()
