"""Figure 5 — response time to open a profile: EasyView vs PProf vs GoLand.

The paper opens real PProf profiles from ~1 MB to ~1 GB with three viewers
and reports end-to-end response time; EasyView wins at every size and the
gap widens with profile size.  We reproduce the comparison on synthetic
pprof corpora (tiers stand in for the paper's size range, scaled to a
laptop benchmark budget).

Shape criteria: EasyView < PProf < GoLand — strictly — at medium and above,
and EasyView's advantage over the slowest baseline grows with size.
"""

from __future__ import annotations

import pytest

from repro.baselines import (EasyViewViewer, GoLandViewer, PProfViewer,
                             measure)

VIEWERS = {
    "easyview": EasyViewViewer,
    "pprof": PProfViewer,
    "goland": GoLandViewer,
}


@pytest.mark.parametrize("viewer_name", list(VIEWERS))
def test_open_small(benchmark, viewer_name, small_bytes):
    """Per-viewer open time on the small tier (the paper's ~1 MB point)."""
    viewer = VIEWERS[viewer_name]()
    result = benchmark.pedantic(viewer.open_profile, args=(small_bytes,),
                                rounds=3, iterations=1)
    benchmark.extra_info["blocks"] = result.blocks
    benchmark.extra_info["nodes"] = result.nodes


@pytest.mark.parametrize("viewer_name", list(VIEWERS))
def test_open_medium(benchmark, viewer_name, medium_bytes):
    """Per-viewer open time on the medium tier (~100 MB point)."""
    viewer = VIEWERS[viewer_name]()
    result = benchmark.pedantic(viewer.open_profile, args=(medium_bytes,),
                                rounds=2, iterations=1)
    benchmark.extra_info["blocks"] = result.blocks


def test_fig5_shape(benchmark, corpus):
    """The full figure: all viewers × all tiers, with shape assertions.

    Prints the regenerated figure rows and records them in extra_info.
    """
    def run_comparison():
        table = {}
        for tier_name, data in corpus.items():
            table[tier_name] = {}
            # min-of-2 for the quick tiers strips scheduler noise; the
            # large tier is long enough to be stable single-shot.
            repeats = 1 if tier_name == "large" else 2
            for viewer_name, viewer_cls in VIEWERS.items():
                result = measure(viewer_cls(), data, repeats=repeats)
                table[tier_name][viewer_name] = result.seconds
        return table

    table = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print("\nFigure 5 — response time (seconds), lower is better")
    print("%-8s %10s %10s %10s" % ("size", "easyview", "pprof", "goland"))
    for tier_name, row in table.items():
        print("%-8s %10.3f %10.3f %10.3f"
              % (tier_name, row["easyview"], row["pprof"], row["goland"]))
        benchmark.extra_info[tier_name] = {k: round(v, 4)
                                           for k, v in row.items()}

    # Shape: EasyView wins from the medium tier up (tiny profiles are
    # dominated by constant costs, like the paper's 1 MB point where all
    # three viewers are fast).
    sized = [name for name in ("medium", "large") if name in table]
    for tier_name in sized:
        row = table[tier_name]
        assert row["easyview"] < row["pprof"], (tier_name, row)
        assert row["easyview"] < row["goland"], (tier_name, row)
    # Shape: the gap to the slowest baseline does not shrink with size
    # (it widens in a quiet run; allow 15% timer noise so the assertion
    # checks the trend, not the scheduler).
    if len(sized) == 2:
        gaps = [max(table[t].values()) / table[t]["easyview"]
                for t in sized]
        assert gaps[1] > gaps[0] * 0.85, gaps
