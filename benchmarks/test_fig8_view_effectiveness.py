"""Figure 8 — per-view effectiveness from the 26-participant survey.

The paper reports the percentage of participants who found each view
effective: flame graphs beat tree tables overall (92.3% vs 84.6%) and,
within both families, top-down > bottom-up > flat.  We replay the survey
model (see ``repro.study.survey`` for the substitution rationale).
"""

from __future__ import annotations

import pytest

from repro.study.survey import run_survey


def test_fig8_view_effectiveness(benchmark):
    """Regenerate the Fig. 8 bars and check every ordering."""
    outcome = benchmark.pedantic(run_survey, rounds=5, iterations=1)

    print("\nFigure 8 — %% of participants finding each view effective")
    print(outcome.render())

    # Headline comparison (paper: 92.3% vs 84.6%).
    flame = outcome.any_flame_percent()
    table = outcome.any_table_percent()
    assert flame > table
    assert 85 <= flame <= 100
    assert 75 <= table <= 95

    # Within each family: top-down ≥ bottom-up ≥ flat.
    for family in ("flame", "table"):
        td = outcome.percent(family, "top_down")
        bu = outcome.percent(family, "bottom_up")
        fl = outcome.percent(family, "flat")
        assert td >= bu >= fl, (family, td, bu, fl)

    # Per shape: the flame variant is at least as effective as the table.
    for shape in ("top_down", "bottom_up", "flat"):
        assert outcome.percent("flame", shape) >= \
            outcome.percent("table", shape)

    benchmark.extra_info["percentages"] = {
        "%s/%s" % key: round(value, 1)
        for key, value in outcome.effective_percent.items()}
