"""Serving bench — concurrent socket sessions vs the single-client path.

Runs the shared harness in :mod:`repro.bench.serve` over the
client-count tiers, writes ``BENCH_serve.json`` at the repo root, and
enforces three things:

* **Determinism always**: at every tier the concurrent sessions'
  response streams must be digest-identical to each other and to the
  single-client ``StdioServer`` reference (the harness raises
  :class:`repro.bench.serve.ServeMismatch` if not).
* **Cancellation effectiveness**: the burst run's superseded ratio must
  be positive — queued same-pane requests really are cancelled rather
  than executed.
* **Scalability shape**: throughput and p50/p95/p99 latency are
  reported for at least three client counts.

CI runs this in quick mode (1/16/64 sessions); set
``EASYVIEW_BENCH_LARGE`` != 0 (the default locally) for the
1024-session tier the scalability claim is defined on.
"""

from __future__ import annotations

import os

from repro.bench.serve import QUICK_TIERS, run_serve_bench, write_report

REPORT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_serve.json")

LARGE_ENABLED = os.environ.get("EASYVIEW_BENCH_LARGE", "1") != "0"


def test_serve_bench():
    tiers = list(QUICK_TIERS) + ([1024] if LARGE_ENABLED else [])
    report = run_serve_bench(tiers)
    write_report(report, os.path.normpath(REPORT_PATH))

    assert len(report["tiers"]) >= 3
    for entry in report["tiers"].values():
        assert entry["digestMatchesStdio"]
        assert entry["digest"] == report["stdioReferenceDigest"]
        assert entry["errors"] == 0
        assert entry["throughputRps"] > 0
        assert entry["latencyMs"]["p50"] <= entry["latencyMs"]["p95"] \
            <= entry["latencyMs"]["p99"]

    burst = report["burst"]
    assert burst["burstRequests"] > 0
    assert burst["supersededRatio"] > 0, \
        "supersession never fired under the burst workload"
