"""Supplementary bench — the disabled tracer stays within its budget.

The instrumentation contract in :mod:`repro.obs` is that hot paths may
stay permanently instrumented because a disabled tracer costs one
attribute check per ``span()`` call.  Two checks pin that down:

* the disabled ``span()`` round-trip is sub-microsecond in absolute
  terms, and under 5 % of even the *cheapest* instrumented operation
  (a warm, memoized engine transform);
* running the warm engine path with the shipped (disabled)
  instrumentation is within 5 % of the same path with ``span()``
  stubbed out entirely — measured as min-of-repeats so scheduler noise
  does not flake the assertion.
"""

from __future__ import annotations

import time

import pytest

from repro.converters.base import parse_bytes
from repro.engine import AnalysisEngine
from repro.engine import engine as engine_mod
from repro.obs.tracer import _NULL_CONTEXT, Tracer


def _time_loop(fn, iterations):
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def _best_of(fn, iterations, repeats=5):
    return min(_time_loop(fn, iterations) for _ in range(repeats))


class _StubTracer:
    """The zero-cost floor: span() with no enabled check at all."""

    def span(self, name, **attributes):
        return _NULL_CONTEXT


@pytest.fixture
def warm_engine(small_bytes):
    profile = parse_bytes(small_bytes)
    engine = AnalysisEngine()
    engine.transform(profile, "bottom_up")  # prime the memo cache
    return engine, profile


def test_disabled_span_call_is_submicrosecond():
    tracer = Tracer(enabled=False)

    def one_span():
        with tracer.span("bench.noop"):
            pass

    per_call = _best_of(one_span, iterations=10_000)
    assert per_call < 5e-6, (
        "disabled span() costs %.2f us/call; the null-context fast path "
        "has regressed" % (per_call * 1e6))
    assert len(tracer.spans()) == 0


def test_disabled_span_under_five_percent_of_cache_hit(warm_engine):
    """One null span is < 5 % of the cheapest instrumented operation."""
    engine, profile = warm_engine
    tracer = Tracer(enabled=False)

    def one_span():
        with tracer.span("bench.noop"):
            pass

    span_cost = _best_of(one_span, iterations=10_000)
    hit_cost = _best_of(lambda: engine.transform(profile, "bottom_up"),
                        iterations=200)
    assert span_cost < 0.05 * hit_cost, (
        "disabled span (%.0f ns) is %.1f%% of a warm transform (%.0f ns)"
        % (span_cost * 1e9, 100 * span_cost / hit_cost, hit_cost * 1e9))


def test_disabled_instrumentation_overhead_under_budget(warm_engine):
    """Warm engine path: shipped (disabled) tracer vs no tracer at all."""
    engine, profile = warm_engine
    real_tracer = engine_mod._tracer
    assert not real_tracer.enabled, (
        "bench requires the default (disabled) tracer; EASYVIEW_OBS is "
        "set in this environment")

    def warm_pass():
        engine.transform(profile, "bottom_up")

    iterations = 300
    try:
        engine_mod._tracer = _StubTracer()
        floor = _best_of(warm_pass, iterations)
    finally:
        engine_mod._tracer = real_tracer
    shipped = _best_of(warm_pass, iterations)
    overhead = (shipped - floor) / floor
    assert overhead < 0.05, (
        "disabled tracer adds %.1f%% to the warm engine path "
        "(floor %.0f ns, shipped %.0f ns)"
        % (100 * overhead, floor * 1e9, shipped * 1e9))
