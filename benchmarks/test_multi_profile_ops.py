"""Supplementary bench — multi-profile operations (§V-A(c)).

Aggregation and differencing are the operations that separate EasyView
from single-profile viewers (the whole of Task III hinges on them), so
their cost must stay interactive as the number of profiles grows.  This
bench aggregates N spark-shaped profiles and diffs two corpus-scale
profiles, asserting interactive-grade latency.
"""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import aggregate_profiles
from repro.analysis.diff import diff_profiles, summarize
from repro.converters.pprof import parse as parse_pprof
from repro.profilers.corpus import CorpusSpec, generate_bytes
from repro.profilers.workloads import spark_profile


@pytest.fixture(scope="module")
def spark_fleet():
    # 16 per-executor profiles with different seeds (distinct jitter).
    return [spark_profile("rdd", seed=100 + i) for i in range(16)]


@pytest.mark.parametrize("count", [2, 8, 16])
def test_aggregate_scaling(benchmark, spark_fleet, count):
    """Aggregation cost grows roughly linearly in profile count."""
    tree = benchmark.pedantic(
        lambda: aggregate_profiles(spark_fleet[:count]),
        rounds=3, iterations=1)
    # Every context carries a series of exactly `count` entries.
    task = tree.find_by_name("Task.run")[0]
    assert len(task.histogram[0]) == count
    benchmark.extra_info["profiles"] = count


def test_diff_medium_profiles(benchmark):
    """Differencing two ~40k-context profiles stays interactive."""
    spec_a = CorpusSpec("diff-a", functions=1000, samples=10_000,
                        max_depth=32, seed=5)
    spec_b = CorpusSpec("diff-b", functions=1000, samples=10_000,
                        max_depth=32, seed=6)
    baseline = parse_pprof(generate_bytes(spec_a))
    treatment = parse_pprof(generate_bytes(spec_b))

    tree = benchmark.pedantic(
        lambda: diff_profiles(baseline, treatment),
        rounds=2, iterations=1)
    tags = summarize(tree)
    assert sum(tags.values()) == tree.node_count() - 1
    benchmark.extra_info["nodes"] = tree.node_count()


def test_cached_aggregate_vs_cold(benchmark, spark_fleet):
    """A repeated 16-profile aggregation is served from the engine cache."""
    import time

    from repro.engine import AnalysisEngine

    engine = AnalysisEngine()
    t0 = time.perf_counter()
    engine.aggregate_profiles(spark_fleet)
    cold_seconds = time.perf_counter() - t0

    tree = benchmark(lambda: engine.aggregate_profiles(spark_fleet))
    task = tree.find_by_name("Task.run")[0]
    assert len(task.histogram[0]) == len(spark_fleet)
    stats = engine.stats()
    assert stats["operations"]["aggregate"]["misses"] == 1
    assert stats["operations"]["aggregate"]["hits"] >= 1
    assert benchmark.stats.stats.mean < cold_seconds
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["cache"] = stats["operations"]["aggregate"]


def test_cached_diff_vs_cold(benchmark, spark_fleet):
    """A repeated diff is a pair of digests plus one LRU lookup."""
    import time

    from repro.engine import AnalysisEngine

    engine = AnalysisEngine()
    baseline, treatment = spark_fleet[0], spark_fleet[1]
    t0 = time.perf_counter()
    engine.diff_profiles(baseline, treatment)
    cold_seconds = time.perf_counter() - t0

    tree = benchmark(lambda: engine.diff_profiles(baseline, treatment))
    assert summarize(tree)
    stats = engine.stats()
    assert stats["operations"]["diff"]["misses"] == 1
    assert stats["operations"]["diff"]["hits"] >= 1
    assert benchmark.stats.stats.mean < cold_seconds


def test_snapshot_aggregation(benchmark):
    """The Task III path: aggregating a 20-capture snapshot series."""
    from repro.analysis.aggregate import snapshot_series
    from repro.profilers.workloads import grpc_client_profile
    profile = grpc_client_profile(clients=50, snapshots=20)

    series = benchmark(lambda: snapshot_series(profile, "inuse_bytes"))
    assert series
    assert all(len(values) == 20 for values in series.values())
