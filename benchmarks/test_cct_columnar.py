"""Columnar CCT bench — struct-of-arrays core vs the per-node object tree.

Runs the shared harness in :mod:`repro.bench.cct` over the corpus tiers,
writes ``BENCH_cct.json`` at the repo root, and enforces three things:

* **Correctness always**: on every tier the columnar path must produce
  the same profile digest, a structurally identical materialized tree,
  equal view-tree digests on every shape plus the aggregate and diff
  trees, and matching flame-graph rectangles (the harness raises
  :class:`repro.bench.cct.OracleMismatch` if not).
* **The cold-open target when it is measurable**: >= 3x the object-path
  cold open on the large tier, asserted only when the large tier is
  enabled (``EASYVIEW_BENCH_LARGE`` != 0) and numpy is available — the
  object fallback is correct but not 3x.
* **The view-build target when it is measurable**: the columnar top-down
  build >= 1.5x the object transform on the large tier, same gating.

CI runs this in quick mode (small + medium) and uploads the report as an
artifact; run locally with the large tier for the headline numbers.
"""

from __future__ import annotations

import os

from repro.bench.cct import (COLD_OPEN_TARGET_SPEEDUP, QUICK_TIERS,
                             VIEW_BUILD_TARGET_SPEEDUP, run_cct_bench,
                             write_report)
from repro.core.cct_columnar import numpy_available

REPORT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_cct.json")


def test_cct_columnar(corpus):
    large_enabled = "large" in corpus
    tiers = list(QUICK_TIERS) + (["large"] if large_enabled else [])
    report = run_cct_bench(tiers, repeats=3)
    path = write_report(report, os.path.normpath(REPORT_PATH))

    for name in tiers:
        entry = report["tiers"][name]
        assert entry["equality"]["digest_equal"]
        assert entry["equality"]["trees_identical"]
        assert entry["equality"]["views_identical"]
        assert entry["equality"]["layouts_identical"]
        assert entry["cold_open"]["columnar_s"] > 0

    if large_enabled and numpy_available():
        speedup = report["tiers"]["large"]["cold_open"]["speedup"]
        assert speedup >= COLD_OPEN_TARGET_SPEEDUP, (
            "large-tier cold-open speedup %.2fx below the %.1fx target; "
            "see %s" % (speedup, COLD_OPEN_TARGET_SPEEDUP, path))
        view = report["tiers"]["large"]["view_build"]["speedup"]
        assert view >= VIEW_BUILD_TARGET_SPEEDUP, (
            "large-tier view-build speedup %.2fx below the %.1fx target; "
            "see %s" % (view, VIEW_BUILD_TARGET_SPEEDUP, path))
