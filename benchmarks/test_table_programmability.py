"""§VII-A (in-text table) — programmability: lines of code to adapt a
profiler to EasyView.

The paper reports that teaching a tool to emit EasyView's format directly
takes under 20 lines of glue, and that writing a format converter takes
under 200 lines, most of which parse the original format.  We audit our own
codebase the same way:

* *direct integration* — the emission glue inside the in-process profilers
  (the code between measuring and calling the data builder);
* *converters* — each ``repro/converters/*.py`` module, counting
  non-blank, non-comment, non-docstring source lines.
"""

from __future__ import annotations

import ast
import inspect
import os

import pytest

import repro.converters as converters_pkg
from repro.profilers.tracing import TracingProfiler

CONVERTER_MODULES = [
    "pprof", "collapsed", "chrome", "speedscope", "pyinstrument",
    "scalene", "perf_script", "hpctoolkit", "tau", "cloudprofiler",
    "gprof", "easyview",
]


def code_lines_of_source(source: str) -> int:
    """Count effective source lines: no blanks, comments, or docstrings."""
    tree = ast.parse(source)
    doc_lines = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and isinstance(
                    body[0].value, ast.Constant) and isinstance(
                    body[0].value.value, str):
                for line in range(body[0].lineno, body[0].end_lineno + 1):
                    doc_lines.add(line)
    count = 0
    for i, line in enumerate(source.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or i in doc_lines:
            continue
        count += 1
    return count


def converter_loc() -> dict:
    """Effective LoC per converter module."""
    base_dir = os.path.dirname(converters_pkg.__file__)
    table = {}
    for module in CONVERTER_MODULES:
        path = os.path.join(base_dir, module + ".py")
        with open(path, "r", encoding="utf-8") as handle:
            table[module] = code_lines_of_source(handle.read())
    return table


def direct_integration_loc() -> int:
    """Effective LoC of the tracing profiler's EasyView emission glue.

    The paper's "<20 lines" claim covers the code that hands measured data
    to the data builder — in our tracing profiler that is ``_emit`` plus
    the builder/metric declarations in ``start``.
    """
    import textwrap
    emit_src = textwrap.dedent(inspect.getsource(TracingProfiler._emit))
    loc = code_lines_of_source(emit_src)
    # The builder + two metric declarations in start().
    loc += 3
    return loc


def test_programmability_table(benchmark):
    """Regenerate the §VII-A numbers and check both bounds."""
    table = benchmark.pedantic(converter_loc, rounds=1, iterations=1)
    direct = direct_integration_loc()

    print("\n§VII-A — adapter effort (effective lines of code)")
    print("%-28s %6s" % ("integration path", "LoC"))
    print("%-28s %6d   (paper: < 20)" % ("direct (tracing profiler)",
                                         direct))
    for module, loc in sorted(table.items(), key=lambda kv: kv[1]):
        print("%-28s %6d" % ("converter: " + module, loc))

    benchmark.extra_info["direct_loc"] = direct
    benchmark.extra_info["converter_loc"] = table

    # Paper shape: direct < 20 lines; converters < 200 lines each.
    assert direct < 20, direct
    for module, loc in table.items():
        assert loc < 200, (module, loc)
    # And the direct path is far cheaper than any converter.
    assert direct < min(table.values())
