"""Supplementary bench — ProfStore serving latency, cold vs cached.

The store's serve path is merge-on-read through the analysis engine, so
the second identical query must be a digest-keyed cache hit — paying
index lookup and profile loads but skipping the merge.  This bench
ingests three corpus-tier profiles, measures a cold query against a
repeat, and cross-checks the merged tree against a direct
``aggregate.merge_trees`` over the same inputs.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import aggregate
from repro.analysis.transform import transform
from repro.core.digest import viewtree_digest
from repro.engine import AnalysisEngine
from repro.profilers.corpus import CorpusSpec, generate_bytes, tier
from repro.store import ProfileStore


@pytest.fixture(scope="module")
def tier_blobs(corpus):
    """Three corpus-tier profiles: small, a reseeded small, and medium."""
    spec = tier("small")
    reseeded = CorpusSpec("small-b", functions=spec.functions,
                          samples=spec.samples, max_depth=spec.max_depth,
                          seed=spec.seed + 1)
    return [corpus["small"], generate_bytes(reseeded), corpus["medium"]]


@pytest.fixture
def loaded_store(tmp_path, tier_blobs):
    with ProfileStore(str(tmp_path / "store"), engine=AnalysisEngine(),
                      fsync=False) as store:
        for i, blob in enumerate(tier_blobs):
            store.ingest(blob, service="svc", ptype="cpu",
                         labels={"tier": str(i)})
        store.flush()
        yield store


def test_cold_vs_cached_query(benchmark, loaded_store):
    """A repeated store query is served from the engine's cache."""
    store = loaded_store

    t0 = time.perf_counter()
    cold = store.query("service=svc type=cpu")
    cold_s = time.perf_counter() - t0
    assert cold.count == 3

    hits_before = store.engine.stats()["operations"]["aggregate"]["hits"]
    t0 = time.perf_counter()
    warm = store.query("service=svc type=cpu")
    warm_s = time.perf_counter() - t0
    hits_after = store.engine.stats()["operations"]["aggregate"]["hits"]

    # The acceptance gates: the repeat hit the cache and changed nothing.
    assert hits_after == hits_before + 1
    assert warm.digest() == cold.digest()
    assert warm_s < cold_s

    result = benchmark.pedantic(
        lambda: store.query("service=svc type=cpu"), rounds=3, iterations=1)
    assert result.digest() == cold.digest()
    benchmark.extra_info["coldSeconds"] = round(cold_s, 4)
    benchmark.extra_info["warmSeconds"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / max(warm_s, 1e-9), 1)


def test_merge_on_read_matches_direct_merge(loaded_store):
    """The served tree is byte-identical to aggregate.merge_trees."""
    store = loaded_store
    result = store.query("service=svc")
    profiles = [store.load(entry) for entry in result.entries]
    merged = aggregate.merge_trees(
        [transform(profile, "top_down") for profile in profiles])
    assert viewtree_digest(merged) == result.digest()


def test_ingest_throughput(benchmark, tmp_path, tier_blobs):
    """Ingest cost: parse + lint + WAL append, no flush in the loop."""
    with ProfileStore(str(tmp_path / "bench"), engine=AnalysisEngine(),
                      flush_records=10_000, fsync=False) as store:
        counter = [0]

        def ingest_one():
            counter[0] += 1
            return store.ingest(tier_blobs[0], service="svc",
                                labels={"n": str(counter[0])})

        result = benchmark.pedantic(ingest_one, rounds=3, iterations=1)
        assert result.entry.seq == counter[0]
        benchmark.extra_info["walRecords"] = store.stats()["walRecords"]
