"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's
evaluation; see EXPERIMENTS.md for the index and DESIGN.md for the shape
criteria.  Corpus profiles are generated once per session.
"""

from __future__ import annotations

import os

import pytest

from repro.profilers.corpus import generate_bytes, tier

#: Set EASYVIEW_BENCH_LARGE=0 to skip the ~20 s/viewer large tier.
LARGE_ENABLED = os.environ.get("EASYVIEW_BENCH_LARGE", "1") != "0"


@pytest.fixture(scope="session")
def corpus():
    """name → serialized pprof bytes for the Fig. 5 tiers."""
    names = ["small", "medium"] + (["large"] if LARGE_ENABLED else [])
    return {name: generate_bytes(tier(name)) for name in names}


@pytest.fixture(scope="session")
def small_bytes(corpus):
    return corpus["small"]


@pytest.fixture(scope="session")
def medium_bytes(corpus):
    return corpus["medium"]
