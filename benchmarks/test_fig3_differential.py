"""Figure 3 — differential top-down flame graph: Spark RDD vs SQL APIs.

The paper diffs two Async-Profiler captures of SparkBench — P1 on the RDD
APIs, P2 on the SQL Dataset APIs — and reads the result off the tags: the
executor scaffolding shrinks ([-]), the SQL engine contexts appear ([A]),
the iterator/shuffle pipeline disappears ([D]), and overall the SQL run is
clearly faster thanks to the efficient SQL engine and shuffle bypass.
"""

from __future__ import annotations

import pytest

from repro.analysis.diff import (add_delta_column, diff_profiles, summarize,
                                 TAG_ADDED, TAG_DELETED, TAG_SHRANK)
from repro.profilers.workloads import spark_profile
from repro.viz.flamegraph import FlameGraph
from repro.viz.terminal import render_tree_text


def test_fig3_differential_flamegraph(benchmark):
    """Regenerate the differential view and check its tag structure."""
    rdd = spark_profile("rdd")
    sql = spark_profile("sql")

    tree = benchmark.pedantic(lambda: diff_profiles(rdd, sql),
                              rounds=3, iterations=1)

    tags = summarize(tree)
    print("\nFigure 3 — differential view, Spark RDD (P1) vs SQL (P2)")
    print(render_tree_text(tree, max_depth=12))
    print("tag counts:", tags)

    # Shape: all three expected change classes are present.
    assert tags.get(TAG_ADDED, 0) >= 3      # SQL engine contexts
    assert tags.get(TAG_DELETED, 0) >= 3    # RDD iterator chain
    assert tags.get(TAG_SHRANK, 0) >= 3     # shared scaffolding got cheaper

    # Shape: the SQL variant wins overall, by roughly 2x.
    ratio = rdd.total("cpu") / sql.total("cpu")
    assert 1.5 <= ratio <= 3.0, ratio

    # The specific contexts the paper's figure shows.
    added = {n.frame.name for n in tree.nodes() if n.tag == TAG_ADDED}
    deleted = {n.frame.name for n in tree.nodes() if n.tag == TAG_DELETED}
    assert any("WholeStageCodegen" in name or "UnsafeRow" in name
               for name in added)
    assert any("Iterator" in name or "CartesianRDD" in name
               for name in deleted)

    benchmark.extra_info["tags"] = tags
    benchmark.extra_info["rdd_over_sql"] = round(ratio, 2)


def test_fig3_diff_render(benchmark):
    """Benchmark rendering the differential flame graph to SVG."""
    graph = FlameGraph.differential(spark_profile("rdd"),
                                    spark_profile("sql"))
    svg = benchmark(graph.to_svg)
    assert "Differential" in svg


def test_fig3_delta_columns(benchmark):
    """The quantified difference (delta and ratio columns)."""
    tree = diff_profiles(spark_profile("rdd"), spark_profile("sql"))

    def add_columns():
        local = diff_profiles(spark_profile("rdd"), spark_profile("sql"))
        delta = add_delta_column(local, 0, mode="subtract")
        ratio = add_delta_column(local, 0, mode="ratio")
        return local, delta, ratio

    local, delta, ratio = benchmark.pedantic(add_columns, rounds=2,
                                             iterations=1)
    root_delta = local.root.inclusive[delta]
    assert root_delta < 0   # P2 cheaper than P1 overall
    benchmark.extra_info["total_delta"] = round(root_delta, 1)
