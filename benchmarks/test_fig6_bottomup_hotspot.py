"""Figure 6 + §VII-C2 (first half) — bottom-up flame graph on LULESH.

HPCToolkit's CPU-time profile of LULESH, viewed bottom-up, makes ``brk``
from libc the obvious hotspot: it is the hottest leaf and is reached from
multiple allocation/release call paths rooted in the memory management.
Swapping libc's allocator for TCMalloc yields the paper's ~30% speedup.
"""

from __future__ import annotations

import pytest

from repro.analysis.transform import bottom_up
from repro.profilers.workloads import lulesh_profile
from repro.viz.flamegraph import FlameGraph
from repro.viz.terminal import render_tree_text


@pytest.fixture(scope="module")
def libc_profile():
    return lulesh_profile(scale=8, allocator="libc")


def test_fig6_bottom_up_hotspot(benchmark, libc_profile):
    """Regenerate the bottom-up view and check the brk picture."""
    tree = benchmark.pedantic(lambda: bottom_up(libc_profile),
                              rounds=3, iterations=1)

    print("\nFigure 6 — bottom-up flame graph (hottest leaves first)")
    print(render_tree_text(tree, max_depth=4, max_children=5))

    leaves = sorted(tree.root.children.values(),
                    key=lambda n: -n.inclusive[0])
    hottest = leaves[0]
    # Shape: brk in libc is the hottest leaf…
    assert hottest.frame.name == "brk"
    assert hottest.frame.module == "libc-2.31.so"
    # …reached from multiple reversed call paths (malloc and free)…
    assert {c.frame.name for c in hottest.children.values()} == \
        {"malloc", "free"}
    # …and those paths root in the application's memory management.
    deep = set()
    for node in hottest.walk():
        deep.add(node.frame.name)
    assert "Allocate" in deep and "Release" in deep

    share = hottest.inclusive[0] / tree.total(0)
    benchmark.extra_info["brk_share"] = round(share, 3)
    assert 0.15 <= share <= 0.40   # the allocator dominates but not all


def test_fig6_tcmalloc_speedup(benchmark, libc_profile):
    """The optimization the view motivates: allocator swap ⇒ ~30%."""
    tcmalloc_total = benchmark.pedantic(
        lambda: lulesh_profile(scale=8,
                               allocator="tcmalloc").total("cpu_time"),
        rounds=2, iterations=1)
    libc_total = libc_profile.total("cpu_time")
    speedup = libc_total / tcmalloc_total

    print("\n§VII-C2 — TCMalloc swap: %.2fx speedup (paper: ~1.30x)"
          % speedup)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert 1.2 <= speedup <= 1.45


def test_fig6_render_bottom_up_flame(benchmark, libc_profile):
    """Benchmark the full bottom-up flame-graph render to SVG."""
    graph = FlameGraph.bottom_up(libc_profile)
    svg = benchmark(graph.to_svg)
    assert "brk" in svg
