"""Figure 7 + §VII-C2 (second half) — correlated flame graphs on LULESH.

DrCCTProf's use/reuse profile, shown as three correlated panes
(allocations → uses of the selected allocation → reuses of the selected
use), exposes a reuse pair spanning the volume-force and hourglass-force
loops.  Hoisting both to their least common ancestor
(``CalcVolumeForceForElems``) and fusing the loops yields the paper's ~28%
additional speedup.
"""

from __future__ import annotations

import pytest

from repro.analysis.reuse import fusion_candidates
from repro.profilers.workloads import (lulesh_fused_profile, lulesh_profile,
                                       lulesh_reuse_profile)
from repro.viz.flamegraph import CorrelatedView


@pytest.fixture(scope="module")
def reuse_profile():
    return lulesh_reuse_profile(scale=4)


def test_fig7_correlated_panes(benchmark, reuse_profile):
    """Regenerate the ①/② interaction across the three panes."""
    def interact():
        view = CorrelatedView(reuse_profile)
        allocations = view.allocations()
        uses = view.select_allocation(allocations[0][0])   # click ①
        reuses = view.select_use(uses[0][0])               # click ②
        return view, allocations, uses, reuses

    view, allocations, uses, reuses = benchmark.pedantic(
        interact, rounds=3, iterations=1)

    print("\nFigure 7 — correlated flame graphs")
    print(view.render_text())

    # Shape: the hottest allocation is the element scratch array, its
    # dominant use is in the volume-force loop, and the reuse that follows
    # lives in the hourglass-force loop.
    assert allocations[0][0].frame.name == "dvdx[]"
    assert uses[0][0].frame.name == "IntegrateStressForElems"
    assert reuses[0][0].frame.name == "CalcFBHourglassForceForElems"

    # Shape: volumes decrease along the drill-down.
    assert allocations[0][1] >= uses[0][1] >= reuses[0][1]


def test_fig7_fusion_guidance(benchmark, reuse_profile):
    """The hoisting guidance: LCA of the hottest use/reuse pair."""
    candidates = benchmark.pedantic(
        lambda: fusion_candidates(reuse_profile), rounds=3, iterations=1)
    top = candidates[0]
    print("\nguidance: hoist %s and %s to %s"
          % (top.use.frame.name, top.reuse.frame.name, top.hoist_target()))
    assert "CalcVolumeForceForElems" in top.hoist_target()
    benchmark.extra_info["hoist_target"] = top.hoist_target()


def test_fig7_fusion_speedup(benchmark):
    """The optimization the view motivates: loop fusion ⇒ ~28%."""
    fused_total = benchmark.pedantic(
        lambda: lulesh_fused_profile(scale=4).total("cpu_time"),
        rounds=2, iterations=1)
    before = lulesh_profile(scale=4).total("cpu_time")
    speedup = before / fused_total
    print("\n§VII-C2 — loop fusion: %.2fx speedup (paper: ~1.28x)" % speedup)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert 1.18 <= speedup <= 1.45
