"""Codec fast-path bench — fastwire decode/encode vs the reference codec.

Runs the shared harness in :mod:`repro.bench.codec` over the corpus
tiers, writes ``BENCH_codec.json`` at the repo root, and enforces two
things:

* **Correctness always**: on every tier the fast path must decode to an
  object equal to the reference codec's and re-encode byte-identically
  (the harness raises :class:`repro.bench.codec.CodecMismatch` if not).
* **The decode target when it is measurable**: >= 3x reference decode
  throughput on the large tier, asserted only when the large tier is
  enabled (``EASYVIEW_BENCH_LARGE`` != 0) and the numpy kernels are
  available — the pure-python fallback is correct but not 3x.

CI runs this in quick mode (small + medium) and uploads the report as an
artifact; run locally with the large tier for the headline number.
"""

from __future__ import annotations

import os

from repro.bench.codec import (DECODE_TARGET_SPEEDUP, QUICK_TIERS,
                               run_codec_bench, write_report)
from repro.proto.fastwire import packed_stats

REPORT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_codec.json")


def test_codec_fastpath(corpus):
    large_enabled = "large" in corpus
    tiers = list(QUICK_TIERS) + (["large"] if large_enabled else [])
    report = run_codec_bench(tiers, repeats=3)
    path = write_report(report, os.path.normpath(REPORT_PATH))

    for name in tiers:
        entry = report["tiers"][name]
        assert entry["equality"]["objects_equal"]
        assert entry["equality"]["bytes_identical"]
        assert entry["decode"]["fastpath_s"] > 0

    if large_enabled and packed_stats()["numpyAvailable"]:
        speedup = report["tiers"]["large"]["decode"]["speedup"]
        assert speedup >= DECODE_TARGET_SPEEDUP, (
            "large-tier decode speedup %.2fx below the %.1fx target; "
            "see %s" % (speedup, DECODE_TARGET_SPEEDUP, path))
