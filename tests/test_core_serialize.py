"""Tests for EasyView binary (de)serialization of full profiles."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import ProfileBuilder, dumps, loads
from repro.builder.builder import ProfileBuilder as PB
from repro.core.monitor import PointKind
from repro.core.serialize import dump, load
from repro.errors import FormatError


class TestRoundTrip:
    def test_simple_profile(self, simple_profile):
        restored = loads(dumps(simple_profile))
        assert restored.node_count() == simple_profile.node_count()
        assert restored.total("cpu") == simple_profile.total("cpu")
        assert restored.total("alloc") == simple_profile.total("alloc")
        assert restored.meta.tool == "test"

    def test_metric_descriptors_survive(self, simple_profile):
        restored = loads(dumps(simple_profile))
        assert restored.schema.names() == ["cpu", "alloc"]
        assert restored.schema[0].unit == "nanoseconds"

    def test_frame_attribution_survives(self, simple_profile):
        restored = loads(dumps(simple_profile))
        work = restored.find_by_name("work")[0]
        assert work.frame.file == "app.c"
        assert work.frame.line == 42

    def test_snapshot_points_survive(self):
        builder = ProfileBuilder(tool="t")
        mem = builder.metric("inuse", unit="bytes")
        for seq in (1, 2, 3):
            builder.snapshot(seq, [("main", "m.c", 1)], {mem: 100.0 * seq})
        profile = builder.build()
        restored = loads(dumps(profile))
        assert restored.snapshot_sequences() == [1, 2, 3]
        assert restored.points[0].kind is PointKind.ALLOCATION

    def test_multi_context_points_survive(self):
        builder = ProfileBuilder(tool="t")
        count = builder.metric("accesses")
        builder.pair_point(PointKind.USE_REUSE,
                           [[("main",), ("alloc",)],
                            [("main",), ("use",)],
                            [("main",), ("reuse",)]],
                           {count: 9.0})
        restored = loads(dumps(builder.build()))
        point = restored.points[0]
        assert point.kind is PointKind.USE_REUSE
        names = [ctx.frame.name for ctx in point.contexts]
        assert names == ["alloc", "use", "reuse"]
        assert point.value(0) == 9.0

    def test_file_roundtrip(self, tmp_path, simple_profile):
        path = os.path.join(tmp_path, "p.ezvw")
        dump(simple_profile, path)
        restored = load(path)
        assert restored.total("cpu") == simple_profile.total("cpu")

    def test_garbage_rejected(self):
        with pytest.raises(FormatError):
            loads(b"EZVW" + b"\x01" + b"\x05" + b"\xff\xff\xff\xff\xff")


@st.composite
def random_profiles(draw):
    builder = PB(tool=draw(st.sampled_from(["a", "b"])))
    metric = builder.metric("m")
    n_samples = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_samples):
        depth = draw(st.integers(min_value=1, max_value=5))
        stack = [("f%d" % draw(st.integers(0, 4)), "s.c",
                  draw(st.integers(1, 3)))
                 for _ in range(depth)]
        builder.sample(stack, {metric: float(draw(st.integers(1, 1000)))})
    return builder.build()


class TestPropertyRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(random_profiles())
    def test_structure_and_totals_preserved(self, profile):
        restored = loads(dumps(profile))
        assert restored.node_count() == profile.node_count()
        assert restored.total("m") == pytest.approx(profile.total("m"))
        # Per-context exclusive values match by call path.
        original = {tuple(f.key() for f in node.call_path()):
                    node.exclusive(0) for node in profile.nodes()}
        for node in restored.nodes():
            key = tuple(f.key() for f in node.call_path())
            assert original[key] == pytest.approx(node.exclusive(0))
