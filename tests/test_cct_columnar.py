"""Differential oracle for the columnar CCT core.

The struct-of-arrays representation (:mod:`repro.core.cct_columnar`) and
the per-node object tree must be observably identical: same materialized
trees (child order included), same digests, same view trees, same
aggregate and diff results.  These tests hold the two representations
against each other on converter fixtures, synthetic workloads, randomized
trees, and a deliberately deep 10k-frame chain — plus regression tests
for the two correctness fixes that landed with the columnar core (stale
inclusive caches, nondeterministic walk order).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.aggregate import aggregate_profiles
from repro.analysis.diff import diff_profiles
from repro.analysis.metrics import compute_inclusive, inclusive_value
from repro.analysis.traversal import bfs, postorder, preorder
from repro.analysis.transform import bottom_up, top_down
from repro.analysis.viewtree import SourceList
from repro.builder import ProfileBuilder
from repro.converters import pprof as pprof_converter
from repro.core.cct import CCT
from repro.core.cct_columnar import ColumnarBuilder, from_cct
from repro.core.digest import profile_digest, viewtree_digest
from repro.core.frame import intern_frame
from repro.core import serialize
from repro.profilers.corpus import generate_bytes, tier
from repro.profilers.workloads import (deep_path_profile, lulesh_profile,
                                       spark_profile)

np = pytest.importorskip("numpy")


def assert_trees_identical(a, b):
    """Structural equality including child insertion order."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        assert x.frame == y.frame
        assert x.metrics == y.metrics
        assert list(x.children) == list(y.children)
        stack.extend(zip(x.children.values(), y.children.values()))


def assert_views_identical(a, b, check_sources=True):
    stack = [(a.root, b.root)]
    while stack:
        x, y = stack.pop()
        assert x.frame == y.frame
        assert x.exclusive == y.exclusive
        assert x.inclusive == y.inclusive
        assert x.tag == y.tag
        assert x.baseline == y.baseline
        assert x.histogram == y.histogram
        assert list(x.children) == list(y.children)
        if check_sources:
            assert len(x.sources) == len(y.sources)
            assert (sorted(s.frame.key() for s in x.sources)
                    == sorted(s.frame.key() for s in y.sources))
        stack.extend(zip(x.children.values(), y.children.values()))


class TestConverterOracle:
    """parse() (columnar) vs parse_object() on the pprof corpus."""

    @pytest.fixture(scope="class")
    def pair(self):
        raw = generate_bytes(tier("small"), compress=False)
        return pprof_converter.parse(raw), pprof_converter.parse_object(raw)

    def test_columnar_attached_and_lazy(self, pair):
        fast, _ = pair
        assert fast.columnar() is not None
        assert fast._cct is None  # nothing materialized the facade yet

    def test_digests_identical_without_materialization(self, pair):
        fast, ref = pair
        assert profile_digest(fast) == profile_digest(ref)
        assert fast._cct is None  # digest ran off the arrays

    def test_summary_and_totals_off_arrays(self, pair):
        fast, ref = pair
        assert fast.node_count() == ref.node_count()
        for metric in fast.schema:
            assert fast.total(metric.name) == pytest.approx(
                ref.total(metric.name))
        assert fast._cct is None

    def test_materialized_trees_identical(self, pair):
        fast, ref = pair
        assert_trees_identical(fast.root, ref.root)

    def test_view_trees_identical(self, pair):
        fast, ref = pair
        assert_views_identical(top_down(fast), top_down(ref))
        assert_views_identical(bottom_up(fast), bottom_up(ref))

    def test_diff_and_aggregate_identical(self, pair):
        fast, ref = pair
        other = pprof_converter.parse_object(
            generate_bytes(tier("small"), compress=False))
        assert (viewtree_digest(diff_profiles(fast, other))
                == viewtree_digest(diff_profiles(ref, other)))
        assert (viewtree_digest(aggregate_profiles([fast, other]))
                == viewtree_digest(aggregate_profiles([ref, other])))


class TestRoundTrips:
    """from_cct -> to_cct -> from_cct is the identity."""

    @pytest.mark.parametrize("make", [
        lambda: lulesh_profile(scale=3),
        lambda: spark_profile(scale=3),
    ])
    def test_workload_round_trip(self, make):
        profile = make()
        col = from_cct(profile.cct, len(profile.schema))
        rebuilt = col.to_cct()
        assert_trees_identical(profile.root, rebuilt.root)
        again = from_cct(rebuilt, len(profile.schema))
        assert np.array_equal(col.parent, again.parent)
        assert np.array_equal(col.frame_id, again.frame_id)
        assert np.array_equal(col.depth, again.depth)
        assert np.array_equal(col.values, again.values)
        assert np.array_equal(col.present, again.present)

    def test_inclusive_matrix_matches_object_pass(self):
        profile = lulesh_profile(scale=3)
        compute_inclusive(profile)
        col = from_cct(profile.cct, len(profile.schema))
        inc = col.inclusive()
        # from_cct assigns ids in insertion-order pre-order; replay that
        # walk so rows line up positionally.
        nodes = []
        stack = [profile.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(reversed(list(node.children.values())))
        for i, node in enumerate(nodes):
            for index in range(len(profile.schema)):
                assert inc[i, index] == pytest.approx(
                    node.inclusive.get(index, 0.0))

    def test_traversal_orders_match_object_walks(self):
        profile = spark_profile(scale=3)
        col = from_cct(profile.cct, len(profile.schema))
        nodes = list(profile.nodes())
        key_of = lambda n: n.frame.key()
        pre_obj = [key_of(n) for n in preorder(profile.root)]
        post_obj = [key_of(n) for n in postorder(profile.root)]
        bfs_obj = [key_of(n) for n in bfs(profile.root)]
        frames = col.frames
        pre_col = [frames[col.frame_id[i]].key()
                   for i in col.preorder_ids().tolist()]
        post_col = [frames[col.frame_id[i]].key()
                    for i in col.postorder_ids().tolist()]
        bfs_col = [frames[col.frame_id[i]].key()
                   for i in col.bfs_ids().tolist()]
        assert pre_col == pre_obj
        assert post_col == post_obj
        assert bfs_col == bfs_obj


@st.composite
def profiles(draw):
    names = st.sampled_from(["a", "b", "c", "d", "e"])
    paths = draw(st.lists(st.lists(names, min_size=1, max_size=5),
                          min_size=1, max_size=12))
    builder = ProfileBuilder(tool="hyp")
    cpu = builder.metric("cpu")
    ops = builder.metric("ops")
    for i, path in enumerate(paths):
        values = {cpu: float(i + 1)}
        if i % 3 == 0:
            values[ops] = 0.0  # explicit zero: presence must survive
        builder.sample([(name, "h.c", j + 1) for j, name in enumerate(path)],
                       values)
    return builder.build()


class TestHypothesisRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(profiles())
    def test_columnar_facade_columnar(self, profile):
        col = from_cct(profile.cct, len(profile.schema))
        rebuilt = col.to_cct()
        assert_trees_identical(profile.root, rebuilt.root)
        again = from_cct(rebuilt, len(profile.schema))
        assert np.array_equal(col.parent, again.parent)
        assert np.array_equal(col.values, again.values)
        assert np.array_equal(col.present, again.present)

    @settings(max_examples=60, deadline=None)
    @given(profiles())
    def test_digest_agrees_across_representations(self, profile):
        object_digest = profile_digest(profile)
        clone = ProfileBuilder(tool="hyp").build()
        clone.schema = profile.schema
        clone.attach_columnar(from_cct(profile.cct, len(profile.schema)))
        assert profile_digest(clone) == object_digest


class TestStaleInclusiveCacheRegression:
    """Mutation must invalidate cached inclusive values automatically."""

    def test_requery_after_new_sample(self):
        builder = ProfileBuilder(tool="t")
        cpu = builder.metric("cpu")
        profile = builder.build()
        profile.add_sample([intern_frame("main"), intern_frame("work")],
                           {cpu: 10.0})
        assert inclusive_value(profile, profile.root, "cpu") == 10.0
        # Second sample lands after the cache was filled; the version
        # stamp must force a recompute on the next query.
        profile.add_sample([intern_frame("main"), intern_frame("other")],
                           {cpu: 5.0})
        assert inclusive_value(profile, profile.root, "cpu") == 15.0

    def test_direct_node_mutation_invalidates(self):
        builder = ProfileBuilder(tool="t")
        cpu = builder.metric("cpu")
        profile = builder.build()
        leaf = profile.add_sample([intern_frame("main")], {cpu: 4.0})
        compute_inclusive(profile)
        assert profile.root.inclusive[cpu] == 4.0
        leaf.add_value(cpu, 6.0)
        compute_inclusive(profile)
        assert profile.root.inclusive[cpu] == 10.0

    def test_columnar_snapshot_invalidated_by_mutation(self):
        profile = lulesh_profile(scale=2)
        col = profile.columnar(build=True)
        assert profile.columnar() is col
        profile.root.add_value(0, 1.0)
        assert profile.columnar() is None  # stale snapshot must not serve


class TestDeterministicWalkRegression:
    """Pre-order sibling order must be frame-sorted, not reversed-insertion."""

    def golden_tree(self):
        tree = CCT()
        # Insert children deliberately out of key order.
        for name in ("zeta", "alpha", "mid"):
            tree.add_path([intern_frame("main", "t.c", 1),
                           intern_frame(name, "t.c", 2)])
        return tree

    def test_walk_golden_order(self):
        tree = self.golden_tree()
        assert [n.frame.name for n in tree.root.walk()] == [
            "<root>", "main", "alpha", "mid", "zeta"]

    def test_preorder_golden_order(self):
        tree = self.golden_tree()
        assert [n.frame.name for n in preorder(tree.root)] == [
            "<root>", "main", "alpha", "mid", "zeta"]

    def test_insertion_order_does_not_change_walk(self):
        one = CCT()
        two = CCT()
        for name in ("c", "a", "b"):
            one.add_path([intern_frame(name, "t.c", 1)])
        for name in ("b", "c", "a"):
            two.add_path([intern_frame(name, "t.c", 1)])
        assert ([n.frame.name for n in one.root.walk()]
                == [n.frame.name for n in two.root.walk()])


class TestDeepPath:
    """A 10k-frame chain must survive every consumer."""

    @pytest.fixture(scope="class")
    def deep(self):
        return deep_path_profile(depth=10000)

    def test_shape(self, deep):
        assert deep.cct.max_depth() == 10000

    def test_traversals(self, deep):
        n = deep.node_count()
        assert sum(1 for _ in preorder(deep.root)) == n
        assert sum(1 for _ in postorder(deep.root)) == n
        assert sum(1 for _ in bfs(deep.root)) == n

    def test_views_diff_aggregate_flame(self, deep):
        other = deep_path_profile(depth=10000, seed=99)
        assert top_down(deep).node_count() == deep.node_count()
        bottom_up(deep)
        diff_profiles(deep, other)
        aggregate_profiles([deep, other])
        from repro.viz.layout import layout_profile
        assert len(layout_profile(deep).rects) == deep.node_count()

    def test_columnar_kernels_and_digest(self, deep):
        col = from_cct(deep.cct, len(deep.schema))
        assert int(col.depth.max()) == 10000
        assert col.preorder_ids().shape[0] == col.n_nodes
        assert col.postorder_ids().shape[0] == col.n_nodes
        rebuilt = col.to_cct()
        assert_trees_identical(deep.root, rebuilt.root)

    def test_serialize_round_trip(self, deep):
        data = serialize.dumps(deep)
        again = serialize.loads(data)
        # loads() takes the columnar path; digests must agree with the
        # object-built original without materializing the facade.
        assert again.columnar() is not None
        assert profile_digest(again) == profile_digest(deep)


class TestSourceList:
    def test_list_protocol(self):
        nodes = [object(), object()]
        sources = SourceList(nodes)
        assert list(sources) == nodes
        assert len(sources) == 2 and sources
        sources.append(nodes[0])
        assert sources[2] is nodes[0]
        assert sources == nodes + [nodes[0]]

    def test_lazy_resolution_counts_without_forcing(self):
        calls = []

        def resolver(payload):
            calls.append(payload)
            return ["n%d" % payload] * 2

        sources = SourceList.lazy(resolver, 7, 2)
        assert len(sources) == 2 and sources and not calls
        assert list(sources) == ["n7", "n7"]
        assert calls == [7]
        assert list(sources) == ["n7", "n7"]
        assert calls == [7]  # resolved once, then cached

    def test_copy_is_independent(self):
        sources = SourceList(["a"])
        duplicate = sources.copy()
        duplicate.append("b")
        assert list(sources) == ["a"]
        assert list(duplicate) == ["a", "b"]

    def test_extend_copies_list_parts(self):
        left = SourceList(["a"])
        right = SourceList(["b"])
        left.extend(right)
        right.append("c")
        assert list(left) == ["a", "b"]
