"""Tests for profile anonymization and the multi-thread sampler."""

import threading
import time

import pytest

from repro.analysis.anonymize import anonymize, mapping_for
from repro.analysis.diff import diff_profiles, summarize
from repro.analysis.transform import top_down
from repro.core.serialize import dumps
from repro.profilers.sampling import SamplingProfiler


class TestAnonymize:
    def test_names_scrubbed_values_kept(self, simple_profile):
        anon = anonymize(simple_profile, key="secret")
        assert anon.total("cpu") == simple_profile.total("cpu")
        assert anon.node_count() == simple_profile.node_count()
        names = {n.frame.name for n in anon.nodes()}
        assert "work" not in names and "main" not in names
        assert any(name.startswith("fn_") for name in names)

    def test_no_plaintext_leaks_into_serialized_bytes(self,
                                                      simple_profile):
        data = dumps(anonymize(simple_profile, key="secret"))
        for secret_text in (b"main", b"work", b"inner", b"app.c"):
            assert secret_text not in data

    def test_stable_pseudonyms_keep_profiles_diffable(self, spark_pair):
        rdd, sql = spark_pair
        anon_rdd = anonymize(rdd, key="k1")
        anon_sql = anonymize(sql, key="k1")
        plain = summarize(diff_profiles(rdd, sql))
        masked = summarize(diff_profiles(anon_rdd, anon_sql))
        assert plain == masked   # identical tag structure

    def test_different_keys_differ(self, simple_profile):
        a = {n.frame.name for n in anonymize(simple_profile, "k1").nodes()}
        b = {n.frame.name for n in anonymize(simple_profile, "k2").nodes()}
        assert a != b

    def test_keep_modules_whitelist(self, lulesh):
        anon = anonymize(lulesh, key="k", keep_modules=["libc-2.31.so"])
        names = {n.frame.name for n in anon.nodes()}
        assert "brk" in names                    # libc stays readable
        assert "CalcVolumeForceForElems" not in names

    def test_lines_dropped_by_default(self, simple_profile):
        anon = anonymize(simple_profile, key="k")
        assert all(n.frame.line == 0 for n in anon.nodes())
        kept = anonymize(simple_profile, key="k", keep_lines=True)
        assert any(n.frame.line > 0 for n in kept.nodes())

    def test_points_survive(self, lulesh_reuse):
        from repro.analysis.reuse import allocations_with_reuse
        anon = anonymize(lulesh_reuse, key="k")
        assert len(anon.points) == len(lulesh_reuse.points)
        assert allocations_with_reuse(anon)

    def test_mapping_translates_back(self, simple_profile):
        anon = anonymize(simple_profile, key="k")
        mapping = mapping_for(simple_profile, key="k")
        hot = [n for n in anon.nodes() if n.frame.name.startswith("fn_")]
        originals = {mapping[n.frame.name] for n in hot}
        assert {"main", "work", "inner", "idle"} == originals

    def test_attributes_removed(self):
        from repro import ProfileBuilder
        builder = ProfileBuilder(tool="t", time_nanos=12345)
        builder.metric("m")
        builder.attribute("hostname", "prod-db-7")
        builder.sample(["f"], {0: 1.0})
        anon = anonymize(builder.build(), key="k")
        assert anon.meta.attributes == {}
        assert anon.meta.time_nanos == 0


class TestAllThreadSampler:
    def test_multi_thread_capture(self):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                sum(i * i for i in range(200))

        workers = [threading.Thread(target=spin, name="spinner-%d" % i)
                   for i in range(2)]
        for worker in workers:
            worker.start()
        profiler = SamplingProfiler(interval_seconds=0.002,
                                    all_threads=True)
        profiler.start()
        time.sleep(0.15)
        stop.set()
        profile = profiler.stop()
        for worker in workers:
            worker.join()

        if profiler.samples_taken >= 5:
            from repro.analysis.threads import is_threaded, thread_totals
            assert is_threaded(profile)
            names = set(thread_totals(profile, "samples"))
            assert any(name.startswith("spinner") for name in names)
