"""The load generator: analyst scripts, wire framing, and aggregation."""

from __future__ import annotations

import json

import pytest

from repro.serve import analyst_script, sequential_script, wire_lines
from repro.serve.loadgen import (LoadReport, STEP_REQUESTS, canonical_line,
                                 digest_lines)


class TestAnalystScript:
    def test_derived_from_study_plan(self):
        script = analyst_script("task1")
        assert script, "task1 must produce tool-visible traffic"
        # Task I is navigate/inspect/open-source work in the cost model.
        steps = {group["step"] for group in script}
        assert "navigate" in steps
        assert "inspect_block" in steps

    def test_inspect_block_is_a_burst(self):
        script = analyst_script("task1")
        bursts = [g for g in script if g["step"] == "inspect_block"]
        assert bursts and all(g["burst"] for g in bursts)

    def test_max_steps_bounds_the_script(self):
        assert len(analyst_script("task1", max_steps=5)) == 5

    def test_max_repeat_keeps_variety(self):
        script = analyst_script("task2", max_steps=12, max_repeat=2)
        per_step = {}
        for group in script:
            per_step[group["step"]] = per_step.get(group["step"], 0) + 1
        assert all(count <= 2 for count in per_step.values())
        assert len(per_step) >= 3

    def test_human_only_steps_emit_no_traffic(self):
        for steps in STEP_REQUESTS.values():
            assert steps["requests"]

    def test_sequential_script_flattens_bursts(self):
        seq = sequential_script(analyst_script("task1"))
        assert all(not group["burst"] for group in seq)


class TestWireLines:
    def test_ids_are_sequential_with_shutdown_last(self):
        script = analyst_script("task1", max_steps=4)
        lines = wire_lines(script, profile_id=7, profile_path="/p.ezvw")
        messages = [json.loads(line) for line in lines]
        assert messages[0]["method"] == "view/open"
        assert messages[0]["id"] == 1
        assert messages[-1]["method"] == "shutdown"
        assert messages[-1]["id"] == 999999
        body = messages[1:-1]
        assert [m["id"] for m in body] == list(range(2, len(body) + 2))

    def test_profile_placeholder_is_substituted(self):
        lines = wire_lines(analyst_script("task1", max_steps=4),
                           profile_id=42, profile_path="/p.ezvw")
        for message in (json.loads(line) for line in lines[1:-1]):
            assert message["params"].get("profileId") == 42


class TestCanonicalization:
    def test_volatile_keys_are_masked(self):
        a = canonical_line({"id": 1, "result": {"x": 1,
                                                "responseSeconds": 0.5}})
        b = canonical_line({"id": 1, "result": {"responseSeconds": 9.9,
                                                "x": 1}})
        assert a == b

    def test_digest_is_order_independent(self):
        lines = ['{"id": 1}', '{"id": 2}', '{"id": 3}']
        assert digest_lines(lines) == digest_lines(list(reversed(lines)))

    def test_digest_distinguishes_content(self):
        assert digest_lines(['{"id": 1}']) != digest_lines(['{"id": 2}'])


class TestLoadReport:
    def test_percentiles_and_throughput(self):
        report = LoadReport(sessions=2, wall_seconds=2.0)
        report.latencies = [i / 1000.0 for i in range(1, 101)]
        report.completed = 100
        assert report.throughput_rps == pytest.approx(50.0)
        assert report.percentile(50) == pytest.approx(0.050, abs=0.002)
        assert report.percentile(99) == pytest.approx(0.099, abs=0.002)

    def test_empty_report_is_safe(self):
        report = LoadReport()
        assert report.throughput_rps == 0.0
        assert report.percentile(99) == 0.0
        payload = report.to_dict()
        assert payload["latencyMs"]["p99"] == 0.0
