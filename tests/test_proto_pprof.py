"""Tests for the hand-written pprof profile.proto implementation."""

import gzip

import pytest
from hypothesis import given, settings, strategies as st

from repro.proto import pprof_pb, wire


def build_reference_profile() -> pprof_pb.Profile:
    profile = pprof_pb.Profile()
    profile.string_table = ["", "cpu", "nanoseconds", "main", "work",
                            "app.go", "/usr/bin/app", "samples", "count"]
    profile.sample_type = [pprof_pb.ValueType(type=1, unit=2),
                           pprof_pb.ValueType(type=7, unit=8)]
    profile.mapping = [pprof_pb.Mapping(id=1, memory_start=0x1000,
                                        memory_limit=0x9000, filename=6,
                                        has_functions=True)]
    profile.function = [
        pprof_pb.Function(id=1, name=3, system_name=3, filename=5,
                          start_line=10),
        pprof_pb.Function(id=2, name=4, system_name=4, filename=5,
                          start_line=40),
    ]
    profile.location = [
        pprof_pb.Location(id=1, mapping_id=1, address=0x1234,
                          line=[pprof_pb.Line(function_id=1, line=12)]),
        pprof_pb.Location(id=2, mapping_id=1, address=0x2234,
                          line=[pprof_pb.Line(function_id=2, line=44)]),
    ]
    profile.sample = [
        pprof_pb.Sample(location_id=[2, 1], value=[1200, 3]),
        pprof_pb.Sample(location_id=[1], value=[500, 1],
                        label=[pprof_pb.Label(key=1, num=9)]),
    ]
    profile.period_type = pprof_pb.ValueType(type=1, unit=2)
    profile.period = 10_000_000
    profile.time_nanos = 1_700_000_000
    profile.duration_nanos = 2_000_000_000
    return profile


class TestRoundTrip:
    def test_full_profile_roundtrip(self):
        original = build_reference_profile()
        parsed = pprof_pb.Profile.parse(original.serialize())
        assert parsed.string_table == original.string_table
        assert len(parsed.sample) == 2
        assert parsed.sample[0].location_id == [2, 1]
        assert parsed.sample[0].value == [1200, 3]
        assert parsed.sample[1].label[0].num == 9
        assert parsed.mapping[0].has_functions is True
        assert parsed.location[1].line[0].line == 44
        assert parsed.period == 10_000_000
        assert parsed.time_nanos == 1_700_000_000

    def test_gzip_framing(self):
        original = build_reference_profile()
        compressed = pprof_pb.dumps(original, compress=True)
        assert compressed[:2] == pprof_pb.GZIP_MAGIC
        parsed = pprof_pb.loads(compressed)
        assert parsed.string_table == original.string_table

    def test_uncompressed_accepted(self):
        original = build_reference_profile()
        raw = pprof_pb.dumps(original, compress=False)
        assert raw[:2] != pprof_pb.GZIP_MAGIC
        assert pprof_pb.loads(raw).period == original.period

    def test_double_roundtrip_is_stable(self):
        original = build_reference_profile()
        once = pprof_pb.Profile.parse(original.serialize())
        twice = pprof_pb.Profile.parse(once.serialize())
        assert once.serialize() == twice.serialize()


class TestWireCompatibility:
    def test_unpacked_repeated_ints_accepted(self):
        # proto2 emitters write repeated ints unpacked; both must parse.
        writer = wire.Writer()
        writer.varint(1, 5)   # location_id, unpacked
        writer.varint(1, 6)
        writer.varint(2, 100)  # value, unpacked
        sample = pprof_pb.Sample.parse(writer.getvalue())
        assert sample.location_id == [5, 6]
        assert sample.value == [100]

    def test_packed_repeated_ints_roundtrip(self):
        sample = pprof_pb.Sample(location_id=[1, 2, 3], value=[7, -8])
        parsed = pprof_pb.Sample.parse(sample.serialize())
        assert parsed.location_id == [1, 2, 3]
        assert parsed.value == [7, -8]

    def test_unknown_fields_skipped(self):
        base = pprof_pb.ValueType(type=3, unit=4).serialize()
        extra = wire.Writer().string(99, "future").getvalue()
        parsed = pprof_pb.ValueType.parse(base + extra)
        assert (parsed.type, parsed.unit) == (3, 4)

    def test_empty_string_table_defaults(self):
        parsed = pprof_pb.Profile.parse(b"")
        assert parsed.string_table == [""]

    def test_string_helper_tolerates_bad_index(self):
        profile = build_reference_profile()
        assert profile.string(10_000) == ""
        assert profile.string(-1) == ""

    def test_empty_strings_keep_indices(self):
        profile = pprof_pb.Profile()
        profile.string_table = ["", "a", "", "b"]
        parsed = pprof_pb.Profile.parse(profile.serialize())
        assert parsed.string_table == ["", "a", "", "b"]


@st.composite
def profiles(draw):
    n_functions = draw(st.integers(min_value=1, max_value=5))
    table = [""]
    profile = pprof_pb.Profile(string_table=table)
    for i in range(n_functions):
        table.append("fn%d" % i)
        profile.function.append(pprof_pb.Function(id=i + 1,
                                                  name=len(table) - 1))
        profile.location.append(pprof_pb.Location(
            id=i + 1, address=draw(st.integers(0, 2 ** 48)),
            line=[pprof_pb.Line(function_id=i + 1,
                                line=draw(st.integers(0, 10000)))]))
    table.append("metric")
    profile.sample_type.append(pprof_pb.ValueType(type=len(table) - 1))
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        stack = draw(st.lists(st.integers(1, n_functions), min_size=1,
                              max_size=6))
        profile.sample.append(pprof_pb.Sample(
            location_id=stack,
            value=[draw(st.integers(-(1 << 40), 1 << 40))]))
    return profile


class TestPropertyRoundTrip:
    @settings(max_examples=40)
    @given(profiles())
    def test_generated_profiles_roundtrip(self, profile):
        parsed = pprof_pb.loads(pprof_pb.dumps(profile))
        assert parsed.string_table == profile.string_table
        assert len(parsed.sample) == len(profile.sample)
        for a, b in zip(parsed.sample, profile.sample):
            assert a.location_id == b.location_id
            assert a.value == b.value
