"""Tests for SVG/terminal/HTML renderers, colors, and histograms."""

import pytest

from repro.analysis.diff import diff_profiles
from repro.analysis.transform import top_down
from repro.viz.color import ansi_index, css, diff_color, frame_color
from repro.viz.flamegraph import FlameGraph
from repro.viz.histogram import (histogram_svg, histogram_text, sparkline,
                                 trend_label)
from repro.viz.html import HtmlReport
from repro.viz.layout import layout
from repro.viz.svg import render_diff_svg, render_svg
from repro.viz.terminal import (render_flame_text, render_summary,
                                render_tree_text)


class TestColors:
    def test_frame_color_deterministic(self, simple_profile):
        tree = top_down(simple_profile)
        work = tree.find_by_name("work")[0]
        assert frame_color(work) == frame_color(work)

    def test_mapped_frames_more_saturated(self):
        from repro.analysis.viewtree import ViewNode
        from repro.core.frame import intern_frame
        mapped = ViewNode(intern_frame("f", "a.c", 3))
        unmapped = ViewNode(intern_frame("f"))
        r1, g1, b1 = frame_color(mapped)
        r2, g2, b2 = frame_color(unmapped)
        # Unmapped frames render washed out (lighter).
        assert (r2 + g2 + b2) > (r1 + g1 + b1)

    def test_diff_color_directions(self, simple_profile):
        from repro.analysis.viewtree import ViewNode
        from repro.core.frame import intern_frame
        grew = ViewNode(intern_frame("g"))
        grew.baseline[0] = 10.0
        grew.inclusive[0] = 30.0
        r, g, b = diff_color(grew)
        assert r > b  # red-ish
        shrank = ViewNode(intern_frame("s"))
        shrank.baseline[0] = 30.0
        shrank.inclusive[0] = 10.0
        r, g, b = diff_color(shrank)
        assert b > r  # blue-ish
        added = ViewNode(intern_frame("a"))
        added.tag = "A"
        assert diff_color(added) == (214, 39, 40)

    def test_css_and_ansi(self):
        assert css((1, 2, 3)) == "rgb(1,2,3)"
        assert 16 <= ansi_index((255, 0, 0)) <= 231


class TestSvg:
    def test_svg_structure(self, simple_profile):
        flame = layout(top_down(simple_profile))
        svg = render_svg(flame, title="test graph")
        assert svg.startswith("<svg")
        assert svg.count("<rect") >= flame.laid_out_nodes
        assert "test graph" in svg
        assert "main" in svg

    def test_svg_escapes_markup(self):
        from repro import ProfileBuilder
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        builder.sample([("operator<<", "a.cc", 1)], {cpu: 5})
        flame = layout(top_down(builder.build()))
        svg = render_svg(flame)
        assert "operator<<" not in svg
        assert "operator&lt;&lt;" in svg

    def test_svg_tooltips_have_percentages(self, simple_profile):
        svg = render_svg(layout(top_down(simple_profile)))
        assert "100.0%" in svg

    def test_diff_svg(self, simple_profile):
        tree = diff_profiles(simple_profile, simple_profile)
        svg = render_diff_svg(layout(tree))
        assert "Differential" in svg

    def test_differential_metric_index_agrees_with_tags(self):
        # Regression: ``metric`` was resolved twice — once inside
        # diff_profiles (against the baseline schema) and once against the
        # diff tree's union schema — so a metric the treatment introduced
        # raised SchemaError.  A single union-schema resolution must leave
        # metric_index and the node tags in agreement.
        from repro import ProfileBuilder

        def prof(metrics, alloc):
            builder = ProfileBuilder()
            idx = {m: builder.metric(m) for m in metrics}
            values = {idx["cpu"]: 10.0}
            if "alloc" in idx:
                values[idx["alloc"]] = alloc
            builder.sample([("main", "s.c", 1), ("work", "s.c", 2)], values)
            return builder.build()

        base = prof(["cpu"], 0.0)
        treat = prof(["alloc", "cpu"], 64.0)
        graph = FlameGraph.differential(base, treat, metric="alloc")
        assert graph.metric_index == graph.tree.schema.index_of("alloc")
        work = graph.tree.find_by_name("work")[0]
        assert work.tag == "+"
        assert work.delta(graph.metric_index) == 64.0

    def test_flamegraph_search_highlight(self, simple_profile):
        graph = FlameGraph.top_down(simple_profile)
        graph.search("work")
        svg = graph.to_svg()
        assert "stroke=" in svg
        graph.clear_search()
        assert "stroke=" not in graph.to_svg()


class TestTerminal:
    def test_flame_text_rows(self, simple_profile):
        flame = layout(top_down(simple_profile))
        text = render_flame_text(flame, width=60)
        lines = text.splitlines()
        assert len(lines) == flame.max_depth + 1
        assert "main" in text

    def test_flame_text_color_codes(self, simple_profile):
        flame = layout(top_down(simple_profile))
        text = render_flame_text(flame, width=60, color=True)
        assert "\x1b[48;5;" in text and "\x1b[0m" in text

    def test_tree_text_percentages(self, simple_profile):
        text = render_tree_text(top_down(simple_profile))
        assert "(100.0%)" in text
        assert "work" in text and "(90.0%)" in text

    def test_tree_text_shows_diff_tags(self, spark_pair):
        rdd, sql = spark_pair
        text = render_tree_text(diff_profiles(rdd, sql))
        assert "[A]" in text and "[D]" in text

    def test_summary_ranks_exclusive(self, simple_profile):
        text = render_summary(top_down(simple_profile))
        lines = [l for l in text.splitlines()[1:] if l.strip()]
        assert "inner" in lines[0]   # hottest exclusive context first

    def test_empty_layout_text(self):
        from repro.analysis.viewtree import ViewTree
        from repro.core.metric import MetricSchema
        assert "empty" in render_flame_text(layout(ViewTree(MetricSchema())))


class TestHistogram:
    def test_sparkline_levels(self):
        spark = sparkline([0.0, 50.0, 100.0])
        assert len(spark) == 3
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_histogram_text_bars(self):
        text = histogram_text([1.0, 2.0, 4.0], width=8)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[2].count("█") > lines[0].count("█")

    def test_histogram_rebinning(self):
        text = histogram_text(list(range(100)), bins=10)
        assert len(text.splitlines()) == 10

    def test_histogram_svg(self):
        svg = histogram_svg([1.0, 5.0, 2.0], title="live bytes")
        assert svg.count("<rect") >= 4
        assert "live bytes" in svg

    def test_trend_labels(self):
        assert "no sign of reclamation" in trend_label([100.0] * 10)
        assert trend_label([100, 80, 40, 10, 2]).startswith("reclaiming")


class TestHtmlReport:
    def test_report_sections(self, simple_profile):
        graph = FlameGraph.top_down(simple_profile)
        report = (HtmlReport("my report")
                  .add_heading("flame")
                  .add_paragraph("commentary <script>")
                  .add_flamegraph(graph)
                  .add_histogram([1.0, 2.0], title="h")
                  .add_preformatted(graph.to_outline()))
        html = report.render()
        assert html.startswith("<!DOCTYPE html>")
        assert "my report" in html
        assert "&lt;script&gt;" in html       # escaped
        assert "<svg" in html

    def test_report_table(self, simple_profile):
        from repro.viz.treetable import TreeTable
        table = TreeTable(top_down(simple_profile))
        table.expand_all()
        html = HtmlReport("t").add_table(table).render()
        assert "<table>" in html and "work" in html

    def test_save(self, tmp_path, simple_profile):
        path = str(tmp_path / "report.html")
        HtmlReport("x").save(path)
        assert open(path).read().startswith("<!DOCTYPE")


class TestDotExport:
    def test_dot_structure(self, simple_profile):
        from repro.analysis.transform import top_down
        from repro.viz.dot import to_dot
        dot = to_dot(top_down(simple_profile), title="test graph")
        assert dot.startswith("digraph easyview {")
        assert dot.rstrip().endswith("}")
        assert "test graph" in dot
        # Nodes for every function, edges along the call structure.
        for name in ("main", "work", "inner", "idle"):
            assert name in dot
        assert "->" in dot

    def test_dot_escaping(self):
        from repro import ProfileBuilder
        from repro.analysis.transform import top_down
        from repro.viz.dot import to_dot
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        builder.sample([('say "hi"', "a.c", 1)], {cpu: 5})
        dot = to_dot(top_down(builder.build()))
        assert '\\"hi\\"' in dot

    def test_dot_max_nodes(self, lulesh):
        from repro.analysis.transform import top_down
        from repro.viz.dot import to_dot
        small = to_dot(top_down(lulesh), max_nodes=3)
        large = to_dot(top_down(lulesh), max_nodes=100)
        assert small.count("[label=") < large.count("[label=")

    def test_dot_merges_call_paths(self, lulesh):
        from repro.analysis.transform import top_down
        from repro.viz.dot import to_dot
        dot = to_dot(top_down(lulesh))
        # brk appears in many call paths but becomes one graph node.
        node_lines = [l for l in dot.splitlines()
                      if "brk" in l and "label=" in l and "->" not in l]
        assert len(node_lines) == 1


class TestWebView:
    def test_self_contained_page(self, simple_profile):
        from repro.viz.webview import render_webview
        page = render_webview(simple_profile, title="my <viewer>")
        assert page.startswith("<!DOCTYPE html>")
        assert "my &lt;viewer&gt;" in page
        # Zero external resources: no http(s) URLs outside comments.
        assert "http://" not in page and "https://" not in page
        assert "<script>" in page and "</script>" in page

    def test_embedded_data_parses(self, simple_profile):
        import json
        import re
        from repro.viz.webview import render_webview
        page = render_webview(simple_profile)
        match = re.search(r"var DATA = (\{.*?\});\n", page, re.DOTALL)
        assert match
        data = json.loads(match.group(1))
        assert set(data["shapes"]) == {"top_down", "bottom_up", "flat"}
        assert data["metrics"] == ["cpu", "alloc"]
        top = data["shapes"]["top_down"][0]
        assert top["value"] == 1000.0
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        walk(top)
        assert {"main", "work", "inner", "idle"} <= names

    def test_min_fraction_prunes_embedded_tree(self, lulesh):
        import re
        from repro.viz.webview import render_webview
        fine = render_webview(lulesh, min_fraction=0.0)
        coarse = render_webview(lulesh, min_fraction=0.05)
        assert len(coarse) < len(fine)

    def test_metric_subset(self, simple_profile):
        from repro.viz.webview import render_webview
        page = render_webview(simple_profile, metrics=["alloc"])
        assert '<option value="0">alloc</option>' in page
        assert "cpu</option>" not in page

    def test_save(self, tmp_path, simple_profile):
        from repro.viz.webview import save_webview
        path = str(tmp_path / "view.html")
        save_webview(simple_profile, path, title="t")
        assert open(path).read().startswith("<!DOCTYPE")

    def test_locations_embedded_for_code_links(self, simple_profile):
        from repro.viz.webview import render_webview
        assert "app.c:42" in render_webview(simple_profile)
