"""Tests for the EasyView Protocol Buffer schema and file framing."""

import pytest

from repro.proto import easyview_pb as pb
from repro.proto.wire import WireError


def build_message() -> pb.ProfileMessage:
    msg = pb.ProfileMessage(string_table=["", "tool", "cpu", "ns", "main",
                                          "app.c", "mod"])
    msg.tool = 1
    msg.metrics.append(pb.MetricDescriptor(name=2, unit=3,
                                           aggregation=pb.AGG_SUM))
    msg.nodes.append(pb.ContextNode(id=0, parent_id=0, kind=pb.CONTEXT_ROOT))
    msg.nodes.append(pb.ContextNode(id=1, parent_id=0,
                                    kind=pb.CONTEXT_FUNCTION, name=4,
                                    file=5, line=12, module=6,
                                    address=0x400000))
    msg.points.append(pb.MonitoringPoint(
        context_id=[1],
        values=[pb.MetricValue(metric_id=0, value=123.5)],
        kind=pb.POINT_PLAIN))
    msg.points.append(pb.MonitoringPoint(
        context_id=[1, 1, 1],
        values=[pb.MetricValue(metric_id=0, value=7.0)],
        kind=pb.POINT_USE_REUSE, sequence=0))
    msg.time_nanos = 99
    msg.duration_nanos = 500
    return msg


class TestMessageRoundTrip:
    def test_full_roundtrip(self):
        original = build_message()
        parsed = pb.ProfileMessage.parse(original.serialize())
        assert parsed.string_table == original.string_table
        assert parsed.tool == 1
        assert parsed.nodes[0].kind == pb.CONTEXT_ROOT
        assert parsed.nodes[1].line == 12
        assert parsed.nodes[1].address == 0x400000
        assert parsed.points[0].values[0].value == 123.5
        assert parsed.points[1].context_id == [1, 1, 1]
        assert parsed.points[1].kind == pb.POINT_USE_REUSE
        assert parsed.duration_nanos == 500

    def test_root_kind_survives_zero_default(self):
        # CONTEXT_ROOT is enum value 0, which proto3 drops from the wire;
        # decode must still yield ROOT, not the FUNCTION dataclass default.
        node = pb.ContextNode(id=0, parent_id=0, kind=pb.CONTEXT_ROOT)
        assert pb.ContextNode.parse(node.serialize()).kind == pb.CONTEXT_ROOT

    def test_negative_metric_values(self):
        point = pb.MonitoringPoint(
            context_id=[1], values=[pb.MetricValue(metric_id=0, value=-2.5)])
        parsed = pb.MonitoringPoint.parse(point.serialize())
        assert parsed.values[0].value == -2.5

    def test_negative_zero_metric_value_survives(self):
        # -0.0 is not the proto3 double default; its sign bit must survive
        # a full serialize/parse round trip.
        import math
        point = pb.MonitoringPoint(
            context_id=[1], values=[pb.MetricValue(metric_id=0, value=-0.0)])
        parsed = pb.MonitoringPoint.parse(point.serialize())
        assert math.copysign(1.0, parsed.values[0].value) == -1.0


class TestFileFraming:
    def test_dumps_magic(self):
        data = pb.dumps(build_message())
        assert data[:4] == pb.FORMAT_MAGIC
        assert data[4] == pb.FORMAT_VERSION

    def test_loads_roundtrip(self):
        original = build_message()
        parsed = pb.loads(pb.dumps(original))
        assert parsed.string_table == original.string_table

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError):
            pb.loads(b"NOPE" + b"\x01\x00")

    def test_bad_version_rejected(self):
        data = bytearray(pb.dumps(build_message()))
        data[4] = 99
        with pytest.raises(WireError):
            pb.loads(bytes(data))

    def test_truncated_body_rejected(self):
        data = pb.dumps(build_message())
        with pytest.raises(WireError):
            pb.loads(data[:len(data) // 2])
