"""Tests for the editor host presets: every view degrades gracefully
across the capability spectrum."""

import pytest

from repro.ide.hosts import HOSTS, host, make_ide
from repro.ide.protocol import (IDE_CODE_LENS, IDE_FLOATING_WINDOW,
                                IDE_HOVER, IDE_OPEN_DOCUMENT)


class TestPresets:
    def test_known_hosts(self):
        assert {"vscode", "jetbrains", "eclipse", "vim"} <= set(HOSTS)

    def test_unknown_host_rejected(self):
        with pytest.raises(KeyError):
            host("notepad")

    def test_code_link_universal(self):
        # Code link is the one mandatory action (§VI-B).
        for profile in HOSTS.values():
            assert profile.capabilities.code_link

    def test_vscode_has_everything(self):
        caps = host("vscode").capabilities
        assert caps.code_lens and caps.hover
        assert caps.floating_window and caps.decorations

    def test_vim_has_only_code_link(self):
        caps = host("vim").capabilities
        assert not (caps.code_lens or caps.hover or caps.floating_window
                    or caps.decorations)


@pytest.mark.parametrize("host_name", sorted(HOSTS))
class TestDegradation:
    def test_full_session_on_every_host(self, host_name, simple_profile):
        """The same workflow runs on every host; optional actions appear
        only where the host can render them."""
        ide = make_ide(host_name)
        opened = ide.session.open(simple_profile)
        tree = ide.session.view(opened.id, "top_down")
        caps = host(host_name).capabilities

        # Mandatory: the code link always fires.
        work = tree.find_by_name("work")[0]
        link = ide.session.select(opened.id, work)
        assert link is not None
        assert ide.actions_of(IDE_OPEN_DOCUMENT)

        # Optional actions follow the capability matrix exactly.
        lens_count = ide.session.show_code_lenses(opened.id, "top_down")
        assert (lens_count > 0) == caps.code_lens
        hover = ide.session.show_hover(opened.id, "top_down", "app.c", 42)
        assert (hover is not None) == caps.hover
        ide.session.show_summary(opened.id)
        assert bool(ide.actions_of(IDE_FLOATING_WINDOW)) == \
            caps.floating_window

    def test_search_and_shapes_everywhere(self, host_name, simple_profile):
        """Analysis features are host-independent."""
        ide = make_ide(host_name)
        opened = ide.session.open(simple_profile)
        result = ide.request("view/search", profileId=opened.id,
                             pattern="work")
        assert result["matches"]
        for shape in ("top_down", "bottom_up", "flat"):
            assert ide.request("view/switchShape", profileId=opened.id,
                               shape=shape)["blocks"] > 0
