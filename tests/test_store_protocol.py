"""The store over PVP: store/ingest, store/query, view/openQuery."""

from __future__ import annotations

import pytest

from repro.core import serialize
from repro.ide import protocol as pvp
from repro.ide.session import ViewerSession


@pytest.fixture
def session():
    return ViewerSession()


def _request(session, method, req_id=1, **params):
    return session.handle(pvp.Request(method=method, id=req_id,
                                      params=params))


@pytest.fixture
def populated(tmp_path, session, simple_profile):
    """A store directory with two profiles ingested over PVP."""
    root = str(tmp_path / "store")
    for i in (1, 2):
        profile_path = str(tmp_path / ("p%d.ezvw" % i))
        profile = simple_profile
        profile.meta.time_nanos = 1_700_000_000_000_000_000 + i
        serialize.dump(profile, profile_path)
        response = _request(session, pvp.STORE_INGEST, req_id=i,
                            store=root, path=profile_path, service="api",
                            labels={"run": str(i)})
        assert response.ok, response.error
    return root


class TestStoreIngest:
    def test_ingest_result_shape(self, populated, session):
        response = _request(session, pvp.STORE_QUERY, store=populated,
                            query="service=api")
        assert response.ok
        assert response.result["count"] == 2
        record = response.result["records"][0]
        assert record["service"] == "api"
        assert record["type"] == "cpu"
        assert record["seq"] == 2  # newest first

    def test_ingest_requires_path(self, session, tmp_path):
        response = _request(session, pvp.STORE_INGEST,
                            store=str(tmp_path / "s"))
        assert not response.ok
        assert "path" in response.error["message"]

    def test_ingest_rejects_non_string_path(self, session, tmp_path):
        response = _request(session, pvp.STORE_INGEST,
                            store=str(tmp_path / "s"), path=42)
        assert not response.ok


class TestStoreQuery:
    def test_label_filter(self, populated, session):
        response = _request(session, pvp.STORE_QUERY, store=populated,
                            query="label.run=1")
        assert response.result["count"] == 1
        assert response.result["records"][0]["labels"] == {"run": "1"}

    def test_bad_query_is_an_error_response(self, populated, session):
        response = _request(session, pvp.STORE_QUERY, store=populated,
                            query="bogus=1")
        assert not response.ok
        assert "unknown query key" in response.error["message"]


class TestOpenQuery:
    def test_opened_view_answers_view_requests(self, populated, session):
        response = _request(session, pvp.VIEW_OPEN_QUERY, store=populated,
                            query="service=api")
        assert response.ok, response.error
        profile_id = response.result["profileId"]
        assert "cpu:sum" in response.result["metrics"]
        summary = _request(session, pvp.VIEW_SUMMARY, profileId=profile_id)
        assert summary.ok
        assert "Hottest" in summary.result["body"]

    def test_no_match_is_an_error(self, populated, session):
        response = _request(session, pvp.VIEW_OPEN_QUERY, store=populated,
                            query="service=nobody")
        assert not response.ok
        assert "matched no records" in response.error["message"]

    def test_store_instance_is_cached_per_root(self, populated, session):
        assert session.store(populated) is session.store(populated)
