"""Tests for the string interning table."""

from hypothesis import given, strategies as st

from repro.core.strings import StringTable


class TestStringTable:
    def test_empty_string_is_index_zero(self):
        table = StringTable()
        assert table.intern("") == 0
        assert table.lookup(0) == ""

    def test_intern_is_idempotent(self):
        table = StringTable()
        first = table.intern("hello")
        second = table.intern("hello")
        assert first == second
        assert len(table) == 2

    def test_indices_are_sequential(self):
        table = StringTable()
        assert [table.intern(s) for s in ("a", "b", "c")] == [1, 2, 3]

    def test_lookup_out_of_range_returns_empty(self):
        table = StringTable()
        assert table.lookup(99) == ""
        assert table.lookup(-1) == ""

    def test_contains(self):
        table = StringTable()
        table.intern("x")
        assert "x" in table
        assert "y" not in table

    def test_as_list_preserves_order(self):
        table = StringTable()
        table.intern("b")
        table.intern("a")
        assert table.as_list() == ["", "b", "a"]

    def test_from_list_roundtrip(self):
        table = StringTable()
        for s in ("alpha", "beta", "alpha"):  # duplicate intern
            table.intern(s)
        rebuilt = StringTable.from_list(table.as_list())
        assert rebuilt.as_list() == table.as_list()
        assert rebuilt.intern("alpha") == table.intern("alpha")

    def test_from_list_forces_empty_slot_zero(self):
        rebuilt = StringTable.from_list(["junk", "a"])
        assert rebuilt.lookup(0) == ""
        assert rebuilt.lookup(1) == "a"

    @given(st.lists(st.text(max_size=20), max_size=50))
    def test_lookup_inverts_intern(self, strings):
        table = StringTable()
        for s in strings:
            assert table.lookup(table.intern(s)) == s

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1,
                    max_size=30, unique=True))
    def test_distinct_strings_get_distinct_indices(self, strings):
        table = StringTable()
        indices = [table.intern(s) for s in strings]
        assert len(set(indices)) == len(strings)
