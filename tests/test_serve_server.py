"""The socket server's control plane: cancellation, admission, isolation.

These tests inject a stub session factory whose handler blocks on a
:class:`threading.Event`, so queue states are built deterministically:
one request parks in the dispatch pool while later ones pile into the
session queue, and the test then observes exactly which get CANCELLED,
DENIED, or executed once the gate opens.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading

import pytest

from repro.ide import protocol as pvp
from repro.obs import get_registry
from repro.serve import PVPServer, ServeConfig


class StubViewer:
    """A controllable stand-in for ViewerSession.

    ``slow/block`` waits on the gate (parking one executor thread);
    every method echoes its name and id back.
    """

    def __init__(self, sink, session_id, gate):
        self.sink = sink
        self.session_id = session_id
        self.gate = gate

    def handle(self, request):
        if request.method == "slow/block":
            assert self.gate.wait(timeout=30), "test gate never opened"
        return pvp.Response.success(request.id,
                                    {"method": request.method})


class Harness:
    """One server + one connected client, with a shared handler gate."""

    def __init__(self, config):
        self.config = config
        self.gate = threading.Event()
        self.server = None
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.server = PVPServer(
            self.config, log=io.StringIO(),
            session_factory=lambda sink, sid: StubViewer(sink, sid,
                                                         self.gate))
        await self.server.start()
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.server.port)
        return self

    async def __aexit__(self, *exc):
        self.gate.set()  # never leave an executor thread parked
        try:
            self.writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass
        await self.server.stop()

    def send(self, req_id, method, **params):
        self.writer.write((json.dumps(
            {"jsonrpc": "2.0", "id": req_id, "method": method,
             "params": params}) + "\n").encode("utf-8"))

    async def read_response(self, timeout=15):
        line = await asyncio.wait_for(self.reader.readline(), timeout)
        assert line, "connection closed while awaiting a response"
        return json.loads(line.decode("utf-8"))

    async def session(self):
        """The server-side Session for this (only) connection."""
        for _ in range(1000):
            if self.server._sessions:
                return next(iter(self.server._sessions))
            await asyncio.sleep(0.005)
        raise AssertionError("session never registered")


class TestCancellation:
    def test_superseded_request_is_cancelled(self):
        async def main():
            async with Harness(ServeConfig()) as h:
                h.send(1, "slow/block")      # parks the dispatch thread
                h.send(2, "view/hover", profileId=1, file="a.c", line=1)
                h.send(3, "view/hover", profileId=1, file="a.c", line=2)
                await h.writer.drain()
                # id 2 is answered CANCELLED while id 1 is still running.
                cancelled = await h.read_response()
                assert cancelled["id"] == 2
                assert cancelled["error"]["code"] == pvp.CANCELLED
                assert "superseded" in cancelled["error"]["message"]
                h.gate.set()
                first = await h.read_response()
                assert first["id"] == 1
                last = await h.read_response()
                assert last["id"] == 3
                assert last["result"]["method"] == "view/hover"

        asyncio.run(main())

    def test_different_pane_is_not_cancelled(self):
        async def main():
            async with Harness(ServeConfig()) as h:
                h.send(1, "slow/block")
                h.send(2, "view/hover", profileId=1, file="a.c", line=1)
                h.send(3, "view/hover", profileId=2, file="a.c", line=1)
                await h.writer.drain()
                h.gate.set()
                ids = [(await h.read_response())["id"] for _ in range(3)]
                assert sorted(ids) == [1, 2, 3]

        asyncio.run(main())


class TestAdmissionControl:
    def test_session_queue_cap_denies_fast(self):
        async def main():
            config = ServeConfig(max_session_queue=1)
            async with Harness(config) as h:
                h.send(1, "slow/block")
                session = await h.session()
                # Wait until id 1 is *running* (dequeued), so the queue
                # depth below is exactly the queued id 2.
                for _ in range(1000):
                    if not session.queue and h.server._pending == 1:
                        break
                    await asyncio.sleep(0.005)
                h.send(2, "view/open", path="x")   # queued (depth 1)
                h.send(3, "view/open", path="y")   # over the cap
                await h.writer.drain()
                denied = await h.read_response()
                assert denied["id"] == 3
                assert denied["error"]["code"] == pvp.DENIED
                assert denied["error"]["data"]["reason"] == "session"
                assert denied["error"]["data"]["retryAfterMs"] \
                    == config.retry_after_ms
                h.gate.set()
                assert (await h.read_response())["id"] == 1
                assert (await h.read_response())["id"] == 2

        asyncio.run(main())

    def test_global_pending_cap_denies_fast(self):
        async def main():
            async with Harness(ServeConfig(max_pending=1)) as h:
                h.send(1, "slow/block")
                session = await h.session()
                for _ in range(1000):
                    if h.server._pending == 1 and not session.queue:
                        break
                    await asyncio.sleep(0.005)
                h.send(2, "view/open", path="x")
                await h.writer.drain()
                denied = await h.read_response()
                assert denied["id"] == 2
                assert denied["error"]["code"] == pvp.DENIED
                assert denied["error"]["data"]["reason"] == "server"
                h.gate.set()
                assert (await h.read_response())["id"] == 1

        asyncio.run(main())


class TestSlowClientIsolation:
    def test_notifications_shed_when_write_queue_full(self):
        async def main():
            async with Harness(ServeConfig(max_write_queue=4)) as h:
                session = await h.session()
                shed_before = h.server.stats_shed.value
                # No awaits between sends: the writer task cannot drain,
                # so the queue genuinely fills.
                for i in range(10):
                    session.send_line('{"note": %d}' % i, critical=False)
                assert h.server.stats_shed.value - shed_before == 6
                assert not session.dead  # shedding is not a disconnect

        asyncio.run(main())

    def test_unbufferable_response_disconnects(self):
        async def main():
            async with Harness(ServeConfig(max_write_queue=2)) as h:
                session = await h.session()
                drops_before = h.server.stats_slow_disconnects.value
                for i in range(3):
                    session.send_line('{"id": %d}' % i, critical=True)
                assert h.server.stats_slow_disconnects.value \
                    - drops_before == 1
                assert session.dead

        asyncio.run(main())


class TestLifecycle:
    def test_shutdown_request_closes_the_session(self):
        async def main():
            async with Harness(ServeConfig()) as h:
                h.send(1, "shutdown")
                await h.writer.drain()
                ack = await h.read_response()
                assert ack["result"] == {"ok": True}
                tail = await asyncio.wait_for(h.reader.read(), timeout=15)
                assert tail == b""  # server closed the connection

        asyncio.run(main())

    def test_drain_finishes_queued_work_then_refuses(self):
        async def main():
            async with Harness(ServeConfig()) as h:
                h.send(1, "view/open", path="x")
                await h.writer.drain()
                response = await h.read_response()
                assert response["id"] == 1
                await h.server.drain()
                assert h.server.closed
                # New connections are closed immediately.
                reader, writer = None, None
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", h.server.port)
                    assert await asyncio.wait_for(
                        reader.read(), timeout=15) == b""
                except (ConnectionError, OSError):
                    pass  # refused outright is fine too
                finally:
                    if writer is not None:
                        writer.close()

        asyncio.run(main())

    def test_draining_server_denies_new_requests(self):
        async def main():
            async with Harness(ServeConfig(drain_seconds=0.5)) as h:
                session = await h.session()
                h.server._draining = True
                h.send(1, "view/open", path="x")
                await h.writer.drain()
                denied = await h.read_response()
                assert denied["error"]["code"] == pvp.DENIED
                assert denied["error"]["data"]["reason"] == "draining"
                h.server._draining = False

        asyncio.run(main())

    def test_stats_snapshot(self):
        async def main():
            async with Harness(ServeConfig()) as h:
                h.send(1, "view/open", path="x")
                await h.writer.drain()
                await h.read_response()
                stats = h.server.stats()
                # Counters live in the process-wide obs registry, so
                # they are cumulative across servers; gauges are not.
                assert stats["connections"] >= 1
                assert stats["sessions"] == 1
                assert stats["port"] == h.server.port

        asyncio.run(main())
