"""Golden tests for the SelfCheck lockset pass (EV401-EV404).

Each rule gets true positives *and* the false-positive traps that shaped
the analyzer: ``__init__``-only writes, double-checked locking,
thread-local and contextvar state, nested-function lock resets.
"""

import textwrap

from repro.sa import analyze_source


def run(source, subject="repro/example.py"):
    return analyze_source(textwrap.dedent(source), subject)


def rules_of(diags):
    return {d.rule for d in diags}


class TestEV401InconsistentGuarding:
    def test_unguarded_read_of_guarded_field(self):
        diags = run("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def drain(self):
                    with self._lock:
                        self._items.clear()

                def first(self):
                    return self._items[0]
            """)
        assert [d.rule for d in diags] == ["EV401"]
        assert "Box.first" in diags[0].message
        assert "self._items" in diags[0].message
        assert "self._lock" in diags[0].message
        assert diags[0].line == 17

    def test_unguarded_write_flagged_too(self):
        diags = run("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def bump(self):
                    with self._lock:
                        self._value += 1

                def clobber(self):
                    self._value = 0
            """)
        assert rules_of(diags) == {"EV401"}
        assert "writes" in diags[0].message

    def test_init_only_field_is_configuration_not_shared_state(self):
        assert run("""\
            import threading

            class Engine:
                def __init__(self, workers):
                    self._lock = threading.Lock()
                    self.workers = workers
                    self._cache = {}

                def get(self, key):
                    with self._lock:
                        return self._cache.get(key), self.workers
            """) == []

    def test_double_checked_locking_is_exempt(self):
        assert run("""\
            import threading

            class Lazy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._executor = None

                def ensure(self):
                    if self._executor is None:
                        with self._lock:
                            if self._executor is None:
                                self._executor = object()
                    return self._executor
            """) == []

    def test_module_level_double_checked_singleton_is_exempt(self):
        assert run("""\
            import threading

            _lock = threading.Lock()
            _registry = None

            def get_registry():
                global _registry
                if _registry is None:
                    with _lock:
                        if _registry is None:
                            _registry = object()
                return _registry
            """) == []

    def test_module_global_mutated_without_lock_is_flagged(self):
        diags = run("""\
            import threading

            _lock = threading.Lock()
            _cache = {}

            def put(key, value):
                with _lock:
                    _cache[key] = value

            def drop(key):
                with _lock:
                    _cache.pop(key, None)

            def peek(key):
                return _cache.get(key)
            """)
        assert rules_of(diags) == {"EV401"}
        assert "_cache" in diags[0].message

    def test_thread_local_state_is_confined(self):
        assert run("""\
            import threading

            class PerThread:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._slot = threading.local()
                    self._shared = []

                def work(self, x):
                    self._slot.value = x
                    with self._lock:
                        self._shared.append(x)
            """) == []

    def test_contextvar_state_is_confined(self):
        assert run("""\
            import contextvars
            import threading

            class Tracer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._current = contextvars.ContextVar("cur")
                    self._ring = []

                def push(self, span):
                    self._current.set(span)
                    with self._lock:
                        self._ring.append(span)
            """) == []

    def test_nested_function_does_not_inherit_the_lock(self):
        diags = run("""\
            import threading

            class Batcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._out = []

                def go(self, pool, items):
                    with self._lock:
                        self._out.clear()
                        def task(item):
                            self._out.append(item)
                        pool.map(task, items)
            """)
        # The append inside `task` runs later, without the lock: the
        # task-callable pass flags the closed-over mutation, and the
        # blocking pass flags fanning out while still holding the lock.
        assert rules_of(diags) == {"EV404", "EV411"}

    def test_lock_object_itself_is_never_a_field_finding(self):
        diags = run("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def lock_object(self):
                    return self._lock
            """)
        assert diags == []

    def test_unrelated_lock_does_not_become_the_guard(self):
        # One incidental read under some other lock must not turn that
        # lock into the field's inferred guard.
        diags = run("""\
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._n = 0

                def write(self):
                    self._n = 1

                def read(self):
                    with self._b:
                        return self._n
            """)
        assert diags == []


class TestEV402ReadModifyWrite:
    def test_augassign_outside_any_lock(self):
        diags = run("""\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def hit(self):
                    self.count += 1
            """)
        assert [d.rule for d in diags] == ["EV402"]
        assert "self.count" in diags[0].message

    def test_spelled_out_rmw_is_flagged(self):
        diags = run("""\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def hit(self):
                    self.count = self.count + 1
            """)
        assert "EV402" in rules_of(diags)

    def test_rmw_under_lock_is_clean(self):
        assert run("""\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def hit(self):
                    with self._lock:
                        self.count += 1
            """) == []

    def test_no_lock_in_scope_means_no_finding(self):
        # EV402 needs a lock-owning scope: a plain single-threaded class
        # with counters is not flagged.
        assert run("""\
            class Stats:
                def __init__(self):
                    self.count = 0

                def hit(self):
                    self.count += 1
            """) == []

    def test_guarded_field_reports_ev401_not_ev402(self):
        diags = run("""\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def hit(self):
                    with self._lock:
                        self.count += 1

                def sneak(self):
                    self.count += 1
            """)
        assert [d.rule for d in diags] == ["EV401"]


class TestEV403CheckThenAct:
    def test_naive_lazy_init(self):
        diags = run("""\
            import threading

            class Conn:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._conn = None

                def get(self):
                    if self._conn is None:
                        self._conn = object()
                    return self._conn
            """)
        assert "EV403" in rules_of(diags)
        assert "Conn.get" in [d for d in diags
                              if d.rule == "EV403"][0].message

    def test_check_then_act_under_lock_is_clean(self):
        assert run("""\
            import threading

            class Conn:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._conn = None

                def get(self):
                    with self._lock:
                        if self._conn is None:
                            self._conn = object()
                        return self._conn
            """) == []

    def test_double_checked_locking_not_flagged(self):
        assert run("""\
            import threading

            class Conn:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._conn = None

                def get(self):
                    if self._conn is None:
                        with self._lock:
                            if self._conn is None:
                                self._conn = object()
                    return self._conn
            """) == []


class TestEV404TaskCallables:
    def test_closure_mutation_from_pool_map(self):
        diags = run("""\
            def run_all(pool, items):
                results = []
                def work(item):
                    results.append(item * 2)
                pool.map(work, items)
                return results
            """)
        assert [d.rule for d in diags] == ["EV404"]
        assert "'work'" in diags[0].message
        assert "'results'" in diags[0].message

    def test_lambda_passed_to_executor_submit(self):
        diags = run("""\
            def run_all(executor, items):
                seen = {}
                for item in items:
                    executor.submit(lambda: seen.update({item: True}))
                return seen
            """)
        assert "EV404" in rules_of(diags)

    def test_thread_target_mutating_outcome_dict(self):
        diags = run("""\
            import threading

            def watch(cmd):
                outcome = {}
                def run():
                    outcome["rc"] = cmd()
                worker = threading.Thread(target=run)
                worker.start()
                worker.join()
                return outcome
            """)
        assert "EV404" in rules_of(diags)

    def test_pure_task_is_clean(self):
        assert run("""\
            def run_all(pool, items):
                def work(item):
                    local = item * 2
                    return local
                return pool.map(work, items)
            """) == []

    def test_mutating_the_item_argument_is_the_tasks_own_business(self):
        # Each task owns its item; per-item mutation is not shared state.
        assert run("""\
            def decorate(pool, nodes):
                def work(node):
                    node.seen = True
                    return node
                return pool.map(work, nodes)
            """) == []

    def test_non_pool_receiver_is_ignored(self):
        assert run("""\
            def apply(mapper, items):
                out = []
                def work(item):
                    out.append(item)
                mapper.map(work, items)
                return out
            """) == []
