"""The HTTP collector: admission, lint gating, dedup, failure modes."""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro import ProfileBuilder
from repro.continuous import CaptureAgent, Collector, DiskSpool, MachineSource
from repro.continuous.agent import HTTPShipper, RetryPolicy, ShipError
from repro.continuous.envelope import CaptureEnvelope
from repro.core.serialize import dumps as serialize_profile
from repro.profilers.workloads import checkout_service_profile
from repro.store import ProfileStore


@pytest.fixture
def store(tmp_path):
    clock = {"now": 1_000_000_000_000}
    s = ProfileStore(str(tmp_path / "store"),
                     clock=lambda: clock["now"])
    s.test_clock = clock  # tests advance this to separate captures
    return s


def checkout_envelope(seq=0, seed=43, slow=False, time_nanos=999,
                      service="checkout"):
    profile = checkout_service_profile(slow=slow, scale=3, seed=seed)
    return CaptureEnvelope(service=service, host="h1", ptype="cpu",
                           seq=seq, blob=serialize_profile(profile),
                           time_nanos=time_nanos)


class TestUploadHandling:
    def test_upload_is_stored_with_identity_labels(self, store):
        collector = Collector(store)
        status, payload = collector.handle_upload(
            checkout_envelope().to_headers(), checkout_envelope().blob)
        assert status == 200
        assert payload["status"] == "stored"
        (entry,) = store.select("service=checkout")
        assert entry.labels["host"] == "h1"
        assert entry.labels["digest"] == payload["digest"]
        # The envelope's capture time, not the ingest time, is indexed.
        assert entry.time_nanos == 999

    def test_duplicate_digest_stores_once(self, store):
        collector = Collector(store)
        env = checkout_envelope()
        first = collector.handle_upload(env.to_headers(), env.blob)
        second = collector.handle_upload(env.to_headers(), env.blob)
        assert first[0] == 200 and first[1]["status"] == "stored"
        assert second[0] == 200 and second[1]["status"] == "duplicate"
        assert len(store.select("")) == 1

    def test_dedup_set_primes_from_the_store_on_restart(self, store):
        env = checkout_envelope()
        Collector(store).handle_upload(env.to_headers(), env.blob)
        store.flush()
        # A fresh collector over the same store must not re-admit.
        reborn = Collector(store)
        status, payload = reborn.handle_upload(env.to_headers(), env.blob)
        assert payload["status"] == "duplicate"
        assert len(store.select("")) == 1

    def test_oversized_body_rejected_413(self, store):
        collector = Collector(store, max_body_bytes=64)
        env = checkout_envelope()
        status, payload = collector.handle_upload(env.to_headers(),
                                                  env.blob)
        assert status == 413
        assert payload["error"]["code"] == "oversized"
        assert not store.select("")

    def test_missing_headers_rejected_400(self, store):
        status, payload = Collector(store).handle_upload(
            {}, b"some-bytes")
        assert status == 400
        assert payload["error"]["code"] == "malformed"

    def test_unparseable_blob_rejected_400(self, store):
        garbage = CaptureEnvelope(service="checkout", host="h1",
                                  ptype="cpu", seq=0,
                                  blob=b"\x00garbage-not-a-profile")
        status, payload = Collector(store).handle_upload(
            garbage.to_headers(), garbage.blob)
        assert status == 400
        assert "unparseable" in payload["error"]["message"]
        assert not store.select("")

    def test_rejected_digest_can_be_retried_after_fix(self, store):
        """A rejected upload must not poison the dedup set."""
        collector = Collector(store, max_body_bytes=10 ** 6)
        garbage = CaptureEnvelope(service="checkout", host="h1",
                                  ptype="cpu", seq=0, blob=b"\x00nope")
        assert collector.handle_upload(garbage.to_headers(),
                                       garbage.blob)[0] == 400
        good = checkout_envelope()
        assert collector.handle_upload(good.to_headers(),
                                       good.blob)[0] == 200

    def test_lint_errors_rejected_422_with_diagnostics(self, store):
        builder = ProfileBuilder(tool="test")
        cpu = builder.metric("cpu", unit="nanoseconds")
        builder.sample([("main", "a.c", 1)], {cpu: math.nan})
        env = CaptureEnvelope(service="checkout", host="h1", ptype="cpu",
                              seq=0, time_nanos=999,
                              blob=serialize_profile(builder.build()))
        status, payload = Collector(store).handle_upload(env.to_headers(),
                                                         env.blob)
        assert status == 422
        assert payload["error"]["code"] == "lint"
        rules = {d["ruleId"] for d in payload["error"]["diagnostics"]}
        assert "EV303" in rules
        assert not store.select("")

    def test_stampless_profile_accepted_with_envelope_time(self, store):
        profile = checkout_service_profile(scale=3)
        assert profile.meta.time_nanos == 0
        env = CaptureEnvelope(service="checkout", host="h1", ptype="cpu",
                              seq=0, time_nanos=777_000,
                              blob=serialize_profile(profile))
        status, payload = Collector(store).handle_upload(env.to_headers(),
                                                         env.blob)
        assert status == 200
        (entry,) = store.select("")
        assert entry.time_nanos == 777_000


class TestAdmission:
    def test_server_full_denies_429_with_retry_hint(self, store):
        collector = Collector(store, max_pending=1, retry_after_ms=75)
        assert collector.admission.try_admit(source="elsewhere") is None
        env = checkout_envelope()
        status, payload = collector.handle_upload(env.to_headers(),
                                                  env.blob)
        assert status == 429
        assert payload["error"]["reason"] == "server"
        assert payload["error"]["retryAfterMs"] == 75
        collector.admission.release(source="elsewhere")

    def test_flooding_service_denied_by_name(self, store):
        collector = Collector(store, max_pending=10, max_service_queue=1)
        assert collector.admission.try_admit(source="checkout") is None
        env = checkout_envelope()
        status, payload = collector.handle_upload(env.to_headers(),
                                                  env.blob)
        assert status == 429
        assert payload["error"]["reason"] == "service"
        # Another service is unaffected by checkout's backlog.
        other = checkout_envelope(service="billing")
        assert collector.handle_upload(other.to_headers(),
                                       other.blob)[0] == 200
        collector.admission.release(source="checkout")

    def test_draining_denies_503(self, store):
        collector = Collector(store)
        collector.drain()
        env = checkout_envelope()
        status, payload = collector.handle_upload(env.to_headers(),
                                                  env.blob)
        assert status == 503
        assert payload["error"]["reason"] == "draining"


class TestHTTPEndToEnd:
    def test_agent_ships_over_real_http(self, store, tmp_path):
        with Collector(store, port=0) as collector:
            agent = CaptureAgent(
                MachineSource("checkout", scale=3),
                HTTPShipper(collector.url, timeout=5.0),
                service="checkout", host="h1",
                spool=DiskSpool(str(tmp_path / "spool")),
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
                sleep=lambda s: None)
            results = agent.run(3)
        assert all(r and r["status"] == "stored" for r in results)
        assert len(store.select("service=checkout")) == 3

    def test_healthz_reports_counters(self, store):
        with Collector(store, port=0) as collector:
            env = checkout_envelope()
            collector.handle_upload(env.to_headers(), env.blob)
            body = urllib.request.urlopen(
                collector.url + "/healthz", timeout=5).read()
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["uploads"] >= 1
        assert health["store"]["records"] >= 1

    def test_metrics_endpoint_serves_prometheus_text(self, store):
        with Collector(store, port=0) as collector:
            env = checkout_envelope()
            collector.handle_upload(env.to_headers(), env.blob)
            response = urllib.request.urlopen(
                collector.url + "/metrics", timeout=5)
            body = response.read().decode()
            content_type = response.headers["Content-Type"]
        assert "text/plain" in content_type
        assert "continuous_collector_uploads_total" in body
        assert "# TYPE continuous_collector_ingest_seconds histogram" \
            in body

    def test_unknown_path_404(self, store):
        with Collector(store, port=0) as collector:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(collector.url + "/nope", timeout=5)
            assert excinfo.value.code == 404

    def test_denial_sets_retry_after_header(self, store):
        with Collector(store, port=0,
                       retry_after_ms=60) as collector:
            collector.drain()
            shipper = HTTPShipper(collector.url, timeout=5.0)
            with pytest.raises(ShipError) as excinfo:
                shipper(checkout_envelope())
        assert excinfo.value.retryable
        assert excinfo.value.retry_after_ms == 60

    def test_oversized_declared_body_refused_from_headers(self, store):
        with Collector(store, port=0, max_body_bytes=32) as collector:
            shipper = HTTPShipper(collector.url, timeout=5.0)
            with pytest.raises(ShipError) as excinfo:
                shipper(checkout_envelope())
        assert not excinfo.value.retryable
        assert "oversized" in str(excinfo.value)

    def test_spool_replay_after_outage_over_http(self, store, tmp_path):
        spool = DiskSpool(str(tmp_path / "spool"))
        dead = HTTPShipper("http://127.0.0.1:1", timeout=0.2)
        agent = CaptureAgent(
            MachineSource("checkout", scale=3), dead,
            service="checkout", host="h1", spool=spool,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            sleep=lambda s: None)
        agent.run(2)
        assert len(spool) == 2

        with Collector(store, port=0) as collector:
            agent.shipper = HTTPShipper(collector.url, timeout=5.0)
            agent.tick()
        # Both spooled captures plus the fresh one landed.
        assert len(store.select("service=checkout")) == 3
        assert len(spool) == 0
