"""Tests for the synthetic program machine and corpus generator."""

import pytest

from repro.errors import EasyViewError
from repro.profilers.corpus import TIERS, generate, generate_bytes, tier
from repro.profilers.machine import Callee, Func, ProgramMachine
from repro.proto import pprof_pb


class TestMachine:
    def simple_program(self):
        return [
            Func("main", "m.c", 1, "app",
                 callees=[Callee("work", calls=2), Callee("idle")]),
            Func("work", "m.c", 10, "app", self_cost=100.0,
                 callees=[Callee("inner")]),
            Func("inner", "m.c", 20, "app", self_cost=50.0),
            Func("idle", "m.c", 30, "app", self_cost=25.0),
        ]

    def test_deterministic(self):
        p1 = ProgramMachine(self.simple_program(), seed=1).run()
        p2 = ProgramMachine(self.simple_program(), seed=1).run()
        assert p1.total("cpu") == p2.total("cpu")

    def test_call_counts_multiply(self):
        profile = ProgramMachine(self.simple_program()).run()
        work = profile.find_by_name("work")[0]
        assert work.exclusive(0) == 200.0     # 100 × 2 calls
        inner = profile.find_by_name("inner")[0]
        assert inner.exclusive(0) == 100.0    # 50 × 2 (inherited count)

    def test_jitter_bounded(self):
        base = ProgramMachine(self.simple_program(), jitter=0.0).run()
        jittered = ProgramMachine(self.simple_program(), seed=5,
                                  jitter=0.1).run()
        for node in jittered.nodes():
            if not node.metrics:
                continue
            twin = [n for n in base.find_by_name(node.frame.name)
                    if n.depth() == node.depth()]
            assert twin
            ratio = node.exclusive(0) / twin[0].exclusive(0)
            assert 0.9 <= ratio <= 1.1

    def test_recursion_bounded(self):
        program = [
            Func("main", callees=[Callee("rec")]),
            Func("rec", self_cost=1.0, callees=[Callee("rec")]),
        ]
        profile = ProgramMachine(program).run(max_cycle_depth=3)
        assert len(profile.find_by_name("rec")) == 3

    def test_undefined_callee_rejected(self):
        with pytest.raises(EasyViewError, match="undefined function"):
            ProgramMachine([Func("main", callees=[Callee("ghost")])])

    def test_duplicate_function_rejected(self):
        with pytest.raises(EasyViewError, match="duplicate"):
            ProgramMachine([Func("main"), Func("main")])

    def test_missing_entry_rejected(self):
        with pytest.raises(EasyViewError, match="entry"):
            ProgramMachine([Func("main")], entry="other")

    def test_snapshots_emitted_with_decay(self):
        program = [Func("main", callees=[Callee("alloc_site")]),
                   Func("alloc_site", self_cost=1.0, alloc_bytes=1000.0)]
        machine = ProgramMachine(program)
        profile = machine.run(snapshots=4,
                              snapshot_decay={"alloc_site":
                                              [1.0, 0.5, 0.25, 0.1]})
        assert profile.snapshot_sequences() == [1, 2, 3, 4]
        from repro.analysis.aggregate import snapshot_totals
        totals = snapshot_totals(profile, "inuse_bytes")
        assert totals == pytest.approx([1000.0, 500.0, 250.0, 100.0])


class TestCorpus:
    def test_tier_lookup(self):
        assert tier("small").name == "small"
        with pytest.raises(KeyError):
            tier("gigantic")

    def test_sizes_strictly_increase(self):
        sizes = [len(generate_bytes(spec)) for spec in TIERS[:3]]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_generated_profile_is_valid_pprof(self, small_pprof_bytes):
        message = pprof_pb.loads(small_pprof_bytes)
        assert len(message.sample) == tier("small").samples
        assert len(message.function) == tier("small").functions
        location_ids = {loc.id for loc in message.location}
        for sample in message.sample[:100]:
            assert all(lid in location_ids for lid in sample.location_id)

    def test_deterministic_per_seed(self):
        assert generate_bytes(tier("small")) == generate_bytes(tier("small"))

    def test_write_corpus(self, tmp_path):
        from repro.profilers.corpus import write_corpus
        paths = write_corpus(str(tmp_path), TIERS[:1])
        assert set(paths) == {"small"}
        data = open(paths["small"], "rb").read()
        assert pprof_pb.loads(data).sample
