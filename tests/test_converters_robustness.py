"""Robustness: converters must fail *cleanly* on malformed input.

A viewer gets fed whatever the user drops on it; every converter must
either produce a profile or raise :class:`FormatError` — never a random
exception type, never a hang, never a partially-corrupt profile.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.builder import validate
from repro.converters import base, names, parse_bytes
from repro.errors import EasyViewError, FormatError


ALL_FORMATS = sorted(names())


class TestGarbageBytes:
    @pytest.mark.parametrize("format_name", ALL_FORMATS)
    @pytest.mark.parametrize("payload", [
        b"",
        b"\x00" * 64,
        b"\xff\xfe garbage \x00\x01",
        b"{\"unrelated\": true}",
        b"<xml><but-not-a-profile/></xml>",
        b"just some words\nand another line\n",
    ])
    def test_clean_failure_or_profile(self, format_name, payload):
        converter = base.get(format_name)
        try:
            profile = converter.parse(payload)
        except EasyViewError:
            return  # FormatError and friends are the contract
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            pytest.fail("%s leaked %s: %s"
                        % (format_name, type(exc).__name__, exc))
        # If it parsed, the result must be structurally valid.
        assert validate(profile).ok

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=256))
    def test_autodetect_fuzz(self, payload):
        try:
            profile = parse_bytes(payload)
        except EasyViewError:
            return
        assert validate(profile).ok

    @settings(max_examples=40, deadline=None)
    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-999, 999),
                  st.text(max_size=8)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.sampled_from(
                ["nodes", "samples", "profiles", "files", "root_frame",
                 "traceEvents", "ph", "name", "id", "children", "$schema",
                 "shared", "frames", "time", "lines"]),
                children, max_size=4)),
        max_leaves=12))
    def test_json_structure_fuzz(self, document):
        """Random JSON with profile-ish keys never crashes a converter."""
        payload = json.dumps(document).encode()
        for format_name in ("chrome", "speedscope", "pyinstrument",
                            "scalene", "chrome-trace", "cloud-profiler",
                            "easyview-json"):
            converter = base.get(format_name)
            try:
                converter.parse(payload)
            except EasyViewError:
                pass
            except (ValueError, KeyError, IndexError, TypeError,
                    AttributeError) as exc:
                pytest.fail("%s leaked %s on %r"
                            % (format_name, type(exc).__name__, document))


class TestTruncation:
    def test_truncated_pprof_fails_cleanly(self, small_pprof_bytes):
        for cut in (1, 10, len(small_pprof_bytes) // 2):
            with pytest.raises(EasyViewError):
                parse_bytes(small_pprof_bytes[:cut], format="pprof")

    def test_bitflipped_pprof_fails_cleanly_or_parses(self,
                                                      small_pprof_bytes):
        corrupted = bytearray(small_pprof_bytes)
        corrupted[len(corrupted) // 3] ^= 0xFF
        try:
            profile = parse_bytes(bytes(corrupted), format="pprof")
        except EasyViewError:
            return
        assert profile.node_count() >= 1
