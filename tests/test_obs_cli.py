"""The ``easyview obs`` subcommands and the ``--json`` snapshot flags."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def restore_global_tracer():
    """obs commands enable the process-wide tracer; undo that per test."""
    tracer = obs.get_tracer()
    saved = (tracer.enabled, tracer.capacity, tracer.sample_every)
    yield
    tracer.configure(enabled=saved[0], capacity=saved[1],
                     sample_every=saved[2])
    tracer.clear()


@pytest.fixture
def collapsed(tmp_path):
    path = tmp_path / "stacks.folded"
    path.write_text("main;work;compute 100\nmain;work;io 40\nmain;idle 10\n")
    return str(path)


@pytest.fixture
def store_root(tmp_path, collapsed):
    root = str(tmp_path / "prof")
    assert main(["store", "ingest", root, "--service", "web",
                 "--type", "cpu", collapsed]) == 0
    return root


class TestObsExport:
    def test_easyview_profile_reopens_and_lints(self, store_root,
                                                tmp_path, capsys):
        out = str(tmp_path / "self.json")
        rc = main(["obs", "export", "--format", "easyview", "-o", out,
                   "store", "query", store_root, "service=web"])
        assert rc == 0
        assert os.path.exists(out)
        capsys.readouterr()
        # The dogfooded profile opens in the viewer and lints clean.
        assert main(["open", out]) == 0
        assert "store" in capsys.readouterr().out
        assert main(["lint", out]) == 0

    def test_double_dash_separator_accepted(self, store_root, tmp_path):
        out = str(tmp_path / "self.json")
        rc = main(["obs", "export", "-o", out, "--",
                   "store", "query", store_root, "service=web"])
        assert rc == 0
        assert os.path.exists(out)

    def test_binary_output_for_ezvw_suffix(self, store_root, tmp_path,
                                           capsys):
        out = str(tmp_path / "self.ezvw")
        assert main(["obs", "export", "-o", out, "store", "query",
                     store_root, "service=web"]) == 0
        capsys.readouterr()
        assert main(["open", out]) == 0

    def test_chrome_format_is_trace_event_json(self, store_root,
                                               capsys):
        rc = main(["obs", "export", "--format", "chrome",
                   "store", "query", store_root, "service=web"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert {"B", "E"} <= phases

    def test_jsonl_format_one_span_per_line(self, store_root, capsys):
        rc = main(["obs", "export", "--format", "jsonl",
                   "store", "query", store_root, "service=web"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        names = {json.loads(line)["name"] for line in lines}
        assert "store.query" in names

    def test_nested_output_redirected_off_stdout(self, store_root,
                                                 capsys):
        main(["obs", "export", "--format", "jsonl",
              "store", "query", store_root, "service=web"])
        captured = capsys.readouterr()
        for line in captured.out.strip().splitlines():
            json.loads(line)  # stdout is pure JSONL, no query rendering

    def test_missing_nested_command_fails(self):
        with pytest.raises(SystemExit):
            main(["obs", "export"])

    def test_sample_every_thins_traces(self, store_root, tmp_path,
                                       capsys):
        rc = main(["obs", "export", "--format", "jsonl",
                   "--sample-every", "1000000",
                   "store", "query", store_root, "service=web"])
        # Everything was sampled away: no spans to export.
        assert rc == 1
        assert "no spans" in capsys.readouterr().err


class TestObsMetrics:
    def test_json_snapshot_shape(self, store_root, capsys):
        rc = main(["obs", "metrics", "--json",
                   "store", "query", store_root, "service=web"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"metrics", "spans", "tracer"}
        assert "obs.spans_recorded" in payload["metrics"]["counters"]
        assert any(row["name"] == "store.query"
                   for row in payload["spans"])

    def test_text_table(self, store_root, capsys):
        assert main(["obs", "metrics",
                     "store", "query", store_root, "service=web"]) == 0
        out = capsys.readouterr().out
        assert "store.query" in out
        assert "total ms" in out

    def test_without_nested_command_reads_current_state(self, capsys):
        assert main(["obs", "metrics", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload


class TestObsWatch:
    def test_watch_runs_command_and_summarizes(self, store_root, capsys):
        rc = main(["obs", "watch", "--interval", "0.1",
                   "store", "query", store_root, "service=web"])
        assert rc == 0
        assert "store.query" in capsys.readouterr().out

    def test_watch_propagates_child_exit_code(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.cli._run_nested", lambda argv: 7)
        rc = main(["obs", "watch", "--interval", "0.05", "engine-stats"])
        capsys.readouterr()
        assert rc == 7

    def test_watch_maps_systemexit_to_exit_code(self, monkeypatch,
                                                capsys):
        def explode(argv):
            raise SystemExit(3)

        monkeypatch.setattr("repro.cli._run_nested", explode)
        rc = main(["obs", "watch", "--interval", "0.05", "engine-stats"])
        capsys.readouterr()
        assert rc == 3

    def test_interrupt_after_child_finished_keeps_child_code(
            self, monkeypatch, capsys):
        """Ctrl-C while the child wraps up must not eat the child's rc."""
        import threading
        import time as time_module

        def wrap_up(argv):
            time_module.sleep(0.3)
            return 5

        monkeypatch.setattr("repro.cli._run_nested", wrap_up)
        real_join = threading.Thread.join
        calls = {"n": 0}

        def flaky_join(self, timeout=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return real_join(self, timeout)

        monkeypatch.setattr(threading.Thread, "join", flaky_join)
        rc = main(["obs", "watch", "--interval", "0.05", "engine-stats"])
        err = capsys.readouterr().err
        assert rc == 5
        assert "interrupted" in err
        assert calls["n"] >= 2  # the worker was joined, not abandoned

    def test_interrupt_with_child_still_running_reports_130(
            self, monkeypatch, capsys):
        import threading
        import time as time_module

        finished = threading.Event()

        def dawdle(argv):
            time_module.sleep(2.0)
            finished.set()
            return 0

        monkeypatch.setattr("repro.cli._run_nested", dawdle)
        real_join = threading.Thread.join
        calls = {"n": 0}

        def flaky_join(self, timeout=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return real_join(self, timeout)

        monkeypatch.setattr(threading.Thread, "join", flaky_join)
        rc = main(["obs", "watch", "--interval", "0.1", "engine-stats"])
        err = capsys.readouterr().err
        assert rc == 130  # 128 + SIGINT: the command never finished
        assert "still running" in err
        finished.wait(5.0)  # let the daemon thread drain before exit


class TestJsonFlags:
    def test_store_stats_json(self, store_root, capsys):
        assert main(["store", "stats", store_root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 1
        assert payload["integrity"]["ok"] is True

    def test_engine_stats_json(self, capsys):
        assert main(["engine-stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"hits", "misses", "hitRate", "capacity"}

    def test_engine_stats_json_with_paths(self, store_root, tmp_path,
                                          collapsed, capsys):
        assert main(["engine-stats", "--json", collapsed]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "passes" in payload
        assert payload["passes"]["coldSeconds"] >= 0
