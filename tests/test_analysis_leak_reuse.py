"""Tests for the leak detector (§VII-C1) and reuse analysis (§VII-C2)."""

import pytest

from repro import ProfileBuilder
from repro.analysis.leak import (analyze_series, detect_leaks, score_series,
                                 suspicious_contexts)
from repro.analysis.reuse import (allocations_with_reuse, fusion_candidates,
                                  reuse_points, reuses_of, uses_of)
from repro.core.monitor import PointKind


class TestSeriesSignals:
    def test_flat_high_series_is_leak_shaped(self):
        signals = analyze_series([100.0] * 10)
        assert signals["retention"] == 1.0
        assert signals["monotonicity"] == 1.0
        assert abs(signals["trend"]) < 1e-9

    def test_growing_series_positive_trend(self):
        signals = analyze_series([float(i) for i in range(1, 11)])
        assert signals["trend"] > 0.1

    def test_reclaiming_series_low_retention(self):
        signals = analyze_series([100.0, 90.0, 60.0, 30.0, 5.0])
        assert signals["retention"] == pytest.approx(0.05)
        assert signals["monotonicity"] == 0.0

    def test_short_series_neutral(self):
        assert analyze_series([5.0])["retention"] == 1.0
        assert analyze_series([])["retention"] == 0.0

    def test_scores_ordered(self):
        leak = score_series([100.0] * 10)
        growth = score_series([10.0 * i for i in range(1, 11)])
        healthy = score_series([100.0, 80.0, 40.0, 10.0, 2.0])
        assert leak > 0.6
        assert growth > 0.6
        assert healthy < 0.5


class TestDetectLeaks:
    def test_grpc_workload_verdicts(self, grpc_profile):
        verdicts = detect_leaks(grpc_profile, "inuse_bytes", min_peak=1.0)
        by_name = {v.context.frame.name: v for v in verdicts}
        assert by_name["bufio.NewReaderSize"].suspicious
        assert by_name["transport.newBufWriter"].suspicious
        assert not by_name["passthrough"].suspicious

    def test_verdicts_sorted_by_score(self, grpc_profile):
        verdicts = detect_leaks(grpc_profile, "inuse_bytes")
        scores = [v.score for v in verdicts]
        assert scores == sorted(scores, reverse=True)

    def test_min_peak_filters_noise(self, grpc_profile):
        all_verdicts = detect_leaks(grpc_profile, "inuse_bytes", min_peak=0.0)
        big_only = detect_leaks(grpc_profile, "inuse_bytes", min_peak=1e9)
        assert len(big_only) < len(all_verdicts)

    def test_suspicious_contexts_helper(self, grpc_profile):
        names = {n.frame.name
                 for n in suspicious_contexts(grpc_profile, "inuse_bytes")}
        assert "bufio.NewReaderSize" in names

    def test_describe_mentions_state(self, grpc_profile):
        verdicts = detect_leaks(grpc_profile, "inuse_bytes", min_peak=1.0)
        text = verdicts[0].describe()
        assert "POTENTIAL LEAK" in text or "healthy" in text

    def test_no_snapshots_no_verdicts(self, simple_profile):
        assert detect_leaks(simple_profile, "cpu") == []


class TestReuse:
    def test_points_found(self, lulesh_reuse):
        assert len(reuse_points(lulesh_reuse)) == 3

    def test_allocations_ranked_by_volume(self, lulesh_reuse):
        allocations = allocations_with_reuse(lulesh_reuse)
        assert len(allocations) == 2
        names = [node.frame.name for node, _ in allocations]
        assert names[0] == "dvdx[]"
        volumes = [v for _, v in allocations]
        assert volumes == sorted(volumes, reverse=True)

    def test_uses_narrow_to_selected_allocation(self, lulesh_reuse):
        allocations = allocations_with_reuse(lulesh_reuse)
        dvdx = allocations[0][0]
        uses = uses_of(lulesh_reuse, dvdx)
        assert len(uses) == 2
        use_names = {node.frame.name for node, _ in uses}
        assert "IntegrateStressForElems" in use_names

    def test_reuses_narrow_to_selected_use(self, lulesh_reuse):
        dvdx = allocations_with_reuse(lulesh_reuse)[0][0]
        use = [node for node, _ in uses_of(lulesh_reuse, dvdx)
               if node.frame.name == "IntegrateStressForElems"][0]
        reuses = reuses_of(lulesh_reuse, dvdx, use)
        assert len(reuses) == 1
        assert reuses[0][0].frame.name == "CalcFBHourglassForceForElems"

    def test_fusion_candidate_lca_guidance(self, lulesh_reuse):
        top = fusion_candidates(lulesh_reuse)[0]
        # The hottest pair's use and reuse share CalcVolumeForceForElems.
        assert "CalcVolumeForceForElems" in top.hoist_target()

    def test_fusion_candidates_sorted(self, lulesh_reuse):
        candidates = fusion_candidates(lulesh_reuse)
        counts = [c.count for c in candidates]
        assert counts == sorted(counts, reverse=True)

    def test_count_metric_error_without_points(self, simple_profile):
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError):
            fusion_candidates(simple_profile)
