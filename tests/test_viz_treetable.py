"""Tests for the tree table view (fold state, sorting, rendering)."""

import pytest

from repro.analysis.transform import top_down
from repro.viz.treetable import TreeTable


@pytest.fixture
def table(simple_profile):
    return TreeTable(top_down(simple_profile))


class TestFoldState:
    def test_initially_only_top_level_visible(self, table):
        names = [row.label() for row in table.rows()]
        assert names == ["main"]

    def test_expand_reveals_children(self, table):
        main = table.tree.find_by_name("main")[0]
        table.expand(main)
        names = [row.label() for row in table.rows()]
        assert names == ["main", "work", "idle"]

    def test_collapse_hides_again(self, table):
        main = table.tree.find_by_name("main")[0]
        table.expand(main)
        table.collapse(main)
        assert [row.label() for row in table.rows()] == ["main"]

    def test_expand_all(self, table):
        table.expand_all()
        assert len(table.rows()) == 4

    def test_expand_all_max_depth(self, table):
        table.expand_all(max_depth=1)
        names = [row.label() for row in table.rows()]
        assert "inner" not in names

    def test_expand_hot_path(self, table):
        path = table.expand_hot_path()
        assert [n.frame.name for n in path] == ["main", "work", "inner"]
        names = [row.label() for row in table.rows()]
        assert "inner" in names

    def test_rows_sorted_by_value(self, table):
        main = table.tree.find_by_name("main")[0]
        table.expand(main)
        rows = table.rows()
        assert rows[1].label() == "work"     # 900 before idle's 100
        assert rows[1].values[0] > rows[2].values[0]


class TestColumns:
    def test_selected_metrics_only(self, simple_profile):
        table = TreeTable(top_down(simple_profile), metrics=["alloc"])
        row = table.rows()[0]
        assert len(row.values) == 1

    def test_exclusive_mode(self, simple_profile):
        table = TreeTable(top_down(simple_profile), inclusive=False)
        main_row = table.rows()[0]
        assert main_row.values[0] == 0.0   # main has no exclusive cpu

    def test_sort_by(self, simple_profile):
        table = TreeTable(top_down(simple_profile))
        table.sort_by("alloc")
        assert table.sort_column == 1

    def test_unknown_metric_rejected(self, simple_profile):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            TreeTable(top_down(simple_profile), metrics=["nope"])


class TestRendering:
    def test_render_text_carets(self, table):
        table.expand_hot_path()
        text = table.render_text()
        assert "▾" in text and "cpu" in text

    def test_render_tsv_parseable(self, table):
        table.expand_all()
        lines = table.render_tsv().splitlines()
        header = lines[0].split("\t")
        assert header == ["depth", "context", "cpu", "alloc"]
        for line in lines[1:]:
            cells = line.split("\t")
            assert len(cells) == 4
            float(cells[2])  # numeric
