"""SelfCheck applied to EasyView's own source (``-m selfcheck_self``).

The dogfooding gate: running the EV4xx analyzer over ``src/`` must
produce exactly the findings recorded (and justified) in
``SELFCHECK_BASELINE.json`` — nothing new, nothing stale.  This is the
same check CI runs via ``easyview selfcheck``; having it in the suite
means a concurrency regression fails ``pytest`` too.  Run just this
sweep with::

    pytest -m selfcheck_self
"""

import os

import pytest

from repro.sa import Baseline, UNREVIEWED, run_selfcheck

pytestmark = pytest.mark.selfcheck_self

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "SELFCHECK_BASELINE.json")
SRC = os.path.join(REPO_ROOT, "src")


@pytest.fixture(scope="module")
def result():
    return run_selfcheck([SRC], baseline=Baseline.load(BASELINE))


class TestSelfCheckSelf:
    def test_src_has_no_findings_beyond_the_baseline(self, result):
        assert result.new == [], (
            "new SelfCheck findings — fix them or waive them with a "
            "justification in SELFCHECK_BASELINE.json:\n%s"
            % "\n".join("  %s %s:%d %s" % (d.rule, d.subject, d.line,
                                           d.message)
                        for d in result.new))

    def test_no_stale_waivers(self, result):
        assert result.stale == [], (
            "stale waivers — the code they excused has changed; drop "
            "them from SELFCHECK_BASELINE.json:\n%s"
            % "\n".join("  %s %s: %s" % (w.rule, w.subject, w.message)
                        for w in result.stale))

    def test_analyzer_actually_swept_the_tree(self, result):
        # Guard against a silent no-op (wrong path, empty walk).
        assert result.files > 100
        assert len(result.waived) == len(result.diagnostics)

    def test_every_waiver_is_justified_for_real(self):
        baseline = Baseline.load(BASELINE)
        assert baseline.waivers, "baseline unexpectedly empty"
        for waiver in baseline.waivers:
            assert waiver.justification != UNREVIEWED, (
                "%s in %s still carries the UNREVIEWED stamp"
                % (waiver.rule, waiver.subject))

    def test_no_parse_errors_in_tree(self, result):
        assert not any(d.rule == "EV400" for d in result.diagnostics)
