"""Tests for the derived-metric formula language."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.formula import (Binary, Call, Num, Ref, derive,
                                    evaluate, evaluate_str, parse, tokenize)
from repro.analysis.transform import top_down
from repro.errors import FormulaError, Span


class TestLexer:
    def test_numbers(self):
        kinds = [(t.kind.value, t.text) for t in tokenize("1 2.5 1e3 .5")]
        assert kinds[:-1] == [("number", "1"), ("number", "2.5"),
                              ("number", "1e3"), ("number", ".5")]

    def test_identifiers_with_dots_and_at(self):
        tokens = tokenize("inclusive.bytes@2")
        assert tokens[0].text == "inclusive.bytes@2"

    def test_backquoted_names(self):
        tokens = tokenize("`cache misses` / cycles")
        assert tokens[0].text == "cache misses"

    def test_unterminated_backquote_raises(self):
        with pytest.raises(FormulaError):
            tokenize("`oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(FormulaError, match="unexpected character"):
            tokenize("a ? b")


class TestParser:
    def test_precedence(self):
        ast = parse("1 + 2 * 3")
        assert isinstance(ast, Binary) and ast.op == "+"
        assert isinstance(ast.right, Binary) and ast.right.op == "*"

    def test_parentheses(self):
        assert evaluate_str("(1 + 2) * 3", {}) == 9.0

    def test_unary_minus(self):
        assert evaluate_str("-3 + 5", {}) == 2.0
        assert evaluate_str("--4", {}) == 4.0

    def test_power_right_associative(self):
        assert evaluate_str("2 ^ 3 ^ 2", {}) == 512.0

    def test_power_binds_tighter_than_unary(self):
        assert evaluate_str("-2 ^ 2", {}) == -4.0

    def test_function_calls(self):
        assert evaluate_str("max(3, 7)", {}) == 7.0
        assert evaluate_str("if(1, 10, 20)", {}) == 10.0
        assert evaluate_str("if(0, 10, 20)", {}) == 20.0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FormulaError):
            parse("1 + 2 3")

    def test_missing_operand_rejected(self):
        with pytest.raises(FormulaError):
            parse("1 +")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(FormulaError):
            parse("(1 + 2")

    def test_wrong_arity_rejected(self):
        with pytest.raises(FormulaError, match="arguments"):
            evaluate_str("max(1)", {})

    def test_unknown_function_rejected(self):
        with pytest.raises(FormulaError, match="unknown function"):
            evaluate_str("frob(1)", {})


class TestEvaluation:
    def test_metric_references(self):
        env = {"cycles": 3000.0, "instructions": 1500.0}
        assert evaluate_str("cycles / instructions", env) == 2.0

    def test_mpki_formula(self):
        env = {"cache_misses": 40.0, "instructions": 10_000.0}
        assert evaluate_str("1000 * cache_misses / instructions", env) == 4.0

    def test_unknown_metric_raises(self):
        with pytest.raises(FormulaError, match="unknown metric"):
            evaluate_str("nope + 1", {"a": 1.0})

    def test_division_by_zero_is_zero(self):
        assert evaluate_str("a / b", {"a": 5.0, "b": 0.0}) == 0.0
        assert evaluate_str("a % b", {"a": 5.0, "b": 0.0}) == 0.0

    def test_log_of_nonpositive_is_zero(self):
        assert evaluate_str("log(0)", {}) == 0.0
        assert evaluate_str("sqrt(-1)", {}) == 0.0

    def test_math_functions(self):
        assert evaluate_str("log2(8)", {}) == 3.0
        assert evaluate_str("log10(100)", {}) == 2.0
        assert evaluate_str("abs(-4)", {}) == 4.0

    @given(st.floats(min_value=-1e9, max_value=1e9),
           st.floats(min_value=-1e9, max_value=1e9))
    def test_addition_matches_python(self, a, b):
        assert evaluate_str("x + y", {"x": a, "y": b}) == pytest.approx(a + b)

    @given(st.integers(min_value=-100, max_value=100),
           st.integers(min_value=-100, max_value=100),
           st.integers(min_value=-100, max_value=100))
    def test_distributive_property(self, a, b, c):
        env = {"a": float(a), "b": float(b), "c": float(c)}
        left = evaluate_str("a * (b + c)", env)
        right = evaluate_str("a * b + a * c", env)
        assert left == pytest.approx(right)


class TestDerive:
    def test_derive_adds_column_per_node(self, simple_profile):
        tree = top_down(simple_profile)
        index = derive(tree, "cpu_us", "cpu / 1000", unit="microseconds")
        work = tree.find_by_name("work")[0]
        assert work.inclusive[index] == pytest.approx(0.9)
        assert tree.schema[index].name == "cpu_us"

    def test_derive_exclusive_mode(self, simple_profile):
        tree = top_down(simple_profile)
        index = derive(tree, "cpu_x", "cpu * 2", inclusive=False)
        work = tree.find_by_name("work")[0]
        assert work.exclusive[index] == 400.0

    def test_derived_column_usable_in_next_formula(self, simple_profile):
        tree = top_down(simple_profile)
        derive(tree, "double", "cpu * 2")
        index = derive(tree, "quad", "double * 2")
        assert tree.root.inclusive[index] == 4000.0


class TestEdgeCases:
    """Satellite coverage: backticks, @N refs, %, ^, zero-division."""

    def test_backquoted_name_evaluates(self):
        env = {"cache misses": 40.0, "instructions": 20.0}
        assert evaluate_str("`cache misses` / instructions", env) == 2.0

    def test_profile_suffix_refs_evaluate(self):
        env = {"bytes@1": 100.0, "bytes@2": 250.0}
        assert evaluate_str("bytes@2 - bytes@1", env) == 150.0

    def test_modulo(self):
        assert evaluate_str("7 % 3", {}) == 1.0
        assert evaluate_str("a % 4", {"a": 10.0}) == 2.0

    def test_power_chain_right_associative_with_refs(self):
        assert evaluate_str("x ^ y ^ z",
                            {"x": 2.0, "y": 3.0, "z": 2.0}) == 512.0

    def test_modulo_by_zero_constant_is_zero(self):
        assert evaluate_str("5 % 0", {}) == 0.0
        assert evaluate_str("5 / 0", {}) == 0.0

    def test_percent_binds_like_multiplication(self):
        assert evaluate_str("1 + 7 % 3", {}) == 2.0


class TestSpans:
    """Every FormulaError carries the offending character span."""

    def test_lex_error_span_points_at_character(self):
        with pytest.raises(FormulaError) as info:
            tokenize("a ? b")
        assert info.value.span is not None
        assert "a ? b"[info.value.span.start] == "?"

    def test_unterminated_backquote_span(self):
        with pytest.raises(FormulaError) as info:
            tokenize("a + `oops")
        assert info.value.span.start == 4

    def test_parse_error_span(self):
        with pytest.raises(FormulaError) as info:
            parse("cycles + * 2")
        assert "cycles + * 2"[info.value.span.start] == "*"

    def test_trailing_garbage_span(self):
        with pytest.raises(FormulaError) as info:
            parse("1 2")
        assert info.value.span.start == 2

    def test_unknown_metric_error_span(self):
        with pytest.raises(FormulaError) as info:
            evaluate_str("a + missing", {"a": 1.0})
        span = info.value.span
        assert "a + missing"[span.start:span.end] == "missing"

    def test_arity_error_span_covers_call(self):
        with pytest.raises(FormulaError) as info:
            evaluate_str("1 + max(2)", {})
        span = info.value.span
        assert "1 + max(2)"[span.start:span.end] == "max(2)"

    def test_ast_nodes_carry_spans(self):
        ast = parse("cycles + max(1, 2)")
        assert ast.span.slice("cycles + max(1, 2)") == "cycles + max(1, 2)"
        assert ast.left.span.slice("cycles + max(1, 2)") == "cycles"
        assert ast.right.span.slice("cycles + max(1, 2)") == "max(1, 2)"

    def test_token_spans_cover_text(self):
        tokens = tokenize("ab + `c d`")
        assert tokens[0].span() == Span(0, 2)
        assert tokens[2].span() == Span(5, 10)  # includes the backquotes
