"""repro.obs.tracer: nesting, sampling, the ring, and thread-safety.

The thread-safety tests pin down the contract the engine instrumentation
relies on: spans opened inside :class:`~repro.engine.parallel.WorkerPool`
tasks attach to the span that *submitted* the batch (the current span is
a ``contextvars.ContextVar`` and the pool copies the submitting context
into its workers), and a full ring drops the *oldest* span while
incrementing ``obs.spans_dropped``.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.parallel import WorkerPool
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, env_enabled


@pytest.fixture
def tracer():
    return Tracer(enabled=True, registry=MetricsRegistry())


class TestNesting:
    def test_child_attaches_to_enclosing_span(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]

    def test_siblings_share_a_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = tracer.spans()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_separate_roots_get_separate_traces(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id
        assert first.parent_id is None

    def test_attributes_and_set(self, tracer):
        with tracer.span("op", service="web") as span:
            span.set("seq", 7)
        recorded, = tracer.spans()
        assert recorded.attributes == {"service": "web", "seq": 7}

    def test_exception_records_error_and_propagates(self, tracer):
        with pytest.raises(KeyError):
            with tracer.span("doomed"):
                raise KeyError("x")
        recorded, = tracer.spans()
        assert recorded.error == "KeyError"

    def test_durations_are_monotonic_nonnegative(self, tracer):
        with tracer.span("timed"):
            pass
        assert tracer.spans()[0].duration_ns >= 0

    def test_current_span_introspection(self, tracer):
        assert tracer.current_span() is None
        assert tracer.current_trace_id() is None
        with tracer.span("live") as span:
            assert tracer.current_span() is span
            assert tracer.current_trace_id() == span.trace_id
        assert tracer.current_span() is None

    def test_decorator(self, tracer):
        @tracer.trace("custom.name")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert tracer.spans()[0].name == "custom.name"

    def test_to_dict_shape(self, tracer):
        with tracer.span("op", k="v"):
            pass
        payload = tracer.spans()[0].to_dict()
        assert payload["name"] == "op"
        assert payload["attributes"] == {"k": "v"}
        for key in ("traceId", "spanId", "parentId", "startWallNanos",
                    "durationNanos", "thread"):
            assert key in payload


class TestDisabled:
    def test_disabled_span_is_shared_null_context(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b", attr=1)
        assert first is second  # one shared object: no per-call allocation
        with first as span:
            assert span is None
        assert tracer.spans() == []

    def test_env_enabled(self):
        assert env_enabled({"EASYVIEW_OBS": "1"})
        assert env_enabled({"EASYVIEW_OBS": "true"})
        assert env_enabled({"EASYVIEW_OBS": " ON "})
        assert not env_enabled({"EASYVIEW_OBS": "0"})
        assert not env_enabled({})


class TestSampling:
    def test_keep_every_nth_root(self):
        tracer = Tracer(enabled=True, sample_every=3,
                        registry=MetricsRegistry())
        for i in range(9):
            with tracer.span("root-%d" % i):
                pass
        names = [span.name for span in tracer.spans()]
        assert names == ["root-0", "root-3", "root-6"]

    def test_unsampled_root_suppresses_whole_subtree(self):
        tracer = Tracer(enabled=True, sample_every=2,
                        registry=MetricsRegistry())
        with tracer.span("kept"):
            with tracer.span("kept.child"):
                pass
        with tracer.span("skipped"):
            with tracer.span("skipped.child"):
                pass
        names = {span.name for span in tracer.spans()}
        assert names == {"kept", "kept.child"}

    def test_sampling_restores_context_after_unsampled_trace(self):
        tracer = Tracer(enabled=True, sample_every=2,
                        registry=MetricsRegistry())
        with tracer.span("kept"):
            pass
        with tracer.span("dropped"):
            pass
        with tracer.span("kept-again") as span:
            assert span is not None
            assert span.parent_id is None

    def test_invalid_settings_raise(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestRing:
    def test_overflow_drops_oldest_and_counts(self):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, capacity=3, registry=registry)
        for i in range(5):
            with tracer.span("span-%d" % i):
                pass
        names = [span.name for span in tracer.spans()]
        assert names == ["span-2", "span-3", "span-4"]  # oldest dropped
        assert registry.counter("obs.spans_dropped").value == 2
        assert registry.counter("obs.spans_recorded").value == 5

    def test_clear_empties_ring_but_keeps_counters(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.registry.counter("obs.spans_recorded").value == 1

    def test_configure_shrink_drops_oldest(self, tracer):
        for i in range(4):
            with tracer.span("s%d" % i):
                pass
        tracer.configure(capacity=2)
        assert [span.name for span in tracer.spans()] == ["s2", "s3"]
        assert tracer.registry.counter("obs.spans_dropped").value == 2

    def test_len(self, tracer):
        assert len(tracer) == 0
        with tracer.span("one"):
            pass
        assert len(tracer) == 1


class TestThreadSafety:
    def test_worker_pool_spans_attach_to_submitting_span(self, tracer):
        """A span opened inside a pooled task is a child of the span that
        submitted the batch — context flows through WorkerPool.map."""
        pool = WorkerPool(max_workers=4)
        try:
            def item_work(i):
                with tracer.span("item"):
                    return i * i

            with tracer.span("batch") as batch:
                results = pool.map(item_work, list(range(8)))
            assert results == [i * i for i in range(8)]
        finally:
            pool.shutdown()
        items = [s for s in tracer.spans() if s.name == "item"]
        assert len(items) == 8
        assert all(span.parent_id == batch.span_id for span in items)
        assert all(span.trace_id == batch.trace_id for span in items)

    def test_worker_pool_inline_path_also_nests(self, tracer):
        pool = WorkerPool(max_workers=0)  # inline fallback
        def item_work(i):
            with tracer.span("item"):
                return i

        with tracer.span("batch") as batch:
            pool.map(item_work, [1, 2])
        items = [s for s in tracer.spans() if s.name == "item"]
        assert all(span.parent_id == batch.span_id for span in items)

    def test_concurrent_recording_is_complete(self):
        """Many threads tracing at once: every span lands, none lost."""
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, capacity=10_000, registry=registry)

        def hammer(worker):
            for i in range(100):
                with tracer.span("w%d-%d" % (worker, i)):
                    pass

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans()) == 800
        assert registry.counter("obs.spans_recorded").value == 800
        assert registry.counter("obs.spans_dropped").value == 0

    def test_concurrent_overflow_accounting_balances(self):
        """Under overflow, recorded - dropped == ring occupancy."""
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, capacity=50, registry=registry)

        def hammer():
            for _ in range(200):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        recorded = registry.counter("obs.spans_recorded").value
        dropped = registry.counter("obs.spans_dropped").value
        assert recorded == 800
        assert recorded - dropped == len(tracer.spans()) == 50

    def test_spans_in_unrelated_threads_are_separate_roots(self, tracer):
        """Without a submitting span, a thread's spans root their own
        traces instead of attaching to another thread's current span."""
        def other_thread():
            with tracer.span("other"):
                pass

        with tracer.span("main-root"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        other = [s for s in tracer.spans() if s.name == "other"][0]
        assert other.parent_id is None
