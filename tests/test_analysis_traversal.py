"""Tests for traversal orders, visitor actions, and ancestor queries."""

import pytest

from repro.analysis.traversal import (Order, VisitAction, ancestors, bfs,
                                      common_ancestor, iterate, postorder,
                                      preorder, visit)
from repro.core.cct import CCT
from repro.core.frame import intern_frame


@pytest.fixture
def tree():
    cct = CCT()
    cct.add_path([intern_frame(n) for n in ("main", "a", "b")])
    cct.add_path([intern_frame(n) for n in ("main", "a", "c")])
    cct.add_path([intern_frame(n) for n in ("main", "d")])
    return cct


def names(nodes):
    return [n.frame.name for n in nodes]


class TestOrders:
    def test_preorder_parents_first(self, tree):
        order = names(preorder(tree.root))
        assert order.index("main") < order.index("a") < order.index("b")
        assert len(order) == 6

    def test_postorder_children_first(self, tree):
        order = names(postorder(tree.root))
        assert order.index("b") < order.index("a") < order.index("main")
        assert order[-1] == "<root>"

    def test_bfs_level_by_level(self, tree):
        order = names(bfs(tree.root))
        assert order[0] == "<root>"
        assert order[1] == "main"
        assert set(order[2:4]) == {"a", "d"}
        assert set(order[4:]) == {"b", "c"}

    def test_iterate_dispatch(self, tree):
        assert names(iterate(tree.root, Order.PRE)) == names(
            preorder(tree.root))
        assert names(iterate(tree.root, Order.POST)) == names(
            postorder(tree.root))
        assert names(iterate(tree.root, Order.BFS)) == names(bfs(tree.root))

    def test_postorder_deep_tree_no_recursion_error(self):
        cct = CCT()
        cct.add_path([intern_frame("f%d" % i) for i in range(3000)])
        assert len(list(postorder(cct.root))) == 3001


class TestVisit:
    def test_visit_counts_nodes(self, tree):
        assert visit(tree.root, lambda n: None) == 6

    def test_skip_prunes_subtree(self, tree):
        visited = []

        def callback(node):
            visited.append(node.frame.name)
            if node.frame.name == "a":
                return VisitAction.SKIP
            return VisitAction.CONTINUE

        visit(tree.root, callback)
        assert "a" in visited
        assert "b" not in visited and "c" not in visited
        assert "d" in visited

    def test_stop_aborts(self, tree):
        count = visit(tree.root, lambda n: VisitAction.STOP)
        assert count == 1

    def test_stop_in_postorder(self, tree):
        count = visit(tree.root,
                      lambda n: VisitAction.STOP if n.frame.name == "a"
                      else None, order=Order.POST)
        assert 0 < count < 6


class TestAncestry:
    def test_ancestors_to_root(self, tree):
        b = tree.find_by_name("b")[0]
        assert names(ancestors(b)) == ["a", "main", "<root>"]

    def test_common_ancestor_siblings(self, tree):
        b = tree.find_by_name("b")[0]
        c = tree.find_by_name("c")[0]
        lca = common_ancestor(b, c)
        assert lca.frame.name == "a"

    def test_common_ancestor_of_node_and_its_ancestor(self, tree):
        a = tree.find_by_name("a")[0]
        b = tree.find_by_name("b")[0]
        assert common_ancestor(b, a) is a
        assert common_ancestor(a, b) is a

    def test_common_ancestor_distant(self, tree):
        b = tree.find_by_name("b")[0]
        d = tree.find_by_name("d")[0]
        assert common_ancestor(b, d).frame.name == "main"
