"""Tests for per-thread operations and the programming pane."""

import pytest

from repro import ProfileBuilder
from repro.analysis.pane import ProgrammingPane
from repro.analysis.threads import (aggregate_threads, imbalance,
                                    is_threaded, split_by_thread,
                                    thread_roots, thread_totals)
from repro.analysis.transform import top_down
from repro.core.frame import FrameKind, intern_frame
from repro.errors import AnalysisError


def threaded_profile():
    builder = ProfileBuilder(tool="t")
    cpu = builder.metric("cpu", unit="nanoseconds")

    def thread(name):
        return intern_frame(name, kind=FrameKind.THREAD)

    builder.sample([thread("worker-0"), ("serve", "s.c", 1),
                    ("handle", "s.c", 9)], {cpu: 600})
    builder.sample([thread("worker-0"), ("serve", "s.c", 1),
                    ("log", "s.c", 20)], {cpu: 100})
    builder.sample([thread("worker-1"), ("serve", "s.c", 1),
                    ("handle", "s.c", 9)], {cpu: 300})
    return builder.build()


class TestThreads:
    def test_thread_roots_found(self):
        profile = threaded_profile()
        names = {n.frame.name for n in thread_roots(profile)}
        assert names == {"worker-0", "worker-1"}
        assert is_threaded(profile)

    def test_unthreaded_profile(self, simple_profile):
        assert not is_threaded(simple_profile)
        with pytest.raises(AnalysisError):
            split_by_thread(simple_profile)

    def test_threads_under_process_context(self):
        # Austin layout: process → thread → frames.
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        builder.sample([intern_frame("process 9", kind=FrameKind.THREAD),
                        intern_frame("thread 1", kind=FrameKind.THREAD),
                        ("f", "x.c", 1)], {cpu: 5})
        roots = thread_roots(builder.build())
        # The process context itself plus the nested thread.
        assert {n.frame.name for n in roots} >= {"process 9"}

    def test_split_reroots_subtrees(self):
        parts = split_by_thread(threaded_profile())
        assert set(parts) == {"worker-0", "worker-1"}
        w0 = parts["worker-0"]
        assert w0.total("cpu") == 700.0
        handle = w0.find_by_name("handle")[0]
        assert [f.name for f in handle.call_path()] == ["serve", "handle"]
        assert w0.meta.attributes["thread"] == "worker-0"

    def test_split_profiles_are_independent(self):
        parts = split_by_thread(threaded_profile())
        parts["worker-0"].find_by_name("serve")[0].metrics[0] = 0.0
        assert parts["worker-1"].total("cpu") == 300.0

    def test_totals_and_imbalance(self):
        profile = threaded_profile()
        totals = thread_totals(profile, "cpu")
        assert totals == {"worker-0": 700.0, "worker-1": 300.0}
        # mean = 500, max = 700 → 1.4.
        assert imbalance(profile, "cpu") == pytest.approx(1.4)

    def test_balanced_imbalance_is_one(self):
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        for name in ("t0", "t1"):
            builder.sample([intern_frame(name, kind=FrameKind.THREAD),
                            ("f", "x.c", 1)], {cpu: 50})
        assert imbalance(builder.build(), "cpu") == pytest.approx(1.0)

    def test_aggregate_threads_histograms(self):
        tree = aggregate_threads(threaded_profile())
        handle = tree.find_by_name("handle")[0]
        assert sorted(handle.histogram[0]) == [300.0, 600.0]
        assert handle.inclusive[tree.schema.index_of("cpu:sum")] == 900.0

    def test_speedscope_multithread_integration(self):
        import json
        from repro.converters import parse_bytes
        payload = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": "main"}, {"name": "work"}]},
            "profiles": [
                {"type": "sampled", "name": "t0", "unit": "none",
                 "samples": [[0, 1]], "weights": [10]},
                {"type": "sampled", "name": "t1", "unit": "none",
                 "samples": [[0, 1]], "weights": [30]},
            ],
        }
        profile = parse_bytes(json.dumps(payload).encode())
        assert is_threaded(profile)
        assert imbalance(profile, "weight") == pytest.approx(1.5)


class TestProgrammingPane:
    def test_emit_and_metric_access(self, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        result = pane.run(
            "for n in find('work'):\n"
            "    emit('work cpu', value(n, 'cpu'))\n")
        assert result.output == ["work cpu 900.0"]

    def test_print_is_captured(self, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        result = pane.run("print('total', total('cpu'))")
        assert result.output == ["total 1000.0"]

    def test_derive_through_pane(self, simple_profile):
        tree = top_down(simple_profile)
        result = ProgrammingPane(tree).run(
            "derive('cpu_ms', 'cpu / 1000000', unit='milliseconds')")
        assert result.derived == ["cpu_ms"]
        assert "cpu_ms" in tree.schema

    def test_elide_hook_recorded_and_applied(self, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        result = pane.run(
            "elide(lambda node: node.frame.name == 'idle')")
        tree = top_down(simple_profile,
                        customization=result.customization)
        assert not tree.find_by_name("idle")

    def test_result_variable(self, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        outcome = pane.run(
            "result = sorted(n.frame.name for n in nodes() "
            "if exclusive(n, 'cpu') > 0)")
        assert outcome.result == ["idle", "inner", "work"]

    @pytest.mark.parametrize("script", [
        "import os",
        "().__class__",
        "open('/etc/passwd')",
        "eval('1')",
        "exec('pass')",
        "getattr(tree, 'schema')",
    ])
    def test_banned_constructs_rejected(self, script, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        with pytest.raises(AnalysisError, match="may not use"):
            pane.run(script)

    def test_runtime_errors_wrapped(self, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        with pytest.raises(AnalysisError, match="ZeroDivisionError"):
            pane.run("x = 1 / 0")

    def test_search_exposed(self, simple_profile):
        pane = ProgrammingPane(top_down(simple_profile))
        result = pane.run("emit(len(search('i')))")
        assert result.output == ["3"]   # main, inner, idle
