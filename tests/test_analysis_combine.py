"""Tests for combining profiles from different tools (§VII-C2)."""

import pytest

from repro import ProfileBuilder
from repro.analysis.combine import combine
from repro.analysis.reuse import allocations_with_reuse
from repro.analysis.transform import top_down
from repro.core.monitor import PointKind
from repro.errors import AnalysisError


def hpctoolkit_like():
    builder = ProfileBuilder(tool="hpctoolkit")
    cpu = builder.metric("cpu_time", unit="nanoseconds")
    builder.sample([("main", "app.cc", 3), ("compute", "app.cc", 40)],
                   {cpu: 900.0})
    builder.sample([("main", "app.cc", 3), ("io", "app.cc", 80)],
                   {cpu: 100.0})
    return builder.build()


def drcctprof_like():
    builder = ProfileBuilder(tool="drcctprof")
    accesses = builder.metric("accesses", unit="count")
    # Same functions, but the tool resolved slightly different lines.
    builder.sample([("main", "app.cc", 4), ("compute", "app.cc", 41)],
                   {accesses: 5000.0})
    builder.pair_point(PointKind.USE_REUSE,
                       [[("main", "app.cc", 4), ("compute", "app.cc", 41),
                         ("buf[]", "app.cc", 41)],
                        [("main", "app.cc", 4), ("compute", "app.cc", 41)],
                        [("main", "app.cc", 4), ("compute", "app.cc", 41)]],
                       {accesses: 4000.0})
    return builder.build()


class TestCombine:
    def test_contexts_merge_across_tools(self):
        merged = combine([hpctoolkit_like(), drcctprof_like()])
        computes = merged.find_by_name("compute")
        # Line 40 vs 41 must not split the context.
        assert len(computes) == 1
        node = computes[0]
        assert node.exclusive(merged.schema.index_of("cpu_time")) == 900.0
        assert node.exclusive(merged.schema.index_of("accesses")) == 5000.0

    def test_schemas_concatenate(self):
        merged = combine([hpctoolkit_like(), drcctprof_like()])
        assert set(merged.schema.names()) == {"cpu_time", "accesses"}
        assert merged.meta.tool == "hpctoolkit+drcctprof"

    def test_points_reanchored(self):
        merged = combine([hpctoolkit_like(), drcctprof_like()])
        allocations = allocations_with_reuse(merged)
        assert allocations
        alloc_node = allocations[0][0]
        # The reuse point's contexts live in the merged tree.
        assert alloc_node in list(merged.nodes())

    def test_unified_view_renders_both_metrics(self):
        merged = combine([hpctoolkit_like(), drcctprof_like()])
        tree = top_down(merged)
        compute = tree.find_by_name("compute")[0]
        assert compute.inclusive[tree.schema.index_of("cpu_time")] == 900.0
        # 5000 sampled accesses; the reuse pair's 4000 live on the point.
        assert compute.inclusive[tree.schema.index_of("accesses")] == 5000.0

    def test_conflicting_metric_names_disambiguated(self):
        a = ProfileBuilder(tool="ta")
        a.metric("time", unit="nanoseconds")
        a.sample(["f"], {0: 1.0})
        b = ProfileBuilder(tool="tb")
        b.metric("time", unit="milliseconds")   # same name, different unit
        b.sample(["f"], {0: 2.0})
        merged = combine([a.build(), b.build()])
        assert "time" in merged.schema
        assert "tb:time" in merged.schema

    def test_identical_descriptors_share_column(self):
        a = ProfileBuilder(tool="ta")
        a.metric("cpu", unit="nanoseconds")
        a.sample(["f"], {0: 1.0})
        b = ProfileBuilder(tool="tb")
        b.metric("cpu", unit="nanoseconds")
        b.sample(["f"], {0: 2.0})
        merged = combine([a.build(), b.build()])
        assert merged.schema.names().count("cpu") == 1
        assert merged.total("cpu") == 3.0

    def test_lulesh_case_study_combination(self, lulesh, lulesh_reuse):
        """Fig. 6 + Fig. 7 profiles in one unified view."""
        merged = combine([lulesh, lulesh_reuse],
                         tool_names=["hpctoolkit", "drcctprof"])
        assert allocations_with_reuse(merged)
        assert merged.total("cpu_time") > 0

    def test_zero_profiles_rejected(self):
        with pytest.raises(AnalysisError):
            combine([])

    def test_tool_names_length_checked(self):
        with pytest.raises(AnalysisError):
            combine([hpctoolkit_like()], tool_names=["a", "b"])
