"""Tests for converter registration, sniffing, and dispatch."""

import pytest

from repro.converters import base, names, open_profile, parse_bytes
from repro.errors import ConversionError, FormatError


class TestRegistry:
    def test_all_eleven_formats_registered(self):
        expected = {"pprof", "cloud-profiler", "speedscope", "chrome",
                    "pyinstrument", "scalene", "hpctoolkit", "gprof",
                    "tau", "perf", "collapsed"}
        assert expected <= set(names())

    def test_get_unknown_raises(self):
        with pytest.raises(ConversionError, match="unknown format"):
            base.get("nonexistent")

    def test_double_registration_rejected(self):
        converter = base.get("pprof")
        with pytest.raises(ConversionError):
            base.register(converter)


class TestDetection:
    def test_extension_routes_first(self, small_pprof_bytes):
        converter = base.detect(small_pprof_bytes, path="x.pb.gz")
        assert converter.name == "pprof"

    def test_content_sniffing_without_extension(self, small_pprof_bytes):
        assert base.detect(small_pprof_bytes).name == "pprof"

    def test_collapsed_sniffed(self):
        assert base.detect(b"a;b;c 12\n").name == "collapsed"

    def test_undetectable_raises(self):
        with pytest.raises(FormatError, match="cannot detect"):
            base.detect(b"\x00\x99 unknown binary nonsense \xff")

    def test_explicit_format_overrides(self):
        # Valid collapsed text, but forced through the TAU parser → error.
        with pytest.raises(FormatError):
            parse_bytes(b"a;b 1\n", format="tau")

    def test_tool_name_tagged(self):
        profile = parse_bytes(b"main;f 3\n")
        assert profile.meta.tool == "collapsed"


class TestOpenProfile:
    def test_open_profile_from_path(self, tmp_path, small_pprof_bytes):
        path = tmp_path / "p.pb.gz"
        path.write_bytes(small_pprof_bytes)
        profile = open_profile(str(path))
        assert profile.node_count() > 100

    def test_top_level_reexport(self, tmp_path):
        import repro
        path = tmp_path / "stacks.folded"
        path.write_text("main;hot 10\n")
        profile = repro.open_profile(str(path))
        assert profile.total("samples") == 10
