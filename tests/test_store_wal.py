"""Write-ahead log: encode/scan round trips and crash recovery.

The load-bearing test here is the byte-level truncation property: for a
WAL holding several records, *every* prefix length of the file must
recover exactly the fully-committed records and nothing else.
"""

from __future__ import annotations

import os
import zlib

from repro.store.wal import (RECORD_MAGIC, WalRecord, WriteAheadLog, scan,
                             _HEADER)


def _record(seq: int, service: str = "api") -> WalRecord:
    return WalRecord(service=service, ptype="cpu",
                     labels={"region": "us", "run": str(seq)},
                     time_nanos=1_700_000_000_000_000_000 + seq,
                     duration_nanos=5_000, blob=b"profile-bytes-%d" % seq,
                     seq=seq)


class TestRecordCodec:
    def test_payload_round_trip(self):
        original = _record(7)
        decoded = WalRecord.from_payload(original.payload())
        assert decoded == original

    def test_empty_labels_round_trip(self):
        record = WalRecord(service="svc", blob=b"x", seq=1)
        assert WalRecord.from_payload(record.payload()).labels == {}

    def test_encode_is_header_plus_payload(self):
        record = _record(1)
        encoded = record.encode()
        magic, length, crc = _HEADER.unpack_from(encoded)
        assert magic == RECORD_MAGIC
        assert length == len(encoded) - _HEADER.size
        assert crc == zlib.crc32(encoded[_HEADER.size:])


class TestScan:
    def test_scan_empty(self):
        assert scan(b"") == ([], 0)

    def test_scan_multiple_records(self):
        records = [_record(i) for i in range(1, 4)]
        data = b"".join(r.encode() for r in records)
        decoded, valid = scan(data)
        assert decoded == records
        assert valid == len(data)

    def test_scan_stops_at_bad_magic(self):
        good = _record(1).encode()
        decoded, valid = scan(good + b"XX garbage after")
        assert [r.seq for r in decoded] == [1]
        assert valid == len(good)

    def test_scan_stops_at_bad_crc(self):
        good = _record(1).encode()
        torn = bytearray(good + _record(2).encode())
        torn[-1] ^= 0xFF  # flip one payload byte of the second record
        decoded, valid = scan(bytes(torn))
        assert [r.seq for r in decoded] == [1]
        assert valid == len(good)

    def test_scan_rejects_absurd_length(self):
        header = _HEADER.pack(RECORD_MAGIC, (1 << 31) + 1, 0)
        assert scan(header + b"\x00" * 64) == ([], 0)

    def test_truncation_at_every_byte_offset(self):
        """The crash-recovery property, exhaustively.

        Truncating the log at every byte offset inside the *last* record
        must recover exactly the earlier records; truncating inside
        earlier records recovers only the records fully before the cut.
        """
        records = [_record(i) for i in range(1, 4)]
        encoded = [r.encode() for r in records]
        data = b"".join(encoded)
        boundaries = []  # (offset just past record i, records committed)
        pos = 0
        for i, chunk in enumerate(encoded):
            pos += len(chunk)
            boundaries.append((pos, i + 1))

        last_start = len(data) - len(encoded[-1])
        for cut in range(last_start, len(data) + 1):
            decoded, valid = scan(data[:cut])
            expect = 3 if cut == len(data) else 2
            assert [r.seq for r in decoded] == list(range(1, expect + 1)), \
                "cut at byte %d" % cut
            assert valid == boundaries[expect - 1][0]

        # Spot-check cuts inside the first record too.
        for cut in (0, 1, _HEADER.size, len(encoded[0]) - 1):
            decoded, valid = scan(data[:cut])
            assert decoded == [] and valid == 0


class TestWriteAheadLog:
    def test_append_and_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(_record(1))
            wal.append(_record(2))
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.records] == [1, 2]
            assert wal.recovered_torn_bytes == 0

    def test_open_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(_record(1))
        committed = os.path.getsize(path)
        with open(path, "ab") as handle:  # simulate a torn append
            handle.write(_record(2).encode()[:-3])
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.records] == [1]
            assert wal.recovered_torn_bytes > 0
        assert os.path.getsize(path) == committed

    def test_recovery_then_append_is_clean(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(_record(1))
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(_record(2))
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.records] == [1, 2]

    def test_reset_empties_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(_record(1))
            wal.reset()
            assert len(wal) == 0
            wal.append(_record(2))
        with WriteAheadLog(path, fsync=False) as wal:
            assert [r.seq for r in wal.records] == [2]
