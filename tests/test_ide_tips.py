"""Tests for the optimization tip engine and its hover integration."""

import pytest

from repro.ide.mock_ide import MockIDE
from repro.ide.tips import TipEngine
from repro.profilers.workloads import (false_sharing_workload,
                                       grpc_client_profile,
                                       lulesh_reuse_profile,
                                       redundancy_workload)


class TestBuiltinAdvisors:
    def test_leak_tips_on_allocation_sites(self, grpc_profile):
        tips = TipEngine().collect(grpc_profile)
        # bufio.NewReaderSize allocates at bufio.go:60.
        assert ("bufio.go", 60) in tips
        assert any("potential leak" in t for t in tips[("bufio.go", 60)])
        # The healthy passthrough site gets no leak tip.
        leaky_only = [t for t in tips.get(("resolver.go", 21), [])
                      if "potential leak" in t]
        assert not leaky_only

    def test_reuse_tips_on_use_and_reuse_sites(self, lulesh_reuse):
        tips = TipEngine().collect(lulesh_reuse)
        flat = [t for bucket in tips.values() for t in bucket]
        assert any("fusing the loops" in t for t in flat)
        assert any("CalcVolumeForceForElems" in t for t in flat)

    def test_redundancy_tips(self):
        tips = TipEngine().collect(redundancy_workload(scale=1))
        assert ("solver.c", 80) in tips
        assert any("dead store" in t for t in tips[("solver.c", 80)])

    def test_sharing_tips(self):
        tips = TipEngine().collect(false_sharing_workload(scale=1))
        flat = [t for bucket in tips.values() for t in bucket]
        assert any("pad or realign" in t for t in flat)

    def test_clean_profile_has_no_tips(self, simple_profile):
        assert TipEngine().collect(simple_profile) == {}

    def test_tips_deduplicated(self, grpc_profile):
        tips = TipEngine().collect(grpc_profile)
        for bucket in tips.values():
            assert len(bucket) == len(set(bucket))


class TestCustomAdvisors:
    def test_user_advisor_registered(self, simple_profile):
        engine = TipEngine(include_builtin=False)
        engine.add_advisor(
            lambda profile: [("app.c", 42, "try caching this")])
        assert engine.tips_for(simple_profile, "app.c", 42) == \
            ["try caching this"]


class TestHoverIntegration:
    def test_hover_carries_leak_tip(self, grpc_profile):
        ide = MockIDE()
        opened = ide.session.open(grpc_profile)
        hover = ide.session.show_hover(opened.id, "top_down",
                                       "bufio.go", 60)
        assert hover is not None
        assert any("potential leak" in line for line in hover.lines)

    def test_hover_without_findings_has_no_tips(self, simple_profile):
        ide = MockIDE()
        opened = ide.session.open(simple_profile)
        hover = ide.session.show_hover(opened.id, "top_down", "app.c", 42)
        assert hover is not None
        assert not any("tip:" in line for line in hover.lines)
