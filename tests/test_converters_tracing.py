"""Tests for the Austin and Chrome Trace Event converters."""

import json

import pytest

from repro.converters import parse_bytes
from repro.converters.austin import parse as parse_austin
from repro.converters.chrome_trace import parse as parse_trace
from repro.errors import FormatError


def as_bytes(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


class TestAustin:
    SAMPLE = (b"P4242;T0x7f1;app.py:main:10;app.py:work:40 642\n"
              b"P4242;T0x7f1;app.py:main:10;app.py:work:40 358\n"
              b"P4242;T0x7f2;app.py:main:10;app.py:idle:70 100\n")

    def test_totals_and_attribution(self):
        profile = parse_austin(self.SAMPLE)
        assert profile.total("wall_time") == 1100
        work = profile.find_by_name("work")[0]
        assert work.frame.file == "app.py"
        assert work.frame.line == 40

    def test_process_and_thread_contexts(self):
        from repro.core.frame import FrameKind
        profile = parse_austin(self.SAMPLE)
        threads = [n for n in profile.nodes()
                   if n.frame.kind is FrameKind.THREAD]
        names = {n.frame.name for n in threads}
        assert "process 4242" in names
        assert "thread 0x7f1" in names and "thread 0x7f2" in names

    def test_sniffed_from_registry(self):
        profile = parse_bytes(self.SAMPLE)
        assert profile.meta.tool == "austin"

    def test_plain_collapsed_not_misdetected(self):
        # No P/T prefix → the generic collapsed converter should claim it.
        profile = parse_bytes(b"main;work 10\n")
        assert profile.meta.tool == "collapsed"

    def test_comments_skipped(self):
        profile = parse_austin(b"# austin 3.6\n" + self.SAMPLE)
        assert profile.total("wall_time") == 1100

    def test_bad_value_rejected(self):
        with pytest.raises(FormatError, match="non-numeric"):
            parse_austin(b"P1;T1;a.py:f:1 xyz\n")

    def test_empty_rejected(self):
        with pytest.raises(FormatError):
            parse_austin(b"# nothing\n")


class TestChromeTrace:
    def trace(self):
        return {"traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
             "args": {"name": "MainThread"}},
            {"ph": "B", "name": "main", "pid": 1, "tid": 2, "ts": 0},
            {"ph": "B", "name": "work", "pid": 1, "tid": 2, "ts": 100},
            {"ph": "X", "name": "inner", "pid": 1, "tid": 2, "ts": 150,
             "dur": 200},
            {"ph": "E", "pid": 1, "tid": 2, "ts": 600},
            {"ph": "E", "pid": 1, "tid": 2, "ts": 1000},
        ]}

    def test_nesting_reconstructed(self):
        profile = parse_trace(as_bytes(self.trace()))
        inner = profile.find_by_name("inner")[0]
        path = [f.name for f in inner.call_path()]
        assert path == ["MainThread", "main", "work", "inner"]

    def test_self_time_attribution(self):
        profile = parse_trace(as_bytes(self.trace()))
        work = profile.find_by_name("work")[0]
        assert work.exclusive(0) == 300.0     # 500 total − 200 nested
        main = profile.find_by_name("main")[0]
        assert main.exclusive(0) == 500.0     # 1000 − 500 nested
        assert profile.total("wall_time") == 1000.0

    def test_slice_counts(self):
        profile = parse_trace(as_bytes(self.trace()))
        assert profile.total("slices") == 3

    def test_bare_array_flavor(self):
        events = self.trace()["traceEvents"]
        profile = parse_trace(as_bytes(events))
        assert profile.total("wall_time") == 1000.0

    def test_multiple_tracks_independent(self):
        events = self.trace()["traceEvents"]
        events.extend([
            {"ph": "X", "name": "io", "pid": 1, "tid": 9, "ts": 0,
             "dur": 400},
        ])
        profile = parse_trace(as_bytes({"traceEvents": events}))
        io = profile.find_by_name("io")[0]
        assert io.parent.frame.name == "pid 1 tid 9"
        assert profile.total("wall_time") == 1400.0

    def test_unbalanced_end_rejected(self):
        with pytest.raises(FormatError, match="closes nothing"):
            parse_trace(as_bytes({"traceEvents": [
                {"ph": "E", "pid": 1, "tid": 1, "ts": 5}]}))

    def test_unclosed_slice_rejected(self):
        with pytest.raises(FormatError, match="unclosed"):
            parse_trace(as_bytes({"traceEvents": [
                {"ph": "B", "name": "x", "pid": 1, "tid": 1, "ts": 5}]}))

    def test_no_duration_events_rejected(self):
        with pytest.raises(FormatError, match="no duration"):
            parse_trace(as_bytes({"traceEvents": [
                {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
                 "args": {"name": "t"}}]}))

    def test_sniffed_from_registry(self):
        profile = parse_bytes(as_bytes(self.trace()))
        assert profile.meta.tool == "chrome-trace"

    def test_category_becomes_module(self):
        events = [{"ph": "X", "name": "f", "cat": "renderer", "pid": 1,
                   "tid": 1, "ts": 0, "dur": 10}]
        profile = parse_trace(as_bytes({"traceEvents": events}))
        assert profile.find_by_name("f")[0].frame.module == "renderer"
