"""Differential oracle for the columnar view pipeline.

The array-backed view trees (:mod:`repro.analysis.viewtree_columnar`) and
the per-``ViewNode`` object transforms must be observably identical: same
materialized trees (child insertion order included), same digests, same
aggregate and diff results, same flame-graph rectangles.  The object path
is kept alive purely as the oracle these tests hold the vectorized path
against — on corpus fixtures, synthetic workloads, a 10k-deep call chain,
and randomized trees via hypothesis round-trips.  Also here: regression
tests for the invalidation fix that landed with the pipeline (a mutated
facade must drop its columnar backing, or digests serve stale bytes).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import formula
from repro.analysis.aggregate import merge_trees
from repro.analysis.diff import add_delta_column, diff_trees, summarize
from repro.analysis.transform import bottom_up, flat, top_down, transform
from repro.analysis.viewtree import ViewNode, ViewTree, default_merge_key
from repro.analysis import viewtree_columnar
from repro.converters import pprof
from repro.core.cct_columnar import from_cct
from repro.core.digest import viewtree_digest
from repro.core.frame import FrameKind, intern_frame
from repro.core.metric import Aggregation, Metric, MetricSchema
from repro.profilers.corpus import generate_bytes, tier
from repro.profilers.workloads import (deep_path_profile, lulesh_profile,
                                       spark_profile)

np = pytest.importorskip("numpy")

SHAPES = ("top_down", "bottom_up", "flat")


def assert_views_identical(a, b, check_sources=True):
    """Bitwise view-tree equality, child insertion order included."""
    stack = [(a.root, b.root)]
    while stack:
        x, y = stack.pop()
        assert x.frame == y.frame
        assert x.exclusive == y.exclusive
        assert x.inclusive == y.inclusive
        assert x.tag == y.tag
        assert x.baseline == y.baseline
        assert x.histogram == y.histogram
        assert list(x.children) == list(y.children)
        if check_sources:
            assert len(x.sources) == len(y.sources)
            assert (sorted(s.frame.key() for s in x.sources)
                    == sorted(s.frame.key() for s in y.sources))
        stack.extend(zip(x.children.values(), y.children.values()))


def _pair(raw):
    """(columnar-backed, object-only) profiles off the same bytes."""
    return pprof.parse(raw), pprof.parse_object(raw)


def _attach(profile):
    """Give an object-built workload profile a columnar CCT."""
    profile.attach_columnar(from_cct(profile.cct, len(profile.schema)))
    return profile


@pytest.fixture(scope="module")
def corpus_raw():
    return generate_bytes(tier("small"), compress=False)


@pytest.fixture(scope="module")
def corpus_raw_alt():
    return generate_bytes(dataclasses.replace(tier("small"), seed=99),
                          compress=False)


class TestTransformOracle:
    """Each vectorized transform vs the object transform, bit for bit."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_corpus(self, corpus_raw, shape):
        col_profile, obj_profile = _pair(corpus_raw)
        col_tree = transform(col_profile, shape)
        obj_tree = transform(obj_profile, shape)
        assert col_tree.columnar() is not None
        assert obj_tree.columnar() is None
        assert_views_identical(col_tree, obj_tree)
        assert viewtree_digest(col_tree) == viewtree_digest(obj_tree)

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("workload", [lulesh_profile, spark_profile])
    def test_workloads(self, workload, shape):
        col_profile = _attach(workload())
        obj_profile = workload()
        assert col_profile.columnar() is not None
        col_tree = transform(col_profile, shape)
        obj_tree = transform(obj_profile, shape)
        assert col_tree.columnar() is not None
        assert_views_identical(col_tree, obj_tree)
        assert viewtree_digest(col_tree) == viewtree_digest(obj_tree)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_deep_chain(self, shape):
        col_profile = _attach(deep_path_profile())
        obj_profile = deep_path_profile()
        col_tree = transform(col_profile, shape)
        obj_tree = transform(obj_profile, shape)
        assert col_tree.columnar() is not None
        assert_views_identical(col_tree, obj_tree)
        assert viewtree_digest(col_tree) == viewtree_digest(obj_tree)

    def test_custom_key_fn_stays_object(self, corpus_raw):
        col_profile, _ = _pair(corpus_raw)
        tree = top_down(col_profile, key_fn=lambda f: f.name)
        assert tree.columnar() is None  # custom keys bypass the fast path


class TestAggregateOracle:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_merge(self, corpus_raw, corpus_raw_alt, shape):
        col = [transform(pprof.parse(corpus_raw), shape),
               transform(pprof.parse(corpus_raw_alt), shape)]
        obj = [transform(pprof.parse_object(corpus_raw), shape),
               transform(pprof.parse_object(corpus_raw_alt), shape)]
        merged_col = merge_trees(col)
        merged_obj = merge_trees(obj)
        assert merged_col.columnar() is not None
        assert_views_identical(merged_col, merged_obj)
        assert viewtree_digest(merged_col) == viewtree_digest(merged_obj)

    def test_merge_of_merges(self, corpus_raw, corpus_raw_alt):
        """Nested merges keep the columnar path and stay lazy."""
        col = [transform(pprof.parse(corpus_raw), "top_down"),
               transform(pprof.parse(corpus_raw_alt), "top_down")]
        obj = [transform(pprof.parse_object(corpus_raw), "top_down"),
               transform(pprof.parse_object(corpus_raw_alt), "top_down")]
        nested_col = merge_trees([merge_trees(col), merge_trees(col)],
                                 operators=(Aggregation.SUM,))
        nested_obj = merge_trees([merge_trees(obj), merge_trees(obj)],
                                 operators=(Aggregation.SUM,))
        assert nested_col.columnar() is not None
        assert_views_identical(nested_col, nested_obj)

    def test_stat_operator_coverage(self, corpus_raw, corpus_raw_alt):
        """Every aggregation operator, columnar vs object."""
        operators = (Aggregation.SUM, Aggregation.MIN, Aggregation.MAX,
                     Aggregation.MEAN, Aggregation.LAST)
        col = [transform(pprof.parse(corpus_raw), "top_down"),
               transform(pprof.parse(corpus_raw_alt), "top_down")]
        obj = [transform(pprof.parse_object(corpus_raw), "top_down"),
               transform(pprof.parse_object(corpus_raw_alt), "top_down")]
        merged_col = merge_trees(col, operators=operators)
        merged_obj = merge_trees(obj, operators=operators)
        assert merged_col.columnar() is not None
        assert_views_identical(merged_col, merged_obj)
        assert viewtree_digest(merged_col) == viewtree_digest(merged_obj)


class TestDiffOracle:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_diff(self, corpus_raw, corpus_raw_alt, shape):
        diff_col = diff_trees(transform(pprof.parse(corpus_raw), shape),
                              transform(pprof.parse(corpus_raw_alt), shape))
        diff_obj = diff_trees(
            transform(pprof.parse_object(corpus_raw), shape),
            transform(pprof.parse_object(corpus_raw_alt), shape))
        assert diff_col.columnar() is not None
        assert_views_identical(diff_col, diff_obj)
        assert viewtree_digest(diff_col) == viewtree_digest(diff_obj)
        assert summarize(diff_col) == summarize(diff_obj)

    def test_diff_tolerance(self, corpus_raw, corpus_raw_alt):
        diff_col = diff_trees(
            transform(pprof.parse(corpus_raw), "top_down"),
            transform(pprof.parse(corpus_raw_alt), "top_down"),
            tolerance=50.0)
        diff_obj = diff_trees(
            transform(pprof.parse_object(corpus_raw), "top_down"),
            transform(pprof.parse_object(corpus_raw_alt), "top_down"),
            tolerance=50.0)
        assert diff_col.columnar() is not None
        assert summarize(diff_col) == summarize(diff_obj)
        assert_views_identical(diff_col, diff_obj)

    def test_self_diff_all_same(self, corpus_raw):
        tree = transform(pprof.parse(corpus_raw), "top_down")
        diffed = diff_trees(tree, tree)
        assert diffed.columnar() is not None
        tags = summarize(diffed)
        assert set(tags) == {"="}


class TestMutationInvalidation:
    """A mutated facade must drop its columnar backing (the satellite fix:
    without ``invalidate_everywhere`` → ``mark_mutated``, the digest and
    serialization paths read pre-mutation array bytes)."""

    def test_derive_drops_backing_and_redigests(self, corpus_raw):
        tree = transform(pprof.parse(corpus_raw), "top_down")
        assert tree.columnar() is not None
        before = viewtree_digest(tree)
        first = tree.schema.names()[0]
        column = formula.derive(tree, "doubled", "2 * %s" % first)
        assert tree.columnar() is None
        assert viewtree_digest(tree) != before
        root = tree.root
        assert root.inclusive[column] == 2 * root.inclusive.get(0, 0.0)

    def test_derive_matches_object_path(self, corpus_raw):
        col_tree = transform(pprof.parse(corpus_raw), "top_down")
        obj_tree = transform(pprof.parse_object(corpus_raw), "top_down")
        first = col_tree.schema.names()[0]
        formula.derive(col_tree, "doubled", "2 * %s" % first)
        formula.derive(obj_tree, "doubled", "2 * %s" % first)
        assert_views_identical(col_tree, obj_tree)
        assert viewtree_digest(col_tree) == viewtree_digest(obj_tree)

    def test_sources_resolve_after_mutation(self, corpus_raw):
        """Lazy source parts must survive the backing being dropped."""
        tree = transform(pprof.parse(corpus_raw), "top_down")
        formula.derive(tree, "d", "1 + %s" % tree.schema.names()[0])
        child = tree.root.sorted_children()[0]
        assert len(child.sources) > 0
        assert all(source.frame is not None for source in child.sources)

    def test_add_delta_column_drops_backing(self, corpus_raw,
                                            corpus_raw_alt):
        diffed = diff_trees(
            transform(pprof.parse(corpus_raw), "top_down"),
            transform(pprof.parse(corpus_raw_alt), "top_down"))
        assert diffed.columnar() is not None
        before = viewtree_digest(diffed)
        add_delta_column(diffed, 0)
        assert diffed.columnar() is None
        assert viewtree_digest(diffed) != before


class TestLayoutOracle:
    """Flame rects from preorder arrays vs the object stack walk."""

    @staticmethod
    def _assert_layouts_identical(col_layout, obj_layout):
        assert col_layout.geometry is not None
        assert obj_layout.geometry is None
        assert col_layout.laid_out_nodes == obj_layout.laid_out_nodes
        assert col_layout.skipped_nodes == obj_layout.skipped_nodes
        assert col_layout.max_depth == obj_layout.max_depth
        assert col_layout.total_value == obj_layout.total_value
        assert len(col_layout.rects) == len(obj_layout.rects)
        for ours, theirs in zip(col_layout.rects, obj_layout.rects):
            assert ours.node.frame == theirs.node.frame
            assert ours.depth == theirs.depth
            assert ours.width == theirs.width
            # x accumulates sibling widths with a different float
            # association (grouped prefix sums vs a serial cursor) — equal
            # to rounding, not bitwise.
            assert ours.x == pytest.approx(theirs.x, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("kwargs", [
        {}, {"min_width": 0.0}, {"min_width": 5.0}, {"max_depth": 3},
        {"max_depth": 0}, {"canvas_width": 640.0, "min_width": 2.0}])
    def test_corpus_layouts(self, corpus_raw, shape, kwargs):
        from repro.viz.layout import layout
        col_tree = transform(pprof.parse(corpus_raw), shape)
        obj_tree = transform(pprof.parse_object(corpus_raw), shape)
        self._assert_layouts_identical(layout(col_tree, **kwargs),
                                       layout(obj_tree, **kwargs))

    def test_merge_and_diff_layouts(self, corpus_raw, corpus_raw_alt):
        from repro.viz.layout import layout
        col = [transform(pprof.parse(corpus_raw), "top_down"),
               transform(pprof.parse(corpus_raw_alt), "top_down")]
        obj = [transform(pprof.parse_object(corpus_raw), "top_down"),
               transform(pprof.parse_object(corpus_raw_alt), "top_down")]
        self._assert_layouts_identical(layout(merge_trees(col)),
                                       layout(merge_trees(obj)))
        self._assert_layouts_identical(
            layout(diff_trees(col[0], col[1]), metric_index=1),
            layout(diff_trees(obj[0], obj[1]), metric_index=1))

    def test_geometry_is_lazy(self, corpus_raw):
        from repro.viz.layout import layout
        tree = transform(pprof.parse(corpus_raw), "top_down")
        laid = layout(tree)
        assert tree._root is None  # geometry came without materializing
        geometry = laid.geometry
        assert len(laid.rects) == geometry.row.shape[0] > 0
        colors = geometry.colors()
        assert len(colors) == len(laid.rects)
        assert tree._root is None
        # Touching a rect's node forces the facade exactly once.
        first = laid.rects[0]
        assert first.node is tree.root
        assert tree._root is not None

    def test_geometry_colors_match_object_colors(self, corpus_raw):
        from repro.viz.color import frame_color
        from repro.viz.layout import layout
        tree = transform(pprof.parse(corpus_raw), "top_down")
        laid = layout(tree)
        colors = laid.geometry.colors()
        for rect, color in zip(laid.rects, colors):
            assert frame_color(rect.node) == color

    def test_zoomed_layout_uses_object_path(self, corpus_raw):
        from repro.viz.layout import layout
        tree = transform(pprof.parse(corpus_raw), "top_down")
        zoom_root = tree.root.sorted_children()[0]
        zoomed = layout(tree, root=zoom_root)
        assert zoomed.geometry is None
        assert zoomed.rects[0].node is zoom_root


class TestRoundTrip:
    """columnar → facade → from_viewtree → facade fixpoint."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_corpus_round_trip(self, corpus_raw, shape):
        tree = transform(pprof.parse(corpus_raw), shape)
        cvt = tree.columnar()
        assert cvt is not None
        digest = viewtree_digest(tree)
        tree.root  # materialize the facade
        stored = viewtree_columnar.from_viewtree(tree)
        assert stored is not None
        assert stored.default_keys is False
        round_trip = ViewTree.columnar_backed(tree.schema.copy(), tree.shape,
                                              stored)
        assert viewtree_digest(round_trip) == digest
        assert_views_identical(round_trip, tree)


# -- hypothesis round-trips ------------------------------------------------

_names = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])
_files = st.sampled_from(["a.py", "b.py", ""])
_values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                    width=32)


@st.composite
def _view_trees(draw):
    schema = MetricSchema()
    n_metrics = draw(st.integers(min_value=1, max_value=3))
    for i in range(n_metrics):
        schema.add(Metric(name="m%d" % i, unit="u",
                          aggregation=Aggregation.SUM))
    tree = ViewTree(schema)
    nodes = [tree.root]
    count = draw(st.integers(min_value=0, max_value=24))
    for index in range(count):
        parent = nodes[draw(st.integers(min_value=0,
                                        max_value=len(nodes) - 1))]
        frame = intern_frame(name=draw(_names), file=draw(_files),
                             line=draw(st.integers(0, 3)),
                             kind=FrameKind.FUNCTION)
        node = parent.child(frame, default_merge_key)
        for i in range(n_metrics):
            if draw(st.booleans()):
                node.add_inclusive(i, draw(_values))
            if draw(st.booleans()):
                node.add_exclusive(i, draw(_values))
        if draw(st.booleans()):
            node.histogram[draw(st.integers(0, n_metrics - 1))] = [
                draw(_values), draw(_values)]
        nodes.append(node)
    return tree


@given(_view_trees())
@settings(max_examples=40, deadline=None)
def test_hypothesis_columnar_facade_round_trip(tree):
    stored = viewtree_columnar.from_viewtree(tree)
    assert stored is not None
    facade = ViewTree.columnar_backed(tree.schema.copy(), tree.shape, stored)
    assert facade.node_count() == tree.node_count()
    assert viewtree_digest(facade) == viewtree_digest(tree)
    assert_views_identical(facade, tree, check_sources=False)
    # And the facade, once materialized, re-encodes to the same digest.
    facade.root
    again = viewtree_columnar.from_viewtree(facade)
    assert again is not None
    second = ViewTree.columnar_backed(tree.schema.copy(), tree.shape, again)
    assert viewtree_digest(second) == viewtree_digest(tree)
