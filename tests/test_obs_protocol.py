"""The obs/* PVP surface and the instrumented subsystems end-to-end.

``obs/metrics`` supersedes ``view/engineStats``: the engine's cache
counters become one tenant of a full telemetry snapshot.  ``obs/trace``
drains the span ring over the wire.  The integration tests at the bottom
drive real engine and store operations under an enabled tracer and check
the spans they emit.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.ide.mock_ide import MockIDE
from repro.store.store import ProfileStore


@pytest.fixture
def traced_tracer():
    """Enable the process-wide tracer for one test, restoring it after."""
    tracer = obs.get_tracer()
    saved = (tracer.enabled, tracer.capacity, tracer.sample_every)
    tracer.configure(enabled=True, capacity=4096, sample_every=1)
    tracer.clear()
    yield tracer
    tracer.configure(enabled=saved[0], capacity=saved[1],
                     sample_every=saved[2])
    tracer.clear()


@pytest.fixture
def ide(simple_profile):
    mock = MockIDE()
    opened = mock.session.open(simple_profile)
    mock.profile_id = opened.id
    return mock


class TestObsMetrics:
    def test_snapshot_carries_engine_stats_as_tenant(self, ide):
        ide.request("view/summary", profileId=ide.profile_id)
        result = ide.request("obs/metrics")
        assert "counters" in result["metrics"]
        assert "hits" in result["engine"]          # the absorbed tenant
        assert "hitRate" in result["engine"]
        tracer = result["tracer"]
        assert set(tracer) >= {"enabled", "capacity", "sampleEvery",
                               "spans"}

    def test_supersedes_view_engine_stats(self, ide):
        legacy = ide.request("view/engineStats")
        modern = ide.request("obs/metrics")["engine"]
        assert set(legacy) <= set(modern) | {"responseSeconds"}


class TestObsTrace:
    def test_returns_recorded_spans(self, ide, traced_tracer):
        ide.request("view/switchShape", profileId=ide.profile_id,
                    shape="bottom_up")
        result = ide.request("obs/trace")
        assert result["enabled"] is True
        names = [span["name"] for span in result["spans"]]
        assert any(name.startswith("engine.") for name in names)

    def test_limit_keeps_newest(self, ide, traced_tracer):
        with traced_tracer.span("first"):
            pass
        with traced_tracer.span("second"):
            pass
        result = ide.request("obs/trace", limit=1)
        assert [span["name"] for span in result["spans"]] == ["second"]

    def test_clear_empties_ring(self, ide, traced_tracer):
        with traced_tracer.span("once"):
            pass
        ide.request("obs/trace", clear=True)
        assert traced_tracer.spans() == []

    def test_disabled_tracer_reports_disabled(self, ide):
        tracer = obs.get_tracer()
        saved = tracer.enabled
        tracer.configure(enabled=False)
        try:
            result = ide.request("obs/trace")
            assert result["enabled"] is False
        finally:
            tracer.configure(enabled=saved)


class TestEngineInstrumentation:
    def test_memoized_operations_record_hit_attribute(
            self, simple_profile, traced_tracer):
        from repro.engine.engine import AnalysisEngine
        engine = AnalysisEngine()
        engine.transform(simple_profile, "bottom_up")  # cold
        engine.transform(simple_profile, "bottom_up")  # memoized
        spans = [span for span in traced_tracer.spans()
                 if span.name == "engine.transform"]
        assert [span.attributes["hit"] for span in spans] == [False, True]

    def test_session_requests_reach_instrumented_engine(
            self, ide, traced_tracer):
        ide.request("view/switchShape", profileId=ide.profile_id,
                    shape="bottom_up")
        names = {span.name for span in traced_tracer.spans()}
        assert "engine.transform" in names


class TestStoreInstrumentation:
    def test_ingest_and_query_emit_span_tree(self, tmp_path,
                                             simple_profile,
                                             traced_tracer):
        store = ProfileStore(str(tmp_path / "prof"))
        store.ingest(simple_profile, service="web", ptype="cpu")
        store.flush()
        store.query("service=web")
        names = {span.name for span in traced_tracer.spans()}
        assert {"store.ingest", "store.wal.append", "store.flush",
                "store.segment.write", "store.query",
                "store.query.plan", "store.query.load"} <= names
        # WAL append nests under ingest.
        spans = traced_tracer.spans()
        by_id = {span.span_id: span for span in spans}
        wal = next(s for s in spans if s.name == "store.wal.append")
        assert by_id[wal.parent_id].name == "store.ingest"
