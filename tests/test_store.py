"""ProfileStore end-to-end: ingest, flush, crash safety, query, maintenance."""

from __future__ import annotations

import os

import pytest

from repro import ProfileBuilder
from repro.analysis import aggregate
from repro.analysis.transform import transform
from repro.core import serialize
from repro.core.digest import viewtree_digest
from repro.engine import AnalysisEngine
from repro.errors import StoreError
from repro.store import ProfileStore
from repro.store.segment import SEGMENT_SUFFIX

BASE_NANOS = 1_700_000_000_000_000_000


class Clock:
    """A deterministic nanosecond clock advancing one second per call."""

    def __init__(self, start=BASE_NANOS):
        self.now = start

    def __call__(self):
        self.now += 1_000_000_000
        return self.now


def build_profile(scale=1, time_nanos=0):
    builder = ProfileBuilder(tool="test")
    cpu = builder.metric("cpu", unit="nanoseconds")
    builder.sample([("main", "app.c", 10), ("work", "app.c", 42)],
                   {cpu: 700 * scale})
    builder.sample([("main", "app.c", 10), ("idle", "app.c", 77)],
                   {cpu: 100 * scale})
    profile = builder.build()
    profile.meta.time_nanos = time_nanos
    return profile


@pytest.fixture
def store(tmp_path):
    with ProfileStore(str(tmp_path / "store"), engine=AnalysisEngine(),
                      fsync=False, clock=Clock()) as store:
        yield store


class TestIngest:
    def test_ingest_profile_bytes_and_path(self, store, tmp_path):
        profile = build_profile(time_nanos=BASE_NANOS)
        path = str(tmp_path / "p.ezvw")
        serialize.dump(profile, path)

        by_object = store.ingest(profile, service="a")
        by_bytes = store.ingest(serialize.dumps(profile), service="b")
        by_path = store.ingest(path, service="c")
        assert [r.entry.seq for r in (by_object, by_bytes, by_path)] \
            == [1, 2, 3]
        assert store.index.services() == ["a", "b", "c"]

    def test_stampless_profile_gets_ingest_time(self, store):
        result = store.ingest(build_profile(time_nanos=0), service="api")
        assert result.assigned_time
        assert result.entry.time_nanos > BASE_NANOS
        # EV312 fired for the missing stamp.
        assert any(d.rule == "EV312" for d in result.diagnostics)

    def test_stamped_profile_keeps_its_time(self, store):
        result = store.ingest(build_profile(time_nanos=BASE_NANOS),
                              service="api")
        assert not result.assigned_time
        assert result.entry.time_nanos == BASE_NANOS
        assert not any(d.rule == "EV312" for d in result.diagnostics)

    def test_durable_before_flush(self, store):
        store.ingest(build_profile(), service="api")
        reopened = ProfileStore(store.root, engine=store.engine,
                                fsync=False, clock=Clock())
        try:
            assert len(reopened.select("service=api")) == 1
            assert reopened.stats()["walRecords"] == 1
        finally:
            reopened.close()

    def test_auto_flush_at_threshold(self, tmp_path):
        with ProfileStore(str(tmp_path / "s"), engine=AnalysisEngine(),
                          flush_records=3, fsync=False,
                          clock=Clock()) as store:
            for _ in range(3):
                store.ingest(build_profile(), service="api")
            assert store.stats()["walRecords"] == 0
            assert store.stats()["segments"] == 1


class TestFlushAndCrash:
    def test_flush_moves_records_to_segment(self, store):
        store.ingest(build_profile(time_nanos=BASE_NANOS), service="api")
        address = store.flush()
        assert address
        assert os.path.exists(os.path.join(store.root,
                                           address + SEGMENT_SUFFIX))
        entry, = store.select("service=api")
        assert entry.segment == address
        assert store.flush() is None  # WAL now empty

    def test_crash_between_segment_and_manifest(self, store):
        """Segment written, manifest not updated, WAL not truncated."""
        store.ingest(build_profile(time_nanos=BASE_NANOS), service="api")
        from repro.store.segment import write_segment
        orphan = write_segment(store.root, store.wal.records,
                               created_nanos=store.clock())
        # "Crash": reopen from disk; the WAL still holds the record.
        reopened = ProfileStore(store.root, engine=store.engine,
                                fsync=False, clock=Clock())
        try:
            assert reopened.stats()["walRecords"] == 1
            address = reopened.flush()
            # Content addressing: the re-flush reuses the orphan's name,
            # so nothing is duplicated and integrity still holds.
            assert address == orphan.address
            stats = reopened.stats(verify=True)
            assert stats["segments"] == 1
            assert stats["integrity"]["ok"]
        finally:
            reopened.close()

    def test_crash_mid_segment_write_leaves_store_intact(self, store):
        """A half-written segment temp never shadows committed data."""
        store.ingest(build_profile(time_nanos=BASE_NANOS), service="api")
        good = store.flush()
        store.ingest(build_profile(scale=2), service="api")
        # Simulate dying mid-flush: the atomic writer's temp file exists
        # but was never renamed into place.
        with open(os.path.join(store.root, ".seg-tmp-partial"), "wb") as f:
            f.write(b"EZSEG001 half written junk")
        reopened = ProfileStore(store.root, engine=store.engine,
                                fsync=False, clock=Clock())
        try:
            stats = reopened.stats(verify=True)
            assert stats["integrity"]["ok"]
            assert stats["segments"] == 1
            assert stats["walRecords"] == 1
            assert good in reopened.manifest.addresses()
        finally:
            reopened.close()

    def test_missing_segment_detected_on_open(self, store):
        store.ingest(build_profile(), service="api")
        address = store.flush()
        store.close()
        os.unlink(os.path.join(store.root, address + SEGMENT_SUFFIX))
        with pytest.raises(StoreError, match="missing"):
            ProfileStore(store.root, fsync=False)


class TestQuery:
    def test_merge_on_read_matches_merge_trees(self, store):
        profiles = [build_profile(scale=s, time_nanos=BASE_NANOS + s)
                    for s in (1, 2, 3)]
        for profile in profiles:
            store.ingest(profile, service="api")
        store.flush()
        result = store.query("service=api")
        assert result.count == 3
        loaded = [store.load(e) for e in result.entries]
        merged = aggregate.merge_trees(
            [transform(p, "top_down") for p in loaded])
        assert viewtree_digest(merged) == result.digest()

    def test_repeat_query_is_engine_cache_hit(self, store):
        for s in (1, 2):
            store.ingest(build_profile(scale=s), service="api")
        store.flush()
        first = store.query("service=api")
        hits_before = store.engine.stats()["operations"]["aggregate"]["hits"]
        second = store.query("service=api")
        hits_after = store.engine.stats()["operations"]["aggregate"]["hits"]
        assert hits_after == hits_before + 1
        assert second.digest() == first.digest()

    def test_query_spans_wal_and_segments(self, store):
        store.ingest(build_profile(time_nanos=BASE_NANOS), service="api")
        store.flush()
        store.ingest(build_profile(time_nanos=BASE_NANOS + 5), service="api")
        result = store.query("service=api")
        assert result.count == 2
        segments = {e.segment for e in result.entries}
        assert None in segments and len(segments) == 2

    def test_select_newest_first_with_limit(self, store):
        for i in range(4):
            store.ingest(build_profile(time_nanos=BASE_NANOS + i),
                         service="api")
        entries = store.select("limit=2")
        assert [e.seq for e in entries] == [4, 3]

    def test_no_match(self, store):
        result = store.query("service=nothing")
        assert result.count == 0
        assert result.tree is None
        assert result.digest() == ""


class TestMaintenance:
    def _fill(self, store, batches=3, per_batch=2):
        seq = 0
        for _ in range(batches):
            for _ in range(per_batch):
                seq += 1
                store.ingest(build_profile(scale=seq,
                                           time_nanos=BASE_NANOS + seq),
                             service="api")
            store.flush()

    def test_compact_preserves_query_results(self, store):
        self._fill(store)
        before = store.query("service=api")
        assert store.stats()["segments"] == 3
        merged = store.compact()
        assert merged is not None
        stats = store.stats(verify=True)
        assert stats["segments"] == 1
        assert stats["integrity"]["ok"]
        after = store.query("service=api")
        assert after.digest() == before.digest()
        survivors = [n for n in os.listdir(store.root)
                     if n.endswith(SEGMENT_SUFFIX)]
        assert survivors == [merged + SEGMENT_SUFFIX]

    def test_compact_skips_big_segments(self, store):
        self._fill(store, batches=2, per_batch=2)
        assert store.compact(small_records=2) is None

    def test_gc_by_age(self, store):
        self._fill(store)
        assert store.stats()["segments"] == 3
        # Everything is older than "now minus one nanosecond".
        report = store.gc(max_age_nanos=1)
        assert len(report["removedSegments"]) == 3
        assert store.stats()["records"] == 0

    def test_gc_by_bytes_drops_oldest_first(self, store):
        self._fill(store)
        infos = sorted(store.manifest.segments,
                       key=lambda i: i.created_nanos)
        keep = infos[-1].size_bytes
        report = store.gc(max_total_bytes=keep)
        removed = set(report["removedSegments"])
        assert infos[0].address in removed
        assert infos[-1].address not in removed

    def test_gc_sweeps_orphans(self, store):
        self._fill(store, batches=1)
        orphan = os.path.join(store.root, "f" * 32 + SEGMENT_SUFFIX)
        with open(orphan, "wb") as handle:
            handle.write(b"EZSEG001junk")
        report = store.gc()
        assert report["orphansSwept"] == ["f" * 32]
        assert not os.path.exists(orphan)
        assert store.stats()["segments"] == 1

    def test_stats_integrity_catches_corruption(self, store):
        self._fill(store, batches=1)
        address = store.manifest.addresses()[0]
        path = os.path.join(store.root, address + SEGMENT_SUFFIX)
        with open(path, "r+b") as handle:
            handle.seek(12)
            handle.write(b"\x00\x00\x00\x00")
        stats = store.stats(verify=True)
        assert not stats["integrity"]["ok"]
        assert any(address in problem
                   for problem in stats["integrity"]["problems"])


class TestReopen:
    def test_full_lifecycle_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        engine = AnalysisEngine()
        with ProfileStore(root, engine=engine, fsync=False,
                          clock=Clock()) as store:
            for s in (1, 2):
                store.ingest(build_profile(scale=s,
                                           time_nanos=BASE_NANOS + s),
                             service="api", labels={"run": str(s)})
            store.flush()
            store.ingest(build_profile(scale=3, time_nanos=BASE_NANOS + 3),
                         service="api")
            digest = store.query("service=api").digest()
            next_seq = store.manifest.next_seq
        with ProfileStore(root, engine=AnalysisEngine(), fsync=False,
                          clock=Clock()) as store:
            assert store.manifest.next_seq == next_seq
            assert store.query("service=api").digest() == digest
            entry = store.select("label.run=2")[0]
            assert store.load(entry).meta.time_nanos == BASE_NANOS + 2
