"""Tests for redundancy and false-sharing/race analyses, and presets."""

import pytest

from repro import ProfileBuilder
from repro.analysis.presets import (PRESETS, applicable_presets, apply_all,
                                    apply_preset)
from repro.analysis.redundancy import (redundancy_fraction,
                                       redundancy_pairs, report as
                                       redundancy_report)
from repro.analysis.sharing import (access_pairs, contention_by_object,
                                    report as sharing_report)
from repro.analysis.transform import top_down
from repro.core.monitor import PointKind
from repro.errors import AnalysisError
from repro.profilers.workloads import (false_sharing_workload,
                                       redundancy_workload)


@pytest.fixture(scope="module")
def redundant():
    return redundancy_workload(scale=2)


@pytest.fixture(scope="module")
def contended():
    return false_sharing_workload(scale=2)


class TestRedundancy:
    def test_pairs_ranked_by_count(self, redundant):
        pairs = redundancy_pairs(redundant)
        assert len(pairs) == 2
        assert pairs[0].count > pairs[1].count

    def test_cross_function_pair_hoists_to_lca(self, redundant):
        top = redundancy_pairs(redundant)[0]
        assert not top.intra_function
        assert top.dead.frame.name == "init_matrix"
        assert top.killing.frame.name == "compute_matrix"
        assert "iterate" in top.fix_site()

    def test_intra_function_pair(self, redundant):
        intra = [p for p in redundancy_pairs(redundant)
                 if p.intra_function]
        assert len(intra) == 1
        assert "inside" in intra[0].fix_site()
        assert intra[0].dead.frame.name == "update_cell"

    def test_fraction_bounded(self, redundant):
        fraction = redundancy_fraction(redundant, "stores")
        assert 0.0 < fraction < 0.2

    def test_fraction_zero_without_total(self, redundant):
        from repro.core.metric import Metric
        redundant_copy = redundancy_workload(scale=2)
        redundant_copy.add_metric(Metric("empty", unit="count"))
        assert redundancy_fraction(redundant_copy, "empty") == 0.0

    def test_report_text(self, redundant):
        text = redundancy_report(redundant)
        assert "cross-function" in text
        assert "intra-function" in text
        assert "solver.c:80" in text

    def test_empty_profile_report(self, simple_profile):
        assert "no redundancy" in redundancy_report(simple_profile)

    def test_no_points_yields_empty_list(self, simple_profile):
        assert redundancy_pairs(simple_profile) == []
        assert access_pairs(simple_profile) == []


class TestSharing:
    def test_pairs_ranked(self, contended):
        pairs = access_pairs(contended)
        assert len(pairs) == 3
        counts = [p.count for p in pairs]
        assert counts == sorted(counts, reverse=True)

    def test_kind_filter(self, contended):
        races = access_pairs(contended, kind=PointKind.DATA_RACE)
        assert len(races) == 1
        assert races[0].kind is PointKind.DATA_RACE

    def test_contested_object_named(self, contended):
        top = access_pairs(contended)[0]
        assert top.contested_object() == "stats"

    def test_guidance_per_kind(self, contended):
        false_share = access_pairs(contended,
                                   kind=PointKind.FALSE_SHARING)[0]
        race = access_pairs(contended, kind=PointKind.DATA_RACE)[0]
        assert "pad or realign" in false_share.guidance()
        assert "synchronize" in race.guidance()

    def test_unordered_pair_merging(self):
        builder = ProfileBuilder()
        events = builder.metric("pingpongs", unit="count")
        builder.pair_point(PointKind.FALSE_SHARING,
                           [["main", "a"], ["main", "b"]], {events: 10})
        builder.pair_point(PointKind.FALSE_SHARING,
                           [["main", "b"], ["main", "a"]], {events: 5})
        pairs = access_pairs(builder.build())
        assert len(pairs) == 1
        assert pairs[0].count == 15

    def test_contention_by_object(self, contended):
        ranking = contention_by_object(contended)
        assert ranking[0][0] == "stats"

    def test_report_text(self, contended):
        text = sharing_report(contended)
        assert "false sharing" in text
        assert "data race" in text
        assert "stats" in text


class TestPresets:
    def build_hw_tree(self):
        builder = ProfileBuilder()
        cycles = builder.metric("cycles", unit="count")
        instructions = builder.metric("instructions", unit="count")
        misses = builder.metric("cache_misses", unit="count")
        builder.sample([("main",), ("hot",)],
                       {cycles: 3000.0, instructions: 1000.0, misses: 40.0})
        return top_down(builder.build())

    def test_applicable_presets(self):
        tree = self.build_hw_tree()
        names = {p.name for p in applicable_presets(tree)}
        assert {"cpi", "ipc", "mpki"} <= names
        assert "alloc_rate" not in names   # no alloc_bytes metric

    def test_apply_preset_values(self):
        tree = self.build_hw_tree()
        index = apply_preset(tree, "cpi")
        hot = tree.find_by_name("hot")[0]
        assert hot.inclusive[index] == pytest.approx(3.0)
        index = apply_preset(tree, "mpki")
        assert hot.inclusive[index] == pytest.approx(40.0)

    def test_apply_all(self):
        tree = self.build_hw_tree()
        applied = apply_all(tree)
        assert "cpi" in applied and "ipc" in applied
        for name in applied:
            assert name in tree.schema

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown preset"):
            apply_preset(self.build_hw_tree(), "wombats_per_second")

    def test_catalogue_formulas_all_parse(self):
        from repro.analysis.formula import parse
        for preset in PRESETS.values():
            parse(preset.formula)   # must not raise
