"""Tests for the GC suppression guard (§V-C manual memory management)."""

import gc

from repro.core.gcguard import no_gc


class TestNoGc:
    def test_disables_inside_and_restores(self):
        assert gc.isenabled()
        with no_gc():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_nested_guards_restore_once(self):
        with no_gc():
            with no_gc():
                assert not gc.isenabled()
            # The inner guard must not re-enable: its entry state was
            # "disabled" (the outer guard turned collection off).
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_restores_on_exception(self):
        try:
            with no_gc():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert gc.isenabled()

    def test_respects_externally_disabled_gc(self):
        gc.disable()
        try:
            with no_gc():
                pass
            # GC was off before the guard; it must stay off after.
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_collect_after(self):
        class Cyclic:
            def __init__(self):
                self.me = self

        with no_gc(collect_after=True):
            for _ in range(100):
                Cyclic()
        # The exit collection must have been able to run (no exception and
        # collection is back on).
        assert gc.isenabled()
