"""Tests for the baseline viewers and the user-study simulation."""

import pytest

from repro.baselines import (EasyViewViewer, GoLandViewer, PProfViewer,
                             measure)
from repro.study.costmodel import (COSTS, EASYVIEW_CAPS, GOLAND_CAPS,
                                   PPROF_CAPS, Workflow)
from repro.study.simulate import (render_table, run_study,
                                  simulate_analyst)
from repro.study.survey import run_survey
from repro.study.tasks import plan


class TestBaselineViewers:
    def test_all_viewers_open_same_profile(self, small_pprof_bytes):
        results = {}
        for viewer in (EasyViewViewer(), GoLandViewer(), PProfViewer()):
            results[viewer.name] = viewer.open_profile(small_pprof_bytes)
        # Tree-building viewers agree on context counts.
        assert results["easyview"].nodes == results["goland"].nodes
        # EasyView's lazy layout renders strictly fewer blocks.
        assert results["easyview"].blocks < results["goland"].blocks
        for result in results.values():
            assert result.seconds > 0

    def test_measure_takes_min(self, small_pprof_bytes):
        result = measure(EasyViewViewer(), small_pprof_bytes, repeats=2)
        assert result.viewer == "easyview"

    def test_detail_phases_sum_close_to_total(self, small_pprof_bytes):
        result = EasyViewViewer().open_profile(small_pprof_bytes)
        assert sum(result.detail.values()) <= result.seconds * 1.2


class TestWorkflows:
    def test_unknown_operation_rejected(self):
        with pytest.raises(KeyError):
            Workflow(tool="x", task="y").add("teleport")

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            plan("task9", EASYVIEW_CAPS)

    def test_task1_easyview_uses_code_links(self):
        flow = plan("task1", EASYVIEW_CAPS)
        assert "open_source" in flow.steps
        assert "manual_source_lookup" not in flow.steps

    def test_task1_pprof_pays_tool_switches(self):
        flow = plan("task1", PPROF_CAPS)
        assert "switch_tool" in flow.steps
        assert "manual_source_lookup" in flow.steps

    def test_task2_goland_falls_back_to_tree_table(self):
        flow = plan("task2", GOLAND_CAPS)
        assert "learn_view" in flow.steps
        assert "fold_unfold" in flow.steps

    def test_task2_pprof_writes_scripts(self):
        flow = plan("task2", PPROF_CAPS)
        assert flow.steps.count("write_script") >= 2

    def test_task3_only_easyview_bounded(self):
        assert not plan("task3", EASYVIEW_CAPS).open_ended
        assert plan("task3", PPROF_CAPS).open_ended
        assert plan("task3", GOLAND_CAPS).open_ended


class TestStudyResults:
    @pytest.fixture(scope="class")
    def table(self):
        # Response times in the ballpark of the large-tier measurements.
        return run_study(open_seconds={"easyview": 6.0, "pprof": 14.0,
                                       "goland": 22.0})

    def test_task1_ordering(self, table):
        t1 = {tool: table[tool]["task1"].mean_minutes for tool in table}
        assert t1["easyview"] < t1["goland"] < t1["pprof"]
        assert 7 <= t1["easyview"] <= 14       # paper: ~10 min
        assert 11 <= t1["goland"] <= 20        # paper: ~15 min
        assert 24 <= t1["pprof"] <= 40         # paper: ~30 min

    def test_task2_ordering(self, table):
        t2 = {tool: table[tool]["task2"].mean_minutes for tool in table}
        assert t2["easyview"] < t2["goland"] < t2["pprof"]
        assert t2["easyview"] <= 15            # paper: ~10 min
        assert 40 <= t2["goland"] <= 85        # paper: ~1 h
        assert t2["pprof"] >= 150              # paper: >3 h

    def test_task3_baselines_dnf(self, table):
        assert table["easyview"]["task3"].completion_rate == 1.0
        assert table["easyview"]["task3"].mean_minutes <= 15
        assert table["pprof"]["task3"].completion_rate == 0.0
        assert table["goland"]["task3"].completion_rate == 0.0

    def test_render_table_mentions_dnf(self, table):
        text = render_table(table)
        assert "DNF" in text and "easyview" in text

    def test_proficiency_scales_human_time_only(self):
        fast = simulate_analyst("task1", EASYVIEW_CAPS, 0.85)
        slow = simulate_analyst("task1", EASYVIEW_CAPS, 1.5)
        assert slow.minutes > fast.minutes

    def test_deterministic_per_seed(self):
        a = run_study(seed=11)
        b = run_study(seed=11)
        assert render_table(a) == render_table(b)


class TestSurvey:
    def test_fig8_orderings(self):
        outcome = run_survey()
        # Flame graphs beat tree tables overall.
        assert outcome.any_flame_percent() > outcome.any_table_percent()
        # Top-down > bottom-up > flat, in both families.
        for family in ("flame", "table"):
            td = outcome.percent(family, "top_down")
            bu = outcome.percent(family, "bottom_up")
            fl = outcome.percent(family, "flat")
            assert td >= bu >= fl
        # Per-shape, flame ≥ table.
        for shape in ("top_down", "bottom_up", "flat"):
            assert outcome.percent("flame", shape) >= \
                outcome.percent("table", shape)

    def test_percent_bands_roughly_match_paper(self):
        outcome = run_survey()
        assert outcome.any_flame_percent() >= 85     # paper: 92.3%
        assert 70 <= outcome.any_table_percent() <= 100  # paper: 84.6%

    def test_deterministic(self):
        assert run_survey(seed=3).effective_percent == \
            run_survey(seed=3).effective_percent

    def test_render(self):
        text = run_survey().render()
        assert "flame/top_down" in text and "%" in text


class TestStudySensitivity:
    def test_orderings_robust_to_cost_model(self):
        """The simulated study's conclusions must not hinge on the exact
        primitive costs: scaling every human cost by ±30% preserves all
        of the paper's orderings."""
        from unittest import mock
        from repro.study import costmodel

        for factor in (0.7, 1.0, 1.3):
            scaled = {op: cost * factor
                      for op, cost in costmodel.COSTS.items()}
            with mock.patch.dict(costmodel.COSTS, scaled):
                table = run_study(open_seconds={"easyview": 6.0,
                                                "pprof": 14.0,
                                                "goland": 22.0})
                t1 = {tool: table[tool]["task1"].mean_minutes
                      for tool in table}
                assert t1["easyview"] < t1["goland"] < t1["pprof"], factor
                t2 = {tool: table[tool]["task2"].mean_minutes
                      for tool in table}
                assert t2["easyview"] < t2["goland"] < t2["pprof"], factor
                assert table["easyview"]["task3"].completion_rate == 1.0

    def test_group_size_does_not_flip_orderings(self):
        for size in (3, 7, 15):
            table = run_study(group_size=size)
            assert table["easyview"]["task1"].mean_minutes < \
                table["pprof"]["task1"].mean_minutes
