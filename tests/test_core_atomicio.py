"""Atomic file writes: all-or-nothing replacement, no temp litter."""

from __future__ import annotations

import os

import pytest

from repro.core.atomicio import (atomic_write, atomic_write_bytes,
                                 atomic_write_text)


class TestAtomicWrite:
    def test_creates_new_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"

    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        with open(path, "rb") as handle:
            assert handle.read() == b"new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"x" * 4096)
        assert os.listdir(str(tmp_path)) == ["out.bin"]

    def test_failure_leaves_old_content_and_no_litter(self, tmp_path,
                                                      monkeypatch):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"committed")

        def explode(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"doomed")
        monkeypatch.undo()
        with open(path, "rb") as handle:
            assert handle.read() == b"committed"
        assert os.listdir(str(tmp_path)) == ["out.bin"]

    def test_text_mode(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "héllo")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "héllo"

    def test_dispatch(self, tmp_path):
        path = str(tmp_path / "out")
        atomic_write(path, "text")
        atomic_write(path, b"bytes")
        with open(path, "rb") as handle:
            assert handle.read() == b"bytes"


class TestSerializersUseAtomicWrites:
    def test_binary_dump_is_atomic(self, tmp_path, simple_profile,
                                   monkeypatch):
        from repro.core import serialize
        path = str(tmp_path / "p.ezvw")
        serialize.dump(simple_profile, path)
        original = open(path, "rb").read()

        def explode(src, dst):
            raise OSError("no rename for you")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            serialize.dump(simple_profile, path)
        monkeypatch.undo()
        assert open(path, "rb").read() == original

    def test_json_dump_is_atomic(self, tmp_path, simple_profile):
        from repro.core import jsonio
        path = str(tmp_path / "p.json")
        jsonio.dump(simple_profile, path)
        loaded = jsonio.load(path)
        assert loaded.node_count() == simple_profile.node_count()
        assert [n for n in os.listdir(str(tmp_path))
                if n.endswith(".tmp")] == []
