"""End-to-end tests for the viewer session through the mock IDE.

Every interaction goes through real JSON-RPC serialization (the MockIDE
round-trips each message), so these tests cover the protocol, the session,
and the IDE actions together.
"""

import pytest

from repro.core.serialize import dump
from repro.errors import ProtocolError
from repro.ide.actions import Capabilities
from repro.ide.mock_ide import MockIDE
from repro.ide.protocol import (IDE_CODE_LENS, IDE_FLOATING_WINDOW,
                                IDE_HOVER, IDE_OPEN_DOCUMENT,
                                IDE_SET_DECORATIONS)


@pytest.fixture
def ide(simple_profile):
    workspace = {"app.c": "\n".join("line %d" % i for i in range(1, 101))}
    mock = MockIDE(workspace=workspace)
    opened = mock.session.open(simple_profile)
    mock.profile_id = opened.id
    return mock


class TestOpen:
    def test_open_reports_summary_and_latency(self, tmp_path,
                                              simple_profile):
        path = str(tmp_path / "p.ezvw")
        dump(simple_profile, path)
        ide = MockIDE()
        result = ide.request("view/open", path=path)
        assert result["summary"]["contexts"] == simple_profile.node_count()
        assert result["responseSeconds"] >= 0

    def test_open_missing_file_is_protocol_error(self):
        ide = MockIDE()
        with pytest.raises(ProtocolError):
            ide.request("view/open", path="/does/not/exist.pb.gz")

    def test_close(self, ide):
        assert ide.request("view/close",
                           profileId=ide.profile_id) == {"closed": True}
        with pytest.raises(ProtocolError):
            ide.request("view/summary", profileId=ide.profile_id)


class TestShapes:
    def test_switch_shapes(self, ide):
        for shape in ("top_down", "bottom_up", "flat"):
            result = ide.request("view/switchShape",
                                 profileId=ide.profile_id, shape=shape)
            assert result["blocks"] > 0

    def test_unknown_shape_rejected(self, ide):
        with pytest.raises(ProtocolError):
            ide.request("view/switchShape", profileId=ide.profile_id,
                        shape="diagonal")


class TestCodeLink:
    def test_select_opens_document_at_line(self, ide):
        tree = ide.session.view(ide.profile_id, "top_down")
        opened = ide.session.get(ide.profile_id)
        work = tree.find_by_name("work")[0]
        result = ide.request("view/select", profileId=ide.profile_id,
                             nodeRef=opened.node_ref(work))
        assert result["linked"]
        assert ide.state.open_file == "app.c"
        assert ide.state.cursor_line == 42
        assert ("app.c", 42) in ide.state.highlighted
        assert ide.document_exists("app.c")

    def test_select_without_mapping_returns_unlinked(self, ide):
        from repro import ProfileBuilder
        builder = ProfileBuilder()
        builder.metric("m")
        builder.sample(["nameless"], {0: 1.0})
        opened = ide.session.open(builder.build())
        tree = ide.session.view(opened.id, "top_down")
        node = tree.find_by_name("nameless")[0]
        result = ide.request("view/select", profileId=opened.id,
                             nodeRef=opened.node_ref(node))
        assert not result["linked"]

    def test_select_reports_metrics(self, ide):
        tree = ide.session.view(ide.profile_id, "top_down")
        opened = ide.session.get(ide.profile_id)
        work = tree.find_by_name("work")[0]
        result = ide.request("view/select", profileId=ide.profile_id,
                             nodeRef=opened.node_ref(work))
        assert result["metrics"]["cpu"] == 900.0

    def test_bad_node_ref_rejected(self, ide):
        with pytest.raises(ProtocolError):
            ide.request("view/select", profileId=ide.profile_id,
                        nodeRef=99999)


class TestSearchZoomSummary:
    def test_search_returns_refs_and_coverage(self, ide):
        result = ide.request("view/search", profileId=ide.profile_id,
                             pattern="work")
        assert len(result["matches"]) == 1
        assert result["coverage"] == pytest.approx(0.9)

    def test_zoom(self, ide):
        opened = ide.session.get(ide.profile_id)
        tree = ide.session.view(ide.profile_id, "top_down")
        work = tree.find_by_name("work")[0]
        result = ide.request("view/zoom", profileId=ide.profile_id,
                             nodeRef=opened.node_ref(work))
        assert result["blocks"] == 2   # work + inner

    def test_summary_emits_floating_window(self, ide):
        result = ide.request("view/summary", profileId=ide.profile_id)
        assert "Hottest contexts" in result["body"]
        assert ide.actions_of(IDE_FLOATING_WINDOW)

    def test_hover_request(self, ide):
        result = ide.request("view/hover", profileId=ide.profile_id,
                             file="app.c", line=42)
        assert result["found"]
        assert ide.actions_of(IDE_HOVER)


class TestOptionalActions:
    def test_code_lenses_emitted(self, ide):
        count = ide.session.show_code_lenses(ide.profile_id, "top_down",
                                             file="app.c")
        assert count == 3   # work, inner, idle (main has no exclusive cost)
        assert len(ide.actions_of(IDE_CODE_LENS)) == 3

    def test_decorations_emitted(self, ide):
        count = ide.session.show_decorations(ide.profile_id, "top_down")
        assert count == 3
        assert len(ide.actions_of(IDE_SET_DECORATIONS)) == 3

    def test_minimal_capabilities_suppress_optional_actions(
            self, simple_profile):
        ide = MockIDE(capabilities=Capabilities.minimal())
        opened = ide.session.open(simple_profile)
        assert ide.session.show_code_lenses(opened.id, "top_down") == 0
        assert ide.session.show_decorations(opened.id, "top_down") == 0
        assert ide.session.show_hover(opened.id, "top_down", "app.c",
                                      42) is None
        # The mandatory code link still works.
        tree = ide.session.view(opened.id, "top_down")
        work = tree.find_by_name("work")[0]
        assert ide.session.select(opened.id, work) is not None
        assert ide.actions_of(IDE_OPEN_DOCUMENT)

    def test_capability_negotiation(self, ide):
        result = ide.request("view/capabilities",
                             capabilities={"hover": True})
        assert result["capabilities"]["hover"]
        assert not result["capabilities"]["codeLens"]
        assert set(result["shapes"]) == {"top_down", "bottom_up", "flat"}


class TestMultiProfileRequests:
    def test_diff_request(self, simple_profile, spark_pair):
        rdd, sql = spark_pair
        ide = MockIDE()
        base_id = ide.session.open(rdd).id
        treat_id = ide.session.open(sql).id
        result = ide.request("view/diff", baselineId=base_id,
                             treatmentId=treat_id)
        assert result["tags"].get("A") and result["tags"].get("D")

    def test_aggregate_request(self, simple_profile):
        ide = MockIDE()
        a = ide.session.open(simple_profile).id
        b = ide.session.open(simple_profile).id
        result = ide.request("view/aggregate", profileIds=[a, b])
        merged = ide.session.view(result["profileId"], "top_down")
        work = merged.find_by_name("work")[0]
        assert work.inclusive[merged.schema.index_of("cpu:sum")] == 1800.0

    def test_click_returns_histogram(self, simple_profile):
        ide = MockIDE()
        a = ide.session.open(simple_profile).id
        b = ide.session.open(simple_profile).id
        result = ide.request("view/aggregate", profileIds=[a, b])
        merged_id = result["profileId"]
        merged = ide.session.view(merged_id, "top_down")
        opened = ide.session.get(merged_id)
        work = merged.find_by_name("work")[0]
        clicked = ide.request("view/click", profileId=merged_id,
                              nodeRef=opened.node_ref(work))
        assert clicked["histogram"]["series"] == [900.0, 900.0]
        assert len(clicked["histogram"]["sparkline"]) == 2

    def test_derive_metric_request(self, ide):
        result = ide.request("view/deriveMetric", profileId=ide.profile_id,
                             name="cpu_us", formula="cpu / 1000")
        tree = ide.session.view(ide.profile_id, "top_down")
        assert tree.schema[result["metricIndex"]].name == "cpu_us"

    def test_bad_formula_is_clean_error(self, ide):
        with pytest.raises(ProtocolError, match="failed"):
            ide.request("view/deriveMetric", profileId=ide.profile_id,
                        name="x", formula="cpu +")


class TestEngineStats:
    def test_engine_stats_request(self, ide):
        from repro.engine import AnalysisEngine
        # Give the session a private engine so counters are deterministic.
        ide.session.engine = AnalysisEngine()
        profile = ide.session.get(ide.profile_id).profile
        # Opening the same profile twice shares the memoized transform and
        # layout: the second open is all cache hits.
        ide.session.open(profile, shape="bottom_up")
        ide.session.open(profile, shape="bottom_up")
        stats = ide.request("view/engineStats")
        assert set(stats) >= {"hits", "misses", "evictions", "bypasses",
                              "hitRate", "operations", "size", "capacity",
                              "pool"}
        assert stats["hits"] >= 2       # transform + layout on reopen
        assert stats["misses"] >= 2
        assert stats["operations"]["transform"]["hits"] >= 1

    def test_hover_twice_hits_attribution_cache(self, ide):
        from repro.engine import AnalysisEngine
        ide.session.engine = AnalysisEngine()
        ide.request("view/hover", profileId=ide.profile_id,
                    file="app.c", line=42)
        before = ide.request("view/engineStats")
        ide.request("view/hover", profileId=ide.profile_id,
                    file="app.c", line=42)
        after = ide.request("view/engineStats")
        assert after["operations"]["annotation"]["hits"] \
            > before["operations"]["annotation"].get("hits", 0)


class TestServer:
    def test_stdio_server_round_trip(self, tmp_path, simple_profile):
        import io
        import json
        from repro.ide.server import StdioServer

        path = str(tmp_path / "p.ezvw")
        dump(simple_profile, path)
        requests = "\n".join([
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": "view/open",
                        "params": {"path": path}}),
            json.dumps({"jsonrpc": "2.0", "id": 2, "method": "view/summary",
                        "params": {"profileId": 1}}),
            "garbage that is not json",
            json.dumps({"jsonrpc": "2.0", "id": 3, "method": "shutdown",
                        "params": {}}),
        ]) + "\n"
        stdout = io.StringIO()
        server = StdioServer(stdin=io.StringIO(requests), stdout=stdout)
        handled = server.serve_forever()
        assert handled == 4
        lines = [json.loads(line) for line in
                 stdout.getvalue().strip().splitlines()]
        by_id = {msg.get("id"): msg for msg in lines if "id" in msg}
        assert by_id[1]["result"]["profileId"] == 1
        assert "Hottest" in by_id[2]["result"]["body"]
        assert by_id[None]["error"]["code"] == -32700
        assert by_id[3]["result"] == {"ok": True}
        # The summary triggered an ide/* notification on the stream too.
        notifications = [msg for msg in lines if msg.get("method")]
        assert any(msg["method"] == "ide/showFloatingWindow"
                   for msg in notifications)


class TestTableRequests:
    def test_table_initial_rows(self, ide):
        result = ide.request("view/table", profileId=ide.profile_id)
        assert result["columns"] == ["cpu", "alloc"]
        assert [row["label"] for row in result["rows"]] == ["main"]
        assert not result["rows"][0]["expanded"] or True

    def test_table_expand_node(self, ide):
        result = ide.request("view/table", profileId=ide.profile_id)
        main_ref = result["rows"][0]["ref"]
        result = ide.request("view/tableExpand", profileId=ide.profile_id,
                             nodeRef=main_ref)
        labels = [row["label"] for row in result["rows"]]
        assert labels == ["main", "work", "idle"]
        depths = [row["depth"] for row in result["rows"]]
        assert depths == [0, 1, 1]

    def test_table_expand_hot_path(self, ide):
        result = ide.request("view/tableExpand", profileId=ide.profile_id,
                             hotPath=True)
        labels = [row["label"] for row in result["rows"]]
        assert "inner" in labels

    def test_table_expand_all_with_limit(self, ide):
        result = ide.request("view/tableExpand", profileId=ide.profile_id,
                             maxRows=2)
        assert len(result["rows"]) == 2

    def test_table_values_are_inclusive(self, ide):
        result = ide.request("view/tableExpand", profileId=ide.profile_id,
                             hotPath=True)
        by_label = {row["label"]: row["values"] for row in result["rows"]}
        assert by_label["work"][0] == 900.0


class TestExport:
    @pytest.mark.parametrize("format,needle", [
        ("svg", "<svg"),
        ("html", "<!DOCTYPE html>"),
        ("folded", "main;work;inner"),
        ("json", '"easyview-json"'),
        ("text", "main"),
    ])
    def test_export_formats(self, ide, format, needle):
        result = ide.request("view/export", profileId=ide.profile_id,
                             format=format)
        assert needle in result["content"]

    def test_export_json_round_trips(self, ide):
        from repro.core import jsonio
        content = ide.request("view/export", profileId=ide.profile_id,
                              format="json")["content"]
        back = jsonio.loads(content)
        assert back.total("cpu") == 1000.0

    def test_unknown_format_rejected(self, ide):
        with pytest.raises(ProtocolError):
            ide.request("view/export", profileId=ide.profile_id,
                        format="pdf")
