"""Tests for the Profile container and monitoring points."""

import pytest

from repro.core.frame import intern_frame
from repro.core.metric import Metric
from repro.core.monitor import MonitoringPoint, PointKind
from repro.core.profile import Profile
from repro.errors import SchemaError


def make_profile():
    profile = Profile()
    profile.add_metric(Metric("cpu", unit="nanoseconds"))
    profile.add_metric(Metric("bytes", unit="bytes"))
    return profile


class TestSamples:
    def test_add_sample_builds_tree(self):
        profile = make_profile()
        profile.add_sample([intern_frame("main"), intern_frame("f")],
                           {0: 10.0})
        assert profile.node_count() == 3
        assert profile.total("cpu") == 10.0

    def test_out_of_range_column_rejected(self):
        profile = make_profile()
        with pytest.raises(SchemaError):
            profile.add_sample([intern_frame("main")], {5: 1.0})

    def test_total_of_unknown_metric_raises(self):
        profile = make_profile()
        with pytest.raises(SchemaError):
            profile.total("nope")


class TestPoints:
    def test_point_arity_enforced(self):
        profile = make_profile()
        node = profile.cct.add_path([intern_frame("main")])
        with pytest.raises(SchemaError, match="expects 3 contexts"):
            profile.add_point(MonitoringPoint(
                kind=PointKind.USE_REUSE, contexts=[node], values={}))

    def test_point_column_checked(self):
        profile = make_profile()
        node = profile.cct.add_path([intern_frame("main")])
        with pytest.raises(SchemaError):
            profile.add_point(MonitoringPoint(
                kind=PointKind.ALLOCATION, contexts=[node], values={9: 1.0}))

    def test_points_of_kind(self):
        profile = make_profile()
        node = profile.cct.add_path([intern_frame("main")])
        profile.add_point(MonitoringPoint(kind=PointKind.ALLOCATION,
                                          contexts=[node], values={1: 8.0}))
        profile.add_point(MonitoringPoint(kind=PointKind.DATA_RACE,
                                          contexts=[node, node], values={}))
        assert len(profile.points_of_kind(PointKind.ALLOCATION)) == 1
        assert len(profile.points_of_kind(PointKind.DATA_RACE)) == 1

    def test_snapshot_sequences_sorted_unique(self):
        profile = make_profile()
        node = profile.cct.add_path([intern_frame("main")])
        for seq in (3, 1, 3, 2):
            profile.add_point(MonitoringPoint(
                kind=PointKind.ALLOCATION, contexts=[node],
                values={1: 1.0}, sequence=seq))
        assert profile.snapshot_sequences() == [1, 2, 3]

    def test_point_primary_requires_contexts(self):
        point = MonitoringPoint()
        with pytest.raises(ValueError):
            point.primary()

    def test_point_value_default_zero(self):
        point = MonitoringPoint(values={0: 5.0})
        assert point.value(0) == 5.0
        assert point.value(3) == 0.0


class TestSummary:
    def test_summary_fields(self, simple_profile):
        summary = simple_profile.summary()
        assert summary["tool"] == "test"
        assert summary["contexts"] == simple_profile.node_count()
        assert "cpu" in summary["metrics"]
        assert summary["max_depth"] == 3

    def test_repr_mentions_tool(self, simple_profile):
        assert "test" in repr(simple_profile)

    def test_find_by_name(self, simple_profile):
        assert len(simple_profile.find_by_name("work")) == 1
