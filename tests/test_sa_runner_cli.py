"""SelfCheck runner, baseline, and CLI contract tests.

Covers subject normalization, the file walker, EV400, the baseline
waiver lifecycle (justification required, carry-over, staleness), the
``easyview selfcheck`` exit-code contract (0/1/2), ``--json`` output,
and the EV4xx lint-directive aliases.
"""

import json
import os
import textwrap

import pytest

from repro.cli import main
from repro.lint import LintConfig, Severity
from repro.sa import (
    Baseline,
    BaselineError,
    UNREVIEWED,
    Waiver,
    analyze_source,
    iter_python_files,
    normalize_subject,
    run_selfcheck,
)

RACY = textwrap.dedent("""\
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def hit(self):
            self.count += 1
    """)

CLEAN = textwrap.dedent("""\
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def hit(self):
            with self._lock:
                self.count += 1
    """)


@pytest.fixture
def tree(tmp_path):
    """A mini source tree with one racy module, plus a baseline path."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "stats.py").write_text(RACY)
    return {"root": str(tmp_path / "src"),
            "module": pkg / "stats.py",
            "baseline": str(tmp_path / "baseline.json")}


class TestRunner:
    def test_normalize_subject(self):
        assert normalize_subject("src/repro/store/wal.py") \
            == "repro/store/wal.py"
        assert normalize_subject("/abs/repo/src/repro/cli.py") \
            == "repro/cli.py"
        assert normalize_subject("scripts/tool.py") == "scripts/tool.py"

    def test_iter_python_files_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "note.txt").write_text("not python\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / ".git").mkdir()
        (tmp_path / ".git" / "hook.py").write_text("")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        files = iter_python_files([str(tmp_path)])
        names = [os.path.relpath(f, str(tmp_path)) for f in files]
        assert names == ["a.py", os.path.join("sub", "b.py")]

    def test_single_file_path_is_accepted(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("z = 3\n")
        assert iter_python_files([str(target)]) == [str(target)]

    def test_ev400_on_syntax_error(self):
        diags = analyze_source("def broken( return 1\n", "repro/bad.py")
        assert [d.rule for d in diags] == ["EV400"]
        assert diags[0].severity is Severity.ERROR

    def test_run_selfcheck_counts(self, tree):
        result = run_selfcheck([tree["root"]], baseline=Baseline())
        assert result.files == 1
        assert [d.rule for d in result.new] == ["EV402"]
        assert result.new[0].subject == "repro/stats.py"
        assert not result.clean

    def test_result_to_dict_shape(self, tree):
        result = run_selfcheck([tree["root"]], baseline=Baseline())
        payload = result.to_dict()
        assert payload["tool"] == "easyview-selfcheck"
        assert payload["files"] == 1
        assert payload["clean"] is False
        assert len(payload["findings"]) == 1
        assert [d["ruleId"] for d in payload["new"]] == ["EV402"]
        assert payload["waived"] == 0
        assert payload["staleWaivers"] == []


class TestBaseline:
    def waiver_for(self, tree):
        result = run_selfcheck([tree["root"]], baseline=Baseline())
        diag = result.new[0]
        return Waiver(rule=diag.rule, subject=diag.subject,
                      message=diag.message,
                      justification="counter is approximate by design")

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "nope.json"))
        assert len(baseline) == 0

    def test_waived_finding_is_not_new(self, tree):
        baseline = Baseline([self.waiver_for(tree)])
        result = run_selfcheck([tree["root"]], baseline=baseline)
        assert result.clean
        assert result.new == [] and len(result.waived) == 1
        assert result.stale == []

    def test_stale_waiver_detected_after_fix(self, tree):
        baseline = Baseline([self.waiver_for(tree)])
        tree["module"].write_text(CLEAN)
        result = run_selfcheck([tree["root"]], baseline=baseline)
        assert result.clean  # no findings...
        assert len(result.stale) == 1  # ...but the waiver is now dead

    def test_save_load_roundtrip(self, tree):
        baseline = Baseline([self.waiver_for(tree)])
        baseline.save(tree["baseline"])
        loaded = Baseline.load(tree["baseline"])
        assert [w.key for w in loaded.waivers] \
            == [w.key for w in baseline.waivers]
        assert loaded.waivers[0].justification \
            == "counter is approximate by design"

    def test_empty_justification_rejected_at_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"waivers": [
            {"rule": "EV402", "subject": "repro/x.py",
             "message": "m", "justification": "   "}]}))
        with pytest.raises(BaselineError, match="empty"):
            Baseline.load(str(path))

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BaselineError):
            Baseline.load(str(path))

    def test_from_findings_preserves_justifications(self, tree):
        old = Baseline([self.waiver_for(tree)])
        result = run_selfcheck([tree["root"]], baseline=Baseline())
        updated = Baseline.from_findings(result.diagnostics, previous=old)
        assert updated.waivers[0].justification \
            == "counter is approximate by design"

    def test_from_findings_stamps_new_entries_unreviewed(self, tree):
        result = run_selfcheck([tree["root"]], baseline=Baseline())
        fresh = Baseline.from_findings(result.diagnostics)
        assert [w.justification for w in fresh.waivers] == [UNREVIEWED]


class TestCLI:
    def test_new_finding_exits_1(self, tree, capsys):
        rc = main(["selfcheck", tree["root"],
                   "--baseline", tree["baseline"]])
        assert rc == 1
        out = capsys.readouterr().out
        assert "EV402" in out
        assert "1 new" in out

    def test_update_baseline_then_clean_exits_0(self, tree, capsys):
        assert main(["selfcheck", tree["root"], "--baseline",
                     tree["baseline"], "--update-baseline"]) == 0
        assert UNREVIEWED in open(tree["baseline"]).read()
        assert main(["selfcheck", tree["root"],
                     "--baseline", tree["baseline"]]) == 0
        out = capsys.readouterr().out
        assert "0 new, 1 waived" in out

    def test_stale_waiver_exits_1(self, tree, capsys):
        assert main(["selfcheck", tree["root"], "--baseline",
                     tree["baseline"], "--update-baseline"]) == 0
        tree["module"].write_text(CLEAN)
        rc = main(["selfcheck", tree["root"],
                   "--baseline", tree["baseline"]])
        assert rc == 1
        assert "stale waiver" in capsys.readouterr().out

    def test_corrupt_baseline_exits_2(self, tree, capsys):
        with open(tree["baseline"], "w") as handle:
            handle.write("not json {")
        rc = main(["selfcheck", tree["root"],
                   "--baseline", tree["baseline"]])
        assert rc == 2
        assert "internal error" in capsys.readouterr().err

    def test_json_output(self, tree, capsys):
        rc = main(["selfcheck", tree["root"],
                   "--baseline", tree["baseline"], "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "easyview-selfcheck"
        assert len(payload["new"]) == 1
        assert payload["findings"][0]["ruleId"] == "EV402"

    def test_disable_silences_the_rule(self, tree):
        assert main(["selfcheck", tree["root"], "--baseline",
                     tree["baseline"], "--disable", "EV402"]) == 0


class TestDirectives:
    def test_ev4xx_prefix_alias_disables_the_family(self):
        config = LintConfig.from_directives(["EV4xx=off"])
        assert analyze_source(RACY, "repro/stats.py", config) == []

    def test_family_name_disables_too(self):
        config = LintConfig.from_directives(["selfcheck=off"])
        assert analyze_source(RACY, "repro/stats.py", config) == []

    def test_family_severity_releveling(self):
        config = LintConfig.from_directives(["selfcheck=hint"])
        diags = analyze_source(RACY, "repro/stats.py", config)
        assert [d.severity for d in diags] == [Severity.HINT]

    def test_single_rule_disable_leaves_siblings_alone(self):
        config = LintConfig.from_directives(["EV402=off"])
        assert analyze_source(RACY, "repro/stats.py", config) == []
        both = RACY + textwrap.dedent("""\

        def leak(path, sink):
            handle = open(path, "rb")
            sink.feed(handle.read(1))
        """)
        diags = analyze_source(both, "repro/store/stats.py", config)
        assert {d.rule for d in diags} == {"EV422"}


class TestRuleExamples:
    """Every EV4xx rule's registered bad/good snippets are executable
    evidence: the bad one triggers the rule, the good one is clean."""

    def test_bad_examples_trigger_their_rule(self):
        from repro.lint.registry import all_rules
        for rule in all_rules("selfcheck"):
            diags = analyze_source(rule.bad,
                                   "repro/store/_example_.py")
            assert rule.id in {d.rule for d in diags}, rule.id

    def test_good_examples_are_clean(self):
        from repro.lint.registry import all_rules
        for rule in all_rules("selfcheck"):
            diags = analyze_source(rule.good,
                                   "repro/store/_example_.py")
            assert rule.id not in {d.rule for d in diags}, rule.id
