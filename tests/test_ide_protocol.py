"""Tests for the Profile View Protocol message layer."""

import pytest

from repro.errors import ProtocolError
from repro.ide import protocol as pvp


class TestRequests:
    def test_request_roundtrip(self):
        request = pvp.Request(method="view/open",
                              params={"path": "/p.pb.gz"}, id=7)
        parsed = pvp.parse_message(request.to_json())
        assert isinstance(parsed, pvp.Request)
        assert parsed.method == "view/open"
        assert parsed.params == {"path": "/p.pb.gz"}
        assert parsed.id == 7

    def test_notification_has_no_id(self):
        note = pvp.Request(method="ide/showHover", params={})
        assert note.is_notification
        parsed = pvp.parse_message(note.to_json())
        assert parsed.id is None

    def test_require_params(self):
        request = pvp.Request(method="view/open", params={})
        with pytest.raises(ProtocolError, match="requires parameters"):
            pvp.require_params(request, "path")


class TestResponses:
    def test_success_roundtrip(self):
        response = pvp.Response.success(3, {"ok": True})
        parsed = pvp.parse_message(response.to_json())
        assert isinstance(parsed, pvp.Response)
        assert parsed.ok and parsed.result == {"ok": True}

    def test_failure_roundtrip(self):
        response = pvp.Response.failure(3, pvp.INVALID_PARAMS, "bad")
        parsed = pvp.parse_message(response.to_json())
        assert not parsed.ok
        assert parsed.error["code"] == pvp.INVALID_PARAMS


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "not json",
        "[1, 2]",
        '{"jsonrpc": "1.0", "method": "x"}',
        '{"jsonrpc": "2.0"}',
        '{"jsonrpc": "2.0", "method": 5}',
        '{"jsonrpc": "2.0", "method": "m", "params": [1]}',
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(ProtocolError):
            pvp.parse_message(text)

    def test_method_namespaces_defined(self):
        assert pvp.VIEW_OPEN in pvp.VIEW_METHODS
        assert pvp.IDE_OPEN_DOCUMENT in pvp.IDE_METHODS
        assert not (pvp.VIEW_METHODS & pvp.IDE_METHODS)
