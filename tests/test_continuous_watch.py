"""The regression watch: windowed diffs, ranking, golden report, PVP."""

from __future__ import annotations

import json
import os

import pytest

from repro.continuous.watch import RegressionWatch
from repro.profilers.workloads import checkout_service_profile
from repro.store import ProfileStore

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "watch_golden.json")

SECOND = 10 ** 9


def ingest_capture(store, slow, t_seconds, seed, service="checkout"):
    profile = checkout_service_profile(slow=slow, scale=3, seed=seed)
    profile.meta.time_nanos = t_seconds * SECOND
    return store.ingest(profile, service=service)


@pytest.fixture
def store(tmp_path):
    return ProfileStore(str(tmp_path / "store"), clock=lambda: SECOND)


@pytest.fixture
def regressed_store(store):
    """Three fast captures, then the same three seeds slowed 4x."""
    for i, (slow, t) in enumerate([(False, 1), (False, 2), (False, 3),
                                   (True, 4), (True, 5), (True, 6)]):
        ingest_capture(store, slow=slow, t_seconds=t, seed=50 + i % 3)
    return store


class TestWindowedQuery:
    def test_query_window_matches_plain_query(self, regressed_store):
        plain = regressed_store.query("service=checkout until=3000000000")
        windowed = regressed_store.query_window(
            "service=checkout until=3000000000")
        assert [e.seq for e in plain.entries] \
            == [e.seq for e in windowed.entries]
        assert plain.digest() == windowed.digest()

    def test_empty_window_has_no_tree(self, store):
        result = store.query_window("service=nobody")
        assert result.tree is None
        assert result.entries == []

    def test_repeat_window_skips_profile_loads(self, regressed_store):
        loads = {"n": 0}
        original = regressed_store.load

        def counting_load(entry):
            loads["n"] += 1
            return original(entry)

        regressed_store.load = counting_load
        regressed_store.query_window("service=checkout")
        cold = loads["n"]
        assert cold > 0
        regressed_store.query_window("service=checkout")
        assert loads["n"] == cold  # warm window: zero loads

    def test_window_key_tracks_membership(self, regressed_store):
        entries = regressed_store.select("service=checkout")
        key_all = regressed_store.window_key(entries)
        assert key_all == regressed_store.window_key(list(reversed(entries)))
        assert key_all != regressed_store.window_key(entries[:-1])

    def test_new_ingest_changes_the_window(self, regressed_store):
        before = regressed_store.query_window("service=checkout")
        ingest_capture(regressed_store, slow=True, t_seconds=7, seed=99)
        after = regressed_store.query_window("service=checkout")
        assert len(after.entries) == len(before.entries) + 1
        assert after.digest() != before.digest()


class TestRegressionRanking:
    def tick(self, store, now=6):
        watch = RegressionWatch(store, query="service=checkout type=cpu",
                                window="3s", baseline="3s")
        return watch.tick(now_nanos=now * SECOND)

    def test_injected_slowdown_ranks_its_frame_first(self, regressed_store):
        report = self.tick(regressed_store)
        assert report.current_captures == 3
        assert report.baseline_captures == 3
        assert report.has_regressions
        top = report.regressions[0]
        assert top.path == "main > handle_request > parse_payload"
        assert top.ratio == pytest.approx(4.0, rel=1e-6)
        # Ancestors grew just as much inclusively but explain nothing:
        # self-delta attribution must keep them out of the top slot.
        paths = [r.path for r in report.regressions]
        assert "main" not in paths[:1]

    def test_no_change_windows_report_empty(self, store):
        for i, t in enumerate([1, 2, 3]):
            ingest_capture(store, slow=False, t_seconds=t, seed=50 + i)
        for i, t in enumerate([4, 5, 6]):
            ingest_capture(store, slow=False, t_seconds=t, seed=50 + i)
        report = self.tick(store)
        assert report.current_captures == 3
        assert not report.regressions
        assert not report.improvements
        assert set(report.tags) == {"="}

    def test_empty_baseline_window_is_not_a_regression(self, store):
        for i, t in enumerate([4, 5, 6]):
            ingest_capture(store, slow=True, t_seconds=t, seed=50 + i)
        report = self.tick(store)
        assert report.baseline_captures == 0
        assert not report.regressions

    def test_recovery_shows_as_improvement(self, store):
        # Slow baseline window, fast current window: the fix landed.
        for i, t in enumerate([1, 2, 3]):
            ingest_capture(store, slow=True, t_seconds=t, seed=50 + i)
        for i, t in enumerate([4, 5, 6]):
            ingest_capture(store, slow=False, t_seconds=t, seed=50 + i)
        report = self.tick(store)
        assert not report.regressions
        assert report.improvements
        assert report.improvements[0].path \
            == "main > handle_request > parse_payload"
        assert report.improvements[0].self_delta < 0

    def test_min_ratio_filters_small_growth(self, regressed_store):
        watch = RegressionWatch(regressed_store,
                                query="service=checkout type=cpu",
                                window="3s", baseline="3s",
                                min_ratio=10.0)
        report = watch.tick(now_nanos=6 * SECOND)
        assert not report.regressions  # 4x < 10x floor

    def test_report_renders_for_terminals(self, regressed_store):
        text = self.tick(regressed_store).render()
        assert "parse_payload" in text
        assert "x4.0" in text

    def test_scheduled_run_emits_per_tick(self, regressed_store):
        naps = []
        watch = RegressionWatch(regressed_store,
                                query="service=checkout type=cpu",
                                window="100s", baseline="100s",
                                clock=lambda: 6 * SECOND)
        seen = []
        watch.run(3, interval_seconds=2.5, sleep=naps.append,
                  on_report=lambda r: seen.append(r))
        assert len(seen) == 3
        assert naps == [2.5, 2.5]


class TestGoldenReport:
    def test_report_matches_golden_snapshot(self, regressed_store):
        report = RegressionWatch(
            regressed_store, query="service=checkout type=cpu",
            window="3s", baseline="3s").tick(now_nanos=6 * SECOND)
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        assert report.to_dict() == golden

    def test_report_is_stable_across_repeats(self, regressed_store):
        watch = RegressionWatch(regressed_store,
                                query="service=checkout type=cpu",
                                window="3s", baseline="3s")
        first = watch.tick(now_nanos=6 * SECOND)
        second = watch.tick(now_nanos=6 * SECOND)
        assert first.to_json() == second.to_json()


class TestWatchOverPVP:
    def test_watch_report_request(self, tmp_path):
        from repro.ide.mock_ide import MockIDE

        root = str(tmp_path / "store")
        store = ProfileStore(root, clock=lambda: SECOND)
        for i, (slow, t) in enumerate([(False, 1), (False, 2), (False, 3),
                                       (True, 4), (True, 5), (True, 6)]):
            ingest_capture(store, slow=slow, t_seconds=t, seed=50 + i % 3)
        store.flush()

        ide = MockIDE()
        result = ide.request("watch/report", store=root,
                             query="service=checkout type=cpu",
                             window="3s", baseline="3s",
                             nowNanos=6 * SECOND)
        assert result["currentCaptures"] == 3
        assert result["regressions"][0]["path"] \
            == "main > handle_request > parse_payload"

    def test_watch_report_requires_params(self):
        from repro.errors import ProtocolError
        from repro.ide.mock_ide import MockIDE

        with pytest.raises(ProtocolError):
            MockIDE().request("watch/report", store="/tmp/x")


class TestWatchCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main
        rc = main(argv)
        out = capsys.readouterr()
        return rc, out.out, out.err

    def test_one_shot_report_with_json_and_exit_code(self, tmp_path,
                                                     capsys):
        root = str(tmp_path / "store")
        store = ProfileStore(root, clock=lambda: 7 * SECOND)
        for i, (slow, t) in enumerate([(False, 1), (False, 2), (False, 3),
                                       (True, 4), (True, 5), (True, 6)]):
            ingest_capture(store, slow=slow, t_seconds=t, seed=50 + i % 3)
        store.flush()

        out_path = str(tmp_path / "report.json")
        rc, out, err = self.run_cli(
            ["watch", "--store", root, "service=checkout",
             "--window", "4s", "--baseline", "4s",
             "--now", str(7 * SECOND),
             "--json", out_path, "--fail-on-regression"], capsys)
        assert rc == 2  # regression present → CI-gating exit code
        assert "parse_payload" in out
        with open(out_path) as fh:
            report = json.load(fh)
        assert report["regressions"][0]["path"].endswith("parse_payload")

    def test_clean_stream_exits_zero(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        store = ProfileStore(root, clock=lambda: 7 * SECOND)
        for i, t in enumerate([1, 2, 3, 4, 5, 6]):
            ingest_capture(store, slow=False, t_seconds=t, seed=50 + i % 3)
        store.flush()
        rc, out, _ = self.run_cli(
            ["watch", "--store", root, "service=checkout",
             "--window", "4s", "--baseline", "4s",
             "--now", str(7 * SECOND),
             "--fail-on-regression"], capsys)
        assert rc == 0
        assert "no change" in out
