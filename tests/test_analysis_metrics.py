"""Tests for inclusive/exclusive metric computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ProfileBuilder
from repro.analysis.metrics import (check_inclusive_invariant,
                                    compute_inclusive, inclusive_value,
                                    totals)


class TestComputeInclusive:
    def test_root_inclusive_is_program_total(self, simple_profile):
        compute_inclusive(simple_profile)
        cpu = simple_profile.schema.index_of("cpu")
        assert simple_profile.root.inclusive[cpu] == 1000.0

    def test_interior_node_includes_subtree(self, simple_profile):
        compute_inclusive(simple_profile)
        cpu = simple_profile.schema.index_of("cpu")
        work = simple_profile.find_by_name("work")[0]
        assert work.inclusive[cpu] == 900.0   # 200 self + 700 inner
        assert work.exclusive(cpu) == 200.0

    def test_leaf_inclusive_equals_exclusive(self, simple_profile):
        compute_inclusive(simple_profile)
        cpu = simple_profile.schema.index_of("cpu")
        inner = simple_profile.find_by_name("inner")[0]
        assert inner.inclusive[cpu] == inner.exclusive(cpu) == 700.0

    def test_subset_of_columns(self, simple_profile):
        compute_inclusive(simple_profile, [1])
        assert 1 in simple_profile.root.inclusive
        assert 0 not in simple_profile.root.inclusive

    def test_cached_result_skipped(self, simple_profile):
        compute_inclusive(simple_profile)
        simple_profile.root.inclusive[0] = -1.0  # poison the cache
        compute_inclusive(simple_profile)         # must not recompute
        assert simple_profile.root.inclusive[0] == -1.0

    def test_cache_invalidation_recomputes(self, simple_profile):
        compute_inclusive(simple_profile)
        simple_profile.cct.clear_inclusive_cache()
        compute_inclusive(simple_profile)
        assert simple_profile.root.inclusive[0] == 1000.0

    def test_inclusive_value_lazy(self, simple_profile):
        work = simple_profile.find_by_name("work")[0]
        assert inclusive_value(simple_profile, work, "cpu") == 900.0

    def test_totals(self, simple_profile):
        assert totals(simple_profile) == {"cpu": 1000.0, "alloc": 64.0}


class TestInvariant:
    def test_invariant_holds_after_compute(self, simple_profile):
        compute_inclusive(simple_profile)
        assert check_inclusive_invariant(simple_profile) == []

    def test_invariant_detects_corruption(self, simple_profile):
        compute_inclusive(simple_profile)
        node = simple_profile.find_by_name("work")[0]
        node.inclusive[0] += 123.0
        violations = check_inclusive_invariant(simple_profile)
        assert violations and "work" in violations[0]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.lists(st.sampled_from("abcd"), min_size=1, max_size=5),
                  st.floats(min_value=0, max_value=1e6)),
        min_size=1, max_size=20))
    def test_invariant_holds_for_random_profiles(self, samples):
        builder = ProfileBuilder()
        metric = builder.metric("m")
        for path, value in samples:
            builder.sample([(c, "s.c", 1) for c in path], {metric: value})
        profile = builder.build()
        compute_inclusive(profile)
        assert check_inclusive_invariant(profile) == []
        total = sum(value for _, value in samples)
        assert profile.root.inclusive[0] == pytest.approx(total)
