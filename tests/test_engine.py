"""Tests for the shared analysis engine: digests, LRU cache, worker pool,
memoization, and invalidation-on-mutation."""

import pytest

from repro import ProfileBuilder
from repro.analysis.callbacks import Customization
from repro.analysis.diff import add_delta_column
from repro.analysis.formula import derive
from repro.analysis.transform import top_down, transform
from repro.analysis.viewtree import line_merge_key
from repro.core.digest import profile_digest, schema_digest, viewtree_digest
from repro.engine import (AnalysisEngine, LRUCache, WorkerPool,
                          default_worker_count, get_engine,
                          invalidate_everywhere)


def build(entries, tool="test", metrics=("cpu",)):
    builder = ProfileBuilder(tool=tool)
    indices = [builder.metric(name) for name in metrics]
    for path, values in entries:
        builder.sample([(name, "s.c", 1) for name in path],
                       {indices[i]: v for i, v in enumerate(values)})
    return builder.build()


ENTRIES = [(("main", "work"), (10.0,)),
           (("main", "work", "inner"), (4.0,)),
           (("main", "idle"), (2.0,))]


class TestDigests:
    def test_profile_digest_deterministic(self):
        assert profile_digest(build(ENTRIES)) == profile_digest(build(ENTRIES))

    def test_profile_digest_insertion_order_independent(self):
        # Same samples recorded in a different order → same digest.
        assert (profile_digest(build(ENTRIES))
                == profile_digest(build(list(reversed(ENTRIES)))))

    def test_profile_digest_changes_on_new_sample(self):
        from repro.core.frame import Frame
        profile = build(ENTRIES)
        before = profile_digest(profile)
        profile.add_sample([Frame(name="main", file="s.c", line=1),
                            Frame(name="late", file="s.c", line=9)],
                           {0: 3.0})
        assert profile_digest(profile) != before

    def test_profile_digest_changes_on_value_change(self):
        changed = [(("main", "work"), (11.0,))] + ENTRIES[1:]
        assert profile_digest(build(ENTRIES)) != profile_digest(build(changed))

    def test_profile_digest_ignores_cached_inclusives(self):
        from repro.analysis.metrics import compute_inclusive
        profile = build(ENTRIES)
        before = profile_digest(profile)
        compute_inclusive(profile)
        assert profile_digest(profile) == before

    def test_profile_digest_distinguishes_chain_from_siblings(self):
        chain = build([(("a", "b", "c"), (1.0,))])
        sibs = build([(("a", "b"), (1.0,)), (("a", "c"), (0.0,))])
        assert profile_digest(chain) != profile_digest(sibs)

    def test_schema_digest_order_sensitive(self):
        p1 = build([], metrics=("cpu", "alloc"))
        p2 = build([], metrics=("alloc", "cpu"))
        assert schema_digest(p1.schema) != schema_digest(p2.schema)

    def test_viewtree_digest_stable_and_mutation_sensitive(self):
        t1 = top_down(build(ENTRIES))
        t2 = top_down(build(ENTRIES))
        assert viewtree_digest(t1) == viewtree_digest(t2)
        derive(t1, "dbl", "cpu * 2")
        assert viewtree_digest(t1) != viewtree_digest(t2)

    def test_viewtree_digest_covers_tags(self):
        from repro.analysis.diff import diff_profiles
        base = build(ENTRIES)
        d1 = diff_profiles(base, build(ENTRIES))
        d2 = diff_profiles(base, build([(("main", "work"), (99.0,))]))
        assert viewtree_digest(d1) != viewtree_digest(d2)


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=4)
        found, _ = cache.lookup("transform", "k1")
        assert not found
        cache.store("k1", "v1")
        found, value = cache.lookup("transform", "k1")
        assert found and value == "v1"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.per_operation["transform"] == {"hits": 1,
                                                          "misses": 1}
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("op", "a")  # refresh a → b is now LRU
        cache.store("c", 3)
        assert cache.stats.evictions == 1
        assert cache.lookup("op", "b")[0] is False
        assert cache.lookup("op", "a") == (True, 1)
        assert cache.lookup("op", "c") == (True, 3)

    def test_forget_value_drops_only_matching_entries(self):
        cache = LRUCache()
        sentinel = object()
        cache.store("x", sentinel)
        cache.store("y", sentinel)
        cache.store("z", "other")
        assert cache.forget_value(sentinel) == 2
        assert len(cache) == 1
        assert cache.lookup("op", "z") == (True, "other")

    def test_clear_preserves_counters(self):
        cache = LRUCache()
        cache.store("a", 1)
        cache.lookup("op", "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestWorkerPool:
    def test_inline_below_threshold(self):
        pool = WorkerPool(max_workers=4)
        assert pool.map(lambda x: x + 1, [1, 2]) == [2, 3]
        assert pool.inline_batches == 1
        assert pool.parallel_batches == 0
        pool.shutdown()

    def test_parallel_preserves_order(self):
        pool = WorkerPool(max_workers=4)
        items = list(range(20))
        assert pool.map(lambda x: x * x, items) == [x * x for x in items]
        assert pool.parallel_batches == 1
        pool.shutdown()

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(max_workers=1)
        assert not pool.enabled
        assert pool.map(lambda x: -x, list(range(10))) == list(range(0, -10, -1))
        assert pool.parallel_batches == 0
        pool.shutdown()

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_large_batch_chunks_context_copies(self):
        """One context copy per chunk, not one (let alone two) per item.

        Items sharing a chunk run sequentially in the same context copy,
        so a ContextVar set by a chunk's first item is visible to the
        rest of that chunk; each fresh copy observes the default once.
        """
        import contextvars
        from repro.engine import parallel as par
        marker = contextvars.ContextVar("easyview-chunk-marker",
                                        default=False)
        fresh_contexts = []

        def fn(x):
            if not marker.get():
                marker.set(True)
                fresh_contexts.append(x)
            return x + 1

        pool = WorkerPool(max_workers=2)
        items = list(range(200))
        try:
            result = pool.map(fn, items)
        finally:
            pool.shutdown()
        assert result == [x + 1 for x in items]
        max_chunks = pool.max_workers * par.CHUNKS_PER_WORKER
        assert 1 <= len(fresh_contexts) <= max_chunks < len(items)

    def test_context_flows_into_chunked_workers(self):
        import contextvars
        var = contextvars.ContextVar("easyview-test", default="unset")
        var.set("submitted")
        pool = WorkerPool(max_workers=4)
        try:
            results = pool.map(lambda _: var.get(), list(range(50)))
        finally:
            pool.shutdown()
        assert results == ["submitted"] * 50

    def test_chunked_exceptions_propagate(self):
        pool = WorkerPool(max_workers=4)

        def boom(x):
            if x == 37:
                raise ValueError("item 37")
            return x

        try:
            with pytest.raises(ValueError, match="item 37"):
                pool.map(boom, list(range(100)))
        finally:
            pool.shutdown()


class TestEngineMemoization:
    def test_transform_shared_across_equal_profiles(self):
        engine = AnalysisEngine()
        tree1 = engine.transform(build(ENTRIES), "top_down")
        tree2 = engine.transform(build(ENTRIES), "top_down")
        assert tree1 is tree2
        stats = engine.stats()
        assert stats["operations"]["transform"] == {"hits": 1, "misses": 1}

    def test_transform_distinct_per_shape(self):
        engine = AnalysisEngine()
        profile = build(ENTRIES)
        assert (engine.transform(profile, "top_down")
                is not engine.transform(profile, "bottom_up"))
        assert engine.cache.stats.hits == 0

    def test_layout_memoized(self):
        engine = AnalysisEngine()
        tree = engine.transform(build(ENTRIES), "top_down")
        l1 = engine.layout(tree)
        assert engine.layout(tree) is l1
        assert engine.layout(tree, canvas_width=600.0) is not l1

    def test_zoomed_layout_bypasses(self):
        engine = AnalysisEngine()
        tree = engine.transform(build(ENTRIES), "top_down")
        node = tree.find_by_name("work")[0]
        before = engine.cache.stats.bypasses
        engine.layout(tree, root=node)
        engine.layout(tree, root=node)
        assert engine.cache.stats.bypasses == before + 2

    def test_callback_customization_bypasses(self):
        engine = AnalysisEngine()
        custom = Customization().elide_names("idle")
        profile = build(ENTRIES)
        t1 = engine.transform(profile, "top_down", customization=custom)
        t2 = engine.transform(profile, "top_down", customization=custom)
        assert t1 is not t2
        assert engine.cache.stats.bypasses == 2
        assert not t1.find_by_name("idle")

    def test_unknown_key_fn_bypasses(self):
        engine = AnalysisEngine()
        profile = build(ENTRIES)
        custom_key = lambda frame: frame.name.upper()
        engine.transform(profile, "top_down", key_fn=custom_key)
        assert engine.cache.stats.bypasses == 1
        # Named key functions do cache.
        engine.transform(profile, "top_down", key_fn=line_merge_key)
        engine.transform(profile, "top_down", key_fn=line_merge_key)
        assert engine.cache.stats.hits == 1

    def test_diff_profiles_memoized(self):
        engine = AnalysisEngine()
        base, treat = build(ENTRIES), build([(("main", "work"), (99.0,))])
        d1 = engine.diff_profiles(base, treat)
        assert engine.diff_profiles(base, treat) is d1
        assert engine.stats()["operations"]["diff"]["hits"] == 1

    def test_merge_trees_memoized(self):
        engine = AnalysisEngine()
        trees = [top_down(build(ENTRIES)), top_down(build(ENTRIES))]
        merged = engine.merge_trees(trees)
        assert engine.merge_trees(trees) is merged

    def test_aggregate_profiles_memoized_and_correct(self):
        from repro.analysis.aggregate import aggregate_profiles
        engine = AnalysisEngine()
        profiles = [build(ENTRIES, tool="a"),
                    build([(("main", "work"), (6.0,))], tool="b")]
        agg = engine.aggregate_profiles(profiles)
        assert engine.aggregate_profiles(profiles) is agg
        expected = aggregate_profiles(profiles)
        assert viewtree_digest(agg) == viewtree_digest(expected)

    def test_parallel_aggregation_matches_serial(self):
        # The container may have one CPU; force a real thread pool.
        from repro.analysis.aggregate import aggregate_profiles
        engine = AnalysisEngine(max_workers=4)
        profiles = [build([(("main", "f%d" % i), (float(i + 1),))],
                          tool=str(i)) for i in range(6)]
        agg = engine.aggregate_profiles(profiles)
        assert (viewtree_digest(agg)
                == viewtree_digest(aggregate_profiles(profiles)))
        assert engine.pool.parallel_batches == 1
        # Each per-profile transform was individually memoized.
        assert engine.stats()["operations"]["transform"]["misses"] == 6
        engine.pool.shutdown()

    def test_stats_shape(self):
        engine = AnalysisEngine(capacity=8, max_workers=2)
        stats = engine.stats()
        assert set(stats) >= {"hits", "misses", "evictions", "bypasses",
                              "hitRate", "operations", "size", "capacity",
                              "pool"}
        assert stats["capacity"] == 8
        assert stats["pool"]["maxWorkers"] == 2
        engine.pool.shutdown()

    def test_reset_stats_and_clear(self):
        engine = AnalysisEngine()
        engine.transform(build(ENTRIES), "top_down")
        engine.reset_stats()
        assert engine.stats()["misses"] == 0
        assert engine.stats()["size"] == 1
        engine.clear()
        assert engine.stats()["size"] == 0


class TestEngineInvalidation:
    def test_profile_mutation_invalidates(self):
        # ISSUE satellite: cache invalidation after profile mutation.
        engine = AnalysisEngine()
        profile = build(ENTRIES)
        tree = engine.transform(profile, "top_down")
        from repro.core.frame import Frame
        cpu = profile.schema.index_of("cpu")
        profile.add_sample([Frame(name="main", file="s.c", line=1),
                            Frame(name="late", file="s.c", line=9)],
                           {cpu: 3.0})
        fresh = engine.transform(profile, "top_down")
        assert fresh is not tree
        assert fresh.find_by_name("late")
        assert engine.cache.stats.hits == 0
        assert engine.cache.stats.misses == 2

    def test_derive_invalidates_every_engine(self):
        e1, e2 = AnalysisEngine(), AnalysisEngine()
        profile = build(ENTRIES)
        t1 = e1.transform(profile, "top_down")
        t2 = e2.transform(profile, "top_down")
        derive(t1, "dbl", "cpu * 2")
        # t1 was dropped from e1; e2's distinct tree is untouched.
        assert e1.transform(profile, "top_down") is not t1
        assert e2.transform(profile, "top_down") is t2

    def test_add_delta_column_invalidates(self):
        engine = AnalysisEngine()
        base, treat = build(ENTRIES), build([(("main", "work"), (99.0,))])
        diff = engine.diff_profiles(base, treat)
        add_delta_column(diff, 0)
        assert engine.diff_profiles(base, treat) is not diff

    def test_invalidate_everywhere_returns_drop_count(self):
        engine = AnalysisEngine()
        tree = engine.transform(build(ENTRIES), "top_down")
        assert invalidate_everywhere(tree) == 1
        assert invalidate_everywhere(tree) == 0

    def test_layout_of_mutated_tree_recomputed(self):
        engine = AnalysisEngine()
        tree = engine.transform(build(ENTRIES), "top_down")
        l1 = engine.layout(tree)
        derive(tree, "dbl", "cpu * 2")
        assert engine.layout(tree) is not l1


class TestEngineAnnotations:
    def test_code_lenses_batch_matches_per_file(self):
        from repro.ide.annotations import build_code_lenses
        engine = AnalysisEngine(max_workers=4)
        profiles = [build(ENTRIES), build([(("main", "other"), (1.0,))],
                                          tool="b")]
        tree = engine.merge_trees(
            [engine.transform(p, "top_down") for p in profiles])
        files = engine.annotated_files(tree)
        assert files
        batch = engine.code_lenses_batch(tree, files)
        for path in files:
            assert batch[path] == build_code_lenses(tree, file=path)
        engine.pool.shutdown()

    def test_attribution_memoized(self):
        engine = AnalysisEngine()
        tree = engine.transform(build(ENTRIES), "top_down")
        a1 = engine.line_attribution(tree)
        assert engine.line_attribution(tree) is a1
        assert engine.stats()["operations"]["annotation"]["hits"] == 1


class TestDefaultEngine:
    def test_get_engine_is_singleton(self):
        assert get_engine() is get_engine()

    def test_flamegraph_uses_engine(self):
        from repro.viz.flamegraph import FlameGraph
        engine = AnalysisEngine()
        profile = build(ENTRIES)
        g1 = FlameGraph.top_down(profile, engine=engine)
        g2 = FlameGraph.top_down(build(ENTRIES), engine=engine)
        assert g1.tree is g2.tree
        assert engine.cache.stats.hits == 1
