"""Tests asserting the paper-shaped properties of each workload."""

import pytest

from repro.analysis.transform import bottom_up, top_down
from repro.profilers.workloads import (lulesh_fused_profile, lulesh_profile,
                                       spark_profile)


class TestGrpcWorkload:
    def test_leaky_contexts_on_client_creation_path(self, grpc_profile):
        reader = grpc_profile.find_by_name("bufio.NewReaderSize")[0]
        path = [f.name for f in reader.call_path()]
        assert "grpc.Dial" in path
        assert "transport.newHTTP2Client" in path

    def test_snapshot_series_present(self, grpc_profile):
        assert len(grpc_profile.snapshot_sequences()) == 12

    def test_memory_metrics_declared(self, grpc_profile):
        assert "alloc_bytes" in grpc_profile.schema
        assert "inuse_bytes" in grpc_profile.schema


class TestLuleshWorkload:
    def test_brk_is_hottest_bottom_up_leaf(self, lulesh):
        tree = bottom_up(lulesh)
        hottest = max(tree.root.children.values(),
                      key=lambda n: n.inclusive[0])
        assert hottest.frame.name == "brk"
        assert hottest.frame.module == "libc-2.31.so"

    def test_brk_reached_from_multiple_call_paths(self, lulesh):
        brk_contexts = lulesh.find_by_name("brk")
        assert len(brk_contexts) > 4

    def test_hotspot_functions_present_top_down(self, lulesh):
        tree = top_down(lulesh)
        for name in ("CalcVolumeForceForElems",
                     "CalcHourglassForceForElems"):
            assert tree.find_by_name(name)

    def test_tcmalloc_swap_speedup_about_30_percent(self):
        libc = lulesh_profile(scale=4).total("cpu_time")
        tcmalloc = lulesh_profile(scale=4,
                                  allocator="tcmalloc").total("cpu_time")
        speedup = libc / tcmalloc
        assert 1.2 <= speedup <= 1.45   # paper: ≈30%

    def test_fusion_speedup_about_28_percent(self):
        before = lulesh_profile(scale=4).total("cpu_time")
        after = lulesh_fused_profile(scale=4).total("cpu_time")
        speedup = before / after
        assert 1.18 <= speedup <= 1.45   # paper: ≈28%

    def test_bad_allocator_rejected(self):
        with pytest.raises(ValueError):
            lulesh_profile(allocator="jemalloc")


class TestSparkWorkload:
    def test_sql_outperforms_rdd(self, spark_pair):
        rdd, sql = spark_pair
        ratio = rdd.total("cpu") / sql.total("cpu")
        assert 1.5 <= ratio <= 3.0

    def test_common_executor_scaffolding_shared(self, spark_pair):
        rdd, sql = spark_pair
        for profile in spark_pair:
            assert profile.find_by_name("Executor$TaskRunner.run")
            assert profile.find_by_name("ShuffleMapTask.runTask")

    def test_variant_specific_contexts(self, spark_pair):
        rdd, sql = spark_pair
        assert rdd.find_by_name("CartesianRDD.compute")
        assert not sql.find_by_name("CartesianRDD.compute")
        assert sql.find_by_name("WholeStageCodegenExec.doExecute")
        assert not rdd.find_by_name("WholeStageCodegenExec.doExecute")

    def test_api_attribute_recorded(self, spark_pair):
        rdd, sql = spark_pair
        assert rdd.meta.attributes["api"] == "rdd"
        assert sql.meta.attributes["api"] == "sql"

    def test_bad_api_rejected(self):
        with pytest.raises(ValueError):
            spark_profile("dataframe")
