"""Tests for recursion collapsing, pruning, and hot paths."""

import pytest

from repro.analysis.prune import (collapse_recursion, hot_path, prune,
                                  truncate_depth)
from repro.analysis.transform import top_down


class TestCollapseRecursion:
    def test_recursive_chain_folds(self, recursive_profile):
        tree = top_down(recursive_profile)
        collapsed = collapse_recursion(tree)
        # main → f → g (f → f → f folded into one f).
        f_nodes = collapsed.find_by_name("f")
        assert len(f_nodes) == 1
        f = f_nodes[0]
        assert f.exclusive[0] == 60.0        # 10 + 20 + 30 combined
        assert f.inclusive[0] == 100.0       # outermost occurrence's value
        child_names = {c.frame.name for c in f.children.values()}
        assert child_names == {"g"}

    def test_non_recursive_tree_unchanged(self, simple_profile):
        tree = top_down(simple_profile)
        collapsed = collapse_recursion(tree)
        assert collapsed.node_count() == tree.node_count()
        assert collapsed.total(0) == tree.total(0)


class TestPrune:
    def test_small_subtrees_folded_into_placeholder(self, simple_profile):
        tree = top_down(simple_profile)
        pruned = prune(tree, min_fraction=0.15)   # 150 of 1000
        # idle (100) falls under the cutoff and becomes <pruned>.
        assert not pruned.find_by_name("idle")
        placeholder = pruned.find_by_name("<pruned>")
        assert placeholder and placeholder[0].inclusive[0] == 100.0

    def test_totals_exact_after_prune(self, simple_profile):
        tree = top_down(simple_profile)
        pruned = prune(tree, min_fraction=0.15)
        main = pruned.find_by_name("main")[0]
        child_sum = sum(c.inclusive[0] for c in main.children.values())
        assert child_sum == main.inclusive[0]

    def test_zero_fraction_keeps_everything(self, simple_profile):
        tree = top_down(simple_profile)
        assert prune(tree, min_fraction=0.0).node_count() == \
            tree.node_count()


class TestHotPath:
    def test_follows_dominant_child(self, simple_profile):
        tree = top_down(simple_profile)
        path = [n.frame.name for n in hot_path(tree)]
        assert path == ["main", "work", "inner"]

    def test_stops_when_fraction_drops(self, simple_profile):
        tree = top_down(simple_profile)
        # main holds 100% of the root, but work only holds 90% of main, so
        # a 95% threshold stops right after main.
        path = [n.frame.name for n in hot_path(tree, min_fraction=0.95)]
        assert path == ["main"]
        path = [n.frame.name for n in hot_path(tree, min_fraction=0.85)]
        assert path[:2] == ["main", "work"]


class TestTruncate:
    def test_depth_cut_preserves_totals(self, simple_profile):
        tree = top_down(simple_profile)
        cut = truncate_depth(tree, 2)
        work = cut.find_by_name("work")[0]
        assert work.children == {}
        # The folded subtree's cost lands in work's exclusive.
        assert work.exclusive[0] == 900.0
        assert cut.total(0) == tree.total(0)

    def test_invalid_depth_rejected(self, simple_profile):
        with pytest.raises(ValueError):
            truncate_depth(top_down(simple_profile), 0)
