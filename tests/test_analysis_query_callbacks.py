"""Tests for search/filtering and the customization hooks (§V-B)."""

import pytest

from repro.analysis.callbacks import Customization
from repro.analysis.query import (filter_by_name, filter_tree,
                                  match_fraction, search)
from repro.analysis.transform import top_down
from repro.core.frame import intern_frame
from repro.core.metric import Metric


class TestSearch:
    def test_substring_case_insensitive(self, simple_profile):
        tree = top_down(simple_profile)
        assert {n.frame.name for n in search(tree, "WORK")} == {"work"}

    def test_case_sensitive(self, simple_profile):
        tree = top_down(simple_profile)
        assert search(tree, "WORK", case_sensitive=True) == []

    def test_regex(self, simple_profile):
        tree = top_down(simple_profile)
        names = {n.frame.name for n in search(tree, r"^i\w+", regex=True)}
        assert names == {"inner", "idle"}

    def test_matches_file_names_too(self, simple_profile):
        tree = top_down(simple_profile)
        assert len(search(tree, "app.c")) == 4

    def test_root_never_matches(self, simple_profile):
        tree = top_down(simple_profile)
        assert search(tree, "<root>") == []


class TestMatchFraction:
    def test_single_subtree(self, simple_profile):
        tree = top_down(simple_profile)
        matches = search(tree, "work")
        assert match_fraction(tree, matches) == pytest.approx(0.9)

    def test_nested_matches_not_double_counted(self, simple_profile):
        tree = top_down(simple_profile)
        matches = search(tree, "main") + search(tree, "work")
        # work is inside main's subtree: coverage is main's share (100%).
        assert match_fraction(tree, matches) == pytest.approx(1.0)

    def test_no_matches_zero(self, simple_profile):
        tree = top_down(simple_profile)
        assert match_fraction(tree, []) == 0.0


class TestFilter:
    def test_filter_keeps_subtree_and_ancestors(self, simple_profile):
        tree = top_down(simple_profile)
        filtered = filter_by_name(tree, "work")
        names = {n.frame.name for n in filtered.nodes()}
        assert names == {"<root>", "main", "work", "inner"}

    def test_filter_preserves_values(self, simple_profile):
        tree = top_down(simple_profile)
        filtered = filter_by_name(tree, "work")
        assert filtered.find_by_name("work")[0].inclusive[0] == 900.0

    def test_filter_regex(self, simple_profile):
        tree = top_down(simple_profile)
        filtered = filter_by_name(tree, "^id", regex=True)
        assert {n.frame.name for n in filtered.nodes()} == \
            {"<root>", "main", "idle"}

    def test_filter_no_match_leaves_root_only(self, simple_profile):
        tree = top_down(simple_profile)
        filtered = filter_tree(tree, lambda n: False)
        assert filtered.node_count() == 1


class TestCustomization:
    def test_elide_names_removes_subtrees(self, simple_profile):
        custom = Customization().elide_names("work")
        tree = top_down(simple_profile, customization=custom)
        assert not tree.find_by_name("work")
        assert not tree.find_by_name("inner")   # subtree goes too
        assert tree.find_by_name("idle")

    def test_elide_if_predicate(self, simple_profile):
        custom = Customization().elide_if(
            lambda node: node.frame.line > 70)
        tree = top_down(simple_profile, customization=custom)
        assert not tree.find_by_name("idle")    # idle is at line 77

    def test_remap_merges_renamed_frames(self, simple_profile):
        # Rename everything to "f": all siblings merge.
        custom = Customization().remap_with(
            lambda frame: intern_frame("f", frame.file, 0, frame.module))
        tree = top_down(simple_profile, customization=custom)
        main_level = list(tree.root.children.values())
        assert len(main_level) == 1
        assert main_level[0].frame.name == "f"

    def test_derive_callback_adds_metric(self, simple_profile):
        custom = Customization().derive(
            Metric("cpu_share", unit="percent"),
            lambda node, env: 100.0 * env["cpu"] / 1000.0)
        tree = top_down(simple_profile, customization=custom)
        index = tree.schema.index_of("cpu_share")
        work = tree.find_by_name("work")[0]
        assert work.inclusive[index] == pytest.approx(90.0)

    def test_passthrough_detection(self):
        assert Customization().is_passthrough()
        assert not Customization().elide_names("x").is_passthrough()

    def test_customization_applies_to_bottom_up(self, simple_profile):
        from repro.analysis.transform import bottom_up
        custom = Customization().elide_if(
            lambda node: node.frame.name == "idle")
        tree = bottom_up(simple_profile, customization=custom)
        assert not tree.find_by_name("idle")
