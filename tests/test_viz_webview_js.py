"""End-to-end test of the interactive viewer's embedded JavaScript.

Runs the generated page's script in Node against a tiny DOM shim and
drives the three interactions (render, click-to-zoom, search).  Skipped
when Node is unavailable.
"""

import json
import re
import shutil
import subprocess

import pytest

from repro.viz.webview import render_webview

node = shutil.which("node")

_HARNESS = r"""
const script = process.env.VIEWER_SCRIPT;
function makeEl() {
  return {
    children: [], style: {},
    classList: { _c: new Set(), add(c) { this._c.add(c); } },
    set innerHTML(v) { this.children = []; },
    appendChild(ch) { this.children.push(ch); },
    textContent: "", title: "", clientWidth: 1000,
    onclick: null, onchange: null, oninput: null,
  };
}
const els = { flame: makeEl(), status: makeEl(), shape: makeEl(),
              metric: makeEl(), search: makeEl() };
const document = { getElementById: (id) => els[id],
                   createElement: () => makeEl(), body: makeEl() };
const window = {};
eval(script);
const out = { initial: els.flame.children.length };
els.flame.children[1].onclick({ stopPropagation() {} });
out.zoomed = els.flame.children.length;
els.search.value = "work";
els.search.oninput.call(els.search);
out.hits = els.flame.children.filter(c => c.classList._c.has("hit")).length;
document.body.ondblclick();
out.reset = els.flame.children.length;
els.shape.value = "bottom_up";
els.shape.onchange.call(els.shape);
out.bottomUp = els.flame.children.length;
console.log(JSON.stringify(out));
"""


@pytest.mark.skipif(node is None, reason="node is not installed")
def test_viewer_script_interactions(simple_profile):
    page = render_webview(simple_profile, title="t")
    script = re.search(r"<script>(.*)</script>", page, re.DOTALL).group(1)
    import os
    env = dict(os.environ, VIEWER_SCRIPT=script)
    completed = subprocess.run(
        [node, "-e", _HARNESS],
        capture_output=True, text=True, timeout=30, env=env)
    assert completed.returncode == 0, completed.stderr
    out = json.loads(completed.stdout)
    # Root + main + work + inner + idle render initially.
    assert out["initial"] == 5
    # Zooming into `main` re-renders its subtree (main/work/inner/idle).
    assert out["zoomed"] == 4
    # Searching "work" highlights exactly the one matching block.
    assert out["hits"] == 1
    # Double-click resets to the full tree.
    assert out["reset"] == 5
    # The bottom-up tree renders too.
    assert out["bottomUp"] >= 4
