"""Every example script must run clean end to end.

The examples are executable documentation; breaking one breaks the
quickstart experience, so they run as tests (stdout suppressed, artifacts
written to a scratch directory).
"""

import os
import pathlib
import shutil
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob(
        "*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    examples_dir = (pathlib.Path(__file__).resolve().parent.parent
                    / "examples")
    # Run from a scratch copy so generated .svg/.html artifacts land in
    # tmp_path, not the repository.
    target = tmp_path / script
    shutil.copy(examples_dir / script, target)
    # The scripts run from tmp_path, so a relative PYTHONPATH (the tier-1
    # invocation uses PYTHONPATH=src) would no longer resolve; rebuild it
    # from this file's location.
    env = dict(os.environ)
    src_dir = str(examples_dir.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p and os.path.isabs(p)])
    completed = subprocess.run(
        [sys.executable, str(target)],
        capture_output=True, text=True, timeout=180,
        cwd=str(tmp_path), env=env)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 7
    assert "quickstart.py" in EXAMPLES
