"""Tests for the flame-graph layout engine, including the lazy fast path."""

import pytest

from repro.analysis.transform import top_down
from repro.viz.layout import layout, layout_profile


class TestLayout:
    def test_root_spans_canvas(self, simple_profile):
        flame = layout(top_down(simple_profile), canvas_width=1000.0)
        root_rect = [r for r in flame.rects if r.depth == 0][0]
        assert root_rect.x == 0.0
        assert root_rect.width == pytest.approx(1000.0)

    def test_children_widths_proportional(self, simple_profile):
        flame = layout(top_down(simple_profile), canvas_width=1000.0)
        by_name = {r.node.frame.name: r for r in flame.rects}
        assert by_name["work"].width == pytest.approx(900.0)
        assert by_name["idle"].width == pytest.approx(100.0)

    def test_rows_do_not_overlap(self, simple_profile):
        flame = layout(top_down(simple_profile), canvas_width=1000.0)
        for row in flame.rows():
            for left, right in zip(row, row[1:]):
                assert left.x + left.width <= right.x + 1e-6

    def test_children_ordered_by_value(self, simple_profile):
        flame = layout(top_down(simple_profile), canvas_width=1000.0)
        row = flame.rows()[2]
        assert row[0].node.frame.name == "work"   # larger child first

    def test_min_width_prunes(self, simple_profile):
        flame = layout(top_down(simple_profile), canvas_width=10.0,
                       min_width=2.0)
        names = {r.node.frame.name for r in flame.rects}
        assert "idle" not in names    # 1 px < 2 px cutoff
        assert flame.skipped_nodes >= 1

    def test_zero_min_width_keeps_everything(self, simple_profile):
        tree = top_down(simple_profile)
        flame = layout(tree, min_width=0.0)
        assert flame.laid_out_nodes == tree.node_count()

    def test_zoom_root_takes_full_width(self, simple_profile):
        tree = top_down(simple_profile)
        work = tree.find_by_name("work")[0]
        flame = layout(tree, root=work, canvas_width=1000.0)
        assert flame.rects[0].width == pytest.approx(1000.0)
        names = {r.node.frame.name for r in flame.rects}
        assert names == {"work", "inner"}

    def test_max_depth_limits_rows(self, simple_profile):
        flame = layout(top_down(simple_profile), max_depth=1)
        assert flame.max_depth == 1

    def test_empty_tree(self):
        from repro.analysis.viewtree import ViewTree
        from repro.core.metric import MetricSchema
        flame = layout(ViewTree(MetricSchema()))
        assert flame.rects == []

    def test_find(self, simple_profile):
        flame = layout(top_down(simple_profile))
        assert len(flame.find("work")) == 1


class TestLazyLayoutEquivalence:
    def test_lazy_matches_eager_geometry(self, lulesh):
        """The CCT fast path must produce the same blocks as the eager
        ViewTree path for identical parameters."""
        eager = layout(top_down(lulesh), canvas_width=800.0, min_width=0.5)
        lazy = layout_profile(lulesh, canvas_width=800.0, min_width=0.5)
        assert lazy.total_value == pytest.approx(eager.total_value)
        assert lazy.laid_out_nodes == eager.laid_out_nodes

        def geometry(flame):
            return sorted((r.depth, round(r.x, 4), round(r.width, 4),
                           r.node.frame.name) for r in flame.rects)

        assert geometry(lazy) == geometry(eager)

    def test_lazy_skips_narrow_blocks(self, lulesh):
        wide = layout_profile(lulesh, min_width=0.0)
        narrow = layout_profile(lulesh, min_width=20.0)
        assert narrow.laid_out_nodes < wide.laid_out_nodes
        assert narrow.skipped_nodes > 0

    def test_lazy_stub_carries_sources(self, simple_profile):
        flame = layout_profile(simple_profile)
        work = [r for r in flame.rects if r.node.frame.name == "work"][0]
        assert work.node.sources
        assert work.node.sources[0].frame.name == "work"

    def test_fits_text(self, simple_profile):
        flame = layout(top_down(simple_profile), canvas_width=1000.0)
        root = [r for r in flame.rects if r.depth == 0][0]
        assert root.fits_text()
