"""Tests for frame interning and attribution."""

from repro.core.frame import (Frame, FrameKind, ROOT_FRAME, SourceLocation,
                              data_object_frame, intern_frame)


class TestInterning:
    def test_same_attribution_same_object(self):
        a = intern_frame("f", "x.c", 10, "libx")
        b = intern_frame("f", "x.c", 10, "libx")
        assert a is b

    def test_different_line_different_object(self):
        a = intern_frame("f", "x.c", 10)
        b = intern_frame("f", "x.c", 11)
        assert a is not b

    def test_kind_distinguishes(self):
        fn = intern_frame("buf", kind=FrameKind.FUNCTION)
        obj = intern_frame("buf", kind=FrameKind.DATA_OBJECT)
        assert fn is not obj

    def test_root_frame_is_interned(self):
        assert intern_frame("<root>", kind=FrameKind.ROOT) is ROOT_FRAME

    def test_with_line_reinterns(self):
        a = intern_frame("f", "x.c", 10)
        b = a.with_line(20)
        assert b.line == 20 and b.name == "f"
        assert b is intern_frame("f", "x.c", 20)


class TestMergeKey:
    def test_merge_key_ignores_line_and_address(self):
        a = intern_frame("f", "x.c", 10, "libx", address=0x100)
        b = intern_frame("f", "x.c", 99, "libx", address=0x200)
        assert a.merge_key() == b.merge_key()

    def test_merge_key_distinguishes_module(self):
        a = intern_frame("f", "x.c", 10, "lib1")
        b = intern_frame("f", "x.c", 10, "lib2")
        assert a.merge_key() != b.merge_key()

    def test_full_key_includes_everything(self):
        a = intern_frame("f", "x.c", 10, "libx", address=0x100)
        assert a.key() == ("f", "x.c", 10, "libx", 0x100,
                           int(FrameKind.FUNCTION))


class TestLabelsAndLocations:
    def test_label_includes_module(self):
        assert intern_frame("f", module="libx").label() == "libx!f"

    def test_label_without_module(self):
        assert intern_frame("f").label() == "f"

    def test_location_known(self):
        frame = intern_frame("f", "x.c", 10)
        assert frame.location.is_known()
        assert str(frame.location) == "x.c:10"

    def test_location_unknown_without_file(self):
        assert not intern_frame("f", line=10).location.is_known()

    def test_location_unknown_without_line(self):
        assert not intern_frame("f", "x.c").location.is_known()

    def test_str_includes_location(self):
        frame = intern_frame("g", "y.c", 3, "m")
        assert "y.c:3" in str(frame)

    def test_source_location_str_unknown(self):
        assert str(SourceLocation()) == "<unknown>"


class TestDataObjects:
    def test_data_object_kind(self):
        frame = data_object_frame("heap_buf", "a.c", 5)
        assert frame.kind is FrameKind.DATA_OBJECT
        assert frame.name == "heap_buf"

    def test_data_object_interned(self):
        assert data_object_frame("x") is data_object_frame("x")
