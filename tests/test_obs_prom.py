"""Prometheus text exposition of the metrics registry."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.prom import metric_name, to_prometheus


def make_snapshot():
    return {
        "counters": {"serve.requests": 7},
        "gauges": {"serve.sessions": 2.5},
        "histograms": {
            "serve.latency": {
                "count": 3,
                "sum": 0.6,
                "mean": 0.2,
                "min": 0.1,
                "max": 0.3,
                "buckets": [
                    {"le": 0.1, "count": 1},
                    {"le": 0.5, "count": 3},
                    {"le": "+Inf", "count": 3},
                ],
            },
        },
    }


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("serve.queue_seconds") == "serve_queue_seconds"

    def test_invalid_characters_sanitized(self):
        assert metric_name("a.b-c/d") == "a_b_c_d"

    def test_leading_digit_gets_prefix(self):
        assert metric_name("2xx.count") == "_2xx_count"


class TestExposition:
    def test_counter_family(self):
        text = to_prometheus(make_snapshot())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 7" in text

    def test_gauge_family(self):
        text = to_prometheus(make_snapshot())
        assert "# TYPE serve_sessions gauge" in text
        assert "serve_sessions 2.5" in text

    def test_histogram_expands_to_bucket_sum_count(self):
        lines = to_prometheus(make_snapshot()).splitlines()
        assert 'serve_latency_bucket{le="0.1"} 1' in lines
        assert 'serve_latency_bucket{le="0.5"} 3' in lines
        assert 'serve_latency_bucket{le="+Inf"} 3' in lines
        assert "serve_latency_sum 0.6" in lines
        assert "serve_latency_count 3" in lines
        assert "# TYPE serve_latency histogram" in lines

    def test_help_lines_from_descriptions(self):
        text = to_prometheus(make_snapshot(),
                             help_text={"serve.requests": "requests served"})
        assert "# HELP serve_requests_total requests served" in text

    def test_output_is_deterministic_and_sorted(self):
        snapshot = {
            "counters": {"b.two": 2, "a.one": 1},
            "gauges": {},
            "histograms": {},
        }
        text = to_prometheus(snapshot)
        assert text == to_prometheus(snapshot)
        assert text.index("a_one_total") < text.index("b_two_total")

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus({"counters": {}, "gauges": {},
                              "histograms": {}}) == ""

    def test_ends_with_newline(self):
        assert to_prometheus(make_snapshot()).endswith("\n")


class TestRegistryExposition:
    def test_live_registry_renders_with_help(self):
        registry = obs.get_registry()
        counter = registry.counter("promtest.hits",
                                   "hits recorded by the prom test")
        counter.inc(3)
        try:
            text = obs.registry_prometheus()
            assert "# HELP promtest_hits_total hits recorded by the " \
                "prom test" in text
            assert "promtest_hits_total 3" in text
        finally:
            counter.reset()

    def test_snapshot_and_prom_agree(self):
        registry = obs.get_registry()
        gauge = registry.gauge("promtest.depth")
        gauge.set(4)
        try:
            snapshot = registry.snapshot()
            text = obs.to_prometheus(snapshot)
            assert "promtest_depth 4" in text
        finally:
            gauge.reset()


class TestPromCLI:
    def test_obs_metrics_format_prom(self, capsys):
        from repro.cli import main

        registry = obs.get_registry()
        counter = registry.counter("promtest.cli")
        counter.inc()
        try:
            rc = main(["obs", "metrics", "--format", "prom"])
            out = capsys.readouterr().out
        finally:
            counter.reset()
        assert rc == 0
        assert "promtest_cli_total 1" in out
        # Exposition format, not the human table.
        assert "# TYPE" in out

    def test_json_flag_still_works(self, capsys):
        from repro.cli import main

        rc = main(["obs", "metrics", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert '"metrics"' in out
