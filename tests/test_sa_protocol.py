"""The ``view/selfcheck`` PVP method: EV4xx findings as IDE squiggles."""

import textwrap

from repro.ide.mock_ide import MockIDE
from repro.ide.protocol import IDE_PUBLISH_DIAGNOSTICS

RACY = textwrap.dedent("""\
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def hit(self):
            self.count += 1
    """)


class TestViewSelfcheck:
    def test_buffer_findings_are_published(self):
        ide = MockIDE()
        result = ide.request("view/selfcheck", source=RACY,
                             subject="repro/obs/stats.py")
        rules = {d["ruleId"] for d in result["diagnostics"]}
        assert rules == {"EV402"}
        assert result["counts"]["warning"] == 1
        # Same findings pushed to the editor as squiggles.
        assert {d["ruleId"] for d in ide.state.diagnostics} == rules
        assert len(ide.actions_of(IDE_PUBLISH_DIAGNOSTICS)) == 1

    def test_clean_buffer_clears_squiggles(self):
        ide = MockIDE()
        ide.request("view/selfcheck", source=RACY, subject="repro/x.py")
        assert ide.state.diagnostics
        ide.request("view/selfcheck", source="x = 1\n",
                    subject="repro/x.py")
        assert ide.state.diagnostics == []

    def test_path_sweep(self, tmp_path):
        target = tmp_path / "repro"
        target.mkdir()
        (target / "racy.py").write_text(RACY)
        ide = MockIDE()
        result = ide.request("view/selfcheck", paths=[str(target)])
        [diag] = result["diagnostics"]
        assert diag["ruleId"] == "EV402"
        assert diag["subject"] == "repro/racy.py"

    def test_disable_directives_respected(self):
        ide = MockIDE()
        result = ide.request("view/selfcheck", source=RACY,
                             subject="repro/x.py",
                             disable=["EV4xx=off"])
        assert result["diagnostics"] == []

    def test_syntax_error_buffer_reports_ev400(self):
        ide = MockIDE()
        result = ide.request("view/selfcheck",
                             source="def broken( return\n",
                             subject="repro/x.py")
        [diag] = result["diagnostics"]
        assert diag["ruleId"] == "EV400"
        assert diag["severity"] == 1
