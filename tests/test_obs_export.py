"""repro.obs.export: JSONL, Chrome trace round-trip, and the dogfooded
EasyView profile of EasyView itself."""

from __future__ import annotations

import json

import pytest

from repro.converters.base import parse_bytes
from repro.lint import lint_profile
from repro.obs.export import (by_name, to_chrome_trace, to_jsonl,
                              to_profile)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@pytest.fixture
def traced():
    """A tracer holding a realistic little tree:

    store.ingest (root)
      +- convert.parse
      +- store.wal.append
    engine.transform (root, second trace)
    """
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    with tracer.span("store.ingest", service="web"):
        with tracer.span("convert.parse", format="pprof"):
            pass
        with tracer.span("store.wal.append"):
            pass
    with tracer.span("engine.transform", hit=False):
        pass
    return tracer


class TestJsonl:
    def test_one_object_per_span_oldest_first(self, traced):
        lines = to_jsonl(traced.spans()).splitlines()
        assert len(lines) == 4
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["convert.parse", "store.wal.append",
                         "store.ingest", "engine.transform"]

    def test_empty_ring_is_empty_string(self):
        assert to_jsonl([]) == ""


class TestChromeTrace:
    def test_b_e_pairs_with_thread_metadata(self, traced):
        doc = to_chrome_trace(traced.spans())
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert metas and all(e["name"] == "thread_name" for e in metas)
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 4
        ingest = next(e for e in begins if e["name"] == "store.ingest")
        assert ingest["cat"] == "store"
        assert ingest["args"]["service"] == "web"
        assert "traceId" in ingest["args"]

    def test_round_trips_through_own_converter(self, traced):
        """The exported trace re-opens through the repo's chrome_trace
        converter with nesting intact — the dogfooding contract."""
        payload = json.dumps(to_chrome_trace(traced.spans()))
        profile = parse_bytes(payload.encode("utf-8"),
                              format="chrome-trace")
        names = {node.frame.name for node in profile.root.walk()}
        assert {"store.ingest", "convert.parse", "store.wal.append",
                "engine.transform"} <= names
        # Nesting survived: convert.parse sits under store.ingest.
        parse_node = next(node for node in profile.root.walk()
                          if node.frame.name == "convert.parse")
        assert parse_node.parent.frame.name == "store.ingest"


class TestToProfile:
    def test_empty_spans_raise(self):
        with pytest.raises(ValueError):
            to_profile([])

    def test_subsystem_roots_and_ancestry(self, traced):
        profile = to_profile(traced.spans())
        top = [node.frame.name for node in profile.root.sorted_children()]
        assert set(top) == {"store", "engine"}
        store_root = next(node for node in profile.root.children.values()
                          if node.frame.name == "store")
        ingest = next(node for node in store_root.children.values()
                      if node.frame.name == "store.ingest")
        child_names = {node.frame.name for node in ingest.children.values()}
        assert child_names == {"convert.parse", "store.wal.append"}

    def test_self_time_excludes_children(self, traced):
        profile = to_profile(traced.spans())
        spans = {span.name: span for span in traced.spans()}
        wall = profile.schema.index_of("wall_time")
        ingest_node = next(node for node in profile.root.walk()
                           if node.frame.name == "store.ingest")
        expected_self = (spans["store.ingest"].duration_ns
                         - spans["convert.parse"].duration_ns
                         - spans["store.wal.append"].duration_ns)
        assert ingest_node.metrics[wall] == pytest.approx(
            max(0, expected_self))

    def test_lints_clean_including_time_metadata(self, traced):
        profile = to_profile(traced.spans())
        findings = lint_profile(profile, require_time=True)
        assert findings == []

    def test_survives_evicted_parent(self):
        """A span whose parent fell off the ring becomes a root."""
        tracer = Tracer(enabled=True, capacity=2,
                        registry=MetricsRegistry())
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        # capacity 2: "inner" was evicted... actually oldest dropped is
        # "inner" (recorded first).  Ring holds middle, outer.
        profile = to_profile(tracer.spans())
        assert sum(1 for _ in profile.root.walk()) >= 2

    def test_orphan_span_is_its_own_root(self):
        tracer = Tracer(enabled=True, capacity=1,
                        registry=MetricsRegistry())
        with tracer.span("parent.op"):
            with tracer.span("child.op"):
                pass
        # Only the most recent span survives; its parent is gone.
        (survivor,) = tracer.spans()
        profile = to_profile([survivor])
        top = [node.frame.name for node in profile.root.sorted_children()]
        assert top == [survivor.name.split(".")[0]]

    def test_metadata_envelope(self, traced):
        profile = to_profile(traced.spans())
        spans = traced.spans()
        assert profile.meta.time_nanos == min(
            span.start_wall_ns for span in spans)
        assert profile.meta.duration_nanos >= 0
        assert profile.meta.attributes["spanCount"] == "4"


class TestByName:
    def test_aggregates_and_sorts_by_total(self, traced):
        rows = by_name(traced.spans())
        assert rows[0]["name"] == "store.ingest"  # encloses everything
        ingest = rows[0]
        assert ingest["count"] == 1
        assert ingest["selfNanos"] <= ingest["totalNanos"]

    def test_counts_errors(self):
        tracer = Tracer(enabled=True, registry=MetricsRegistry())
        with pytest.raises(RuntimeError):
            with tracer.span("flaky"):
                raise RuntimeError("boom")
        rows = by_name(tracer.spans())
        assert rows[0]["errors"] == 1
