"""Tests for time-range analysis and the timeline strip."""

import pytest

from repro import ProfileBuilder
from repro.analysis.diff import summarize
from repro.analysis.timerange import (activity_series, find_phases,
                                      range_diff, range_profile)
from repro.errors import AnalysisError
from repro.viz.timeline import timeline_svg, timeline_text


def phased_profile():
    """Snapshots 1-4: startup allocs; snapshots 5-8: steady-state."""
    builder = ProfileBuilder(tool="t")
    mem = builder.metric("inuse", unit="bytes")
    for seq in range(1, 5):
        builder.snapshot(seq, [("main",), ("startup",)], {mem: 800.0})
        builder.snapshot(seq, [("main",), ("serve",)], {mem: 100.0})
    for seq in range(5, 9):
        builder.snapshot(seq, [("main",), ("serve",)], {mem: 300.0})
    return builder.build()


class TestActivityAndPhases:
    def test_activity_series(self):
        totals = activity_series(phased_profile(), "inuse")
        assert totals == [900.0] * 4 + [300.0] * 4

    def test_find_phases_detects_transition(self):
        phases = find_phases(phased_profile(), "inuse")
        assert phases == [(1, 4), (5, 8)]

    def test_flat_series_single_phase(self):
        builder = ProfileBuilder()
        mem = builder.metric("inuse", unit="bytes")
        for seq in range(1, 6):
            builder.snapshot(seq, [("main",)], {mem: 100.0})
        assert find_phases(builder.build(), "inuse") == [(1, 5)]

    def test_empty_profile(self, simple_profile):
        assert activity_series(simple_profile, "cpu") == []
        assert find_phases(simple_profile, "cpu") == []


class TestRangeProfile:
    def test_mean_combine(self):
        sub = range_profile(phased_profile(), 1, 4)
        startup = sub.find_by_name("startup")[0]
        assert startup.exclusive(0) == pytest.approx(800.0)
        serve = sub.find_by_name("serve")[0]
        assert serve.exclusive(0) == pytest.approx(100.0)

    def test_sum_combine(self):
        sub = range_profile(phased_profile(), 1, 4, combine="sum")
        assert sub.find_by_name("startup")[0].exclusive(0) == 3200.0

    def test_last_combine(self):
        sub = range_profile(phased_profile(), 3, 6, combine="last")
        serve = sub.find_by_name("serve")[0]
        assert serve.exclusive(0) == 300.0   # the value at snapshot 6

    def test_window_excludes_other_contexts(self):
        sub = range_profile(phased_profile(), 5, 8)
        assert not sub.find_by_name("startup")
        assert sub.meta.attributes["window"] == "5..8"

    def test_bad_windows_rejected(self):
        profile = phased_profile()
        with pytest.raises(AnalysisError):
            range_profile(profile, 6, 2)
        with pytest.raises(AnalysisError):
            range_profile(profile, 100, 200)
        from repro import ProfileBuilder as PB
        empty = PB()
        empty.metric("inuse")
        with pytest.raises(AnalysisError):
            range_profile(empty.build(), 1, 2)

    def test_bad_combine_rejected(self):
        with pytest.raises(AnalysisError):
            range_profile(phased_profile(), 1, 2, combine="median")


class TestRangeDiff:
    def test_phase_diff_tags(self):
        tree = range_diff(phased_profile(), (1, 4), (5, 8))
        tags = {n.frame.name: n.tag for n in tree.nodes() if n.tag}
        assert tags["startup"] == "D"     # gone in steady state
        assert tags["serve"] == "+"       # grew 100 → 300


class TestTimelineRendering:
    def test_text_strip(self):
        text = timeline_text(phased_profile(), "inuse", width=8)
        lines = text.splitlines()
        assert len(lines[0]) == 8
        assert "#1" in lines[1] and "#8" in lines[1]
        assert "phases" in lines[2]

    def test_text_empty(self, simple_profile):
        assert "no snapshot" in timeline_text(simple_profile, "cpu")

    def test_svg_strip_with_selection(self):
        svg = timeline_svg(phased_profile(), "inuse", selection=(5, 8))
        assert svg.count("<rect") >= 10
        assert "stroke='#d62728'" in svg
        assert "#1 .. #8" in svg
