"""Golden tests for the SelfCheck resource pass (EV421, EV422)."""

import textwrap

from repro.sa import analyze_source, in_persistence_scope


def run(source, subject="repro/store/example.py"):
    return analyze_source(textwrap.dedent(source), subject)


def rules_of(diags):
    return {d.rule for d in diags}


class TestEV421TruncatingOpenInPersistenceScope:
    def test_w_mode_open_in_store_module(self):
        diags = run("""\
            import json

            def save_manifest(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)
            """)
        assert "EV421" in rules_of(diags)
        assert "atomicio" in [d for d in diags
                              if d.rule == "EV421"][0].message

    def test_wb_mode_flagged_too(self):
        diags = run("""\
            def save(path, blob):
                with open(path, "wb") as handle:
                    handle.write(blob)
            """)
        assert "EV421" in rules_of(diags)

    def test_read_mode_is_fine(self):
        assert run("""\
            def load(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """) == []

    def test_append_mode_is_fine(self):
        # Appending does not clobber existing durable bytes.
        assert run("""\
            def log(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """) == []

    def test_outside_persistence_scope_not_flagged(self):
        diags = analyze_source(textwrap.dedent("""\
            def save_report(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """), "repro/view/example.py")
        assert "EV421" not in rules_of(diags)

    def test_serializer_module_name_pulls_any_package_into_scope(self):
        diags = analyze_source(textwrap.dedent("""\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """), "repro/view/serializer.py")
        assert "EV421" in rules_of(diags)

    def test_atomicio_module_is_exempt(self):
        # atomicio is the sanctioned implementation: its own truncating
        # open (of the temp file) is the mechanism, not a violation.
        assert analyze_source(textwrap.dedent("""\
            import os

            def atomic_write_text(path, text):
                tmp = path + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            """), "repro/core/atomicio.py") == []

    def test_in_persistence_scope_helper(self):
        assert in_persistence_scope("repro/store/wal.py")
        assert in_persistence_scope("repro/bench/codec.py")
        assert not in_persistence_scope("repro/view/flame.py")
        assert not in_persistence_scope("repro/core/atomicio.py")


class TestEV422UnclosedHandle:
    def test_bare_open_assigned_and_leaked(self):
        diags = run("""\
            def warm(path, cache):
                handle = open(path, "rb")
                cache[path] = handle.read(16)
            """)
        assert "EV422" in rules_of(diags)
        assert "never closed" in [d for d in diags
                                  if d.rule == "EV422"][0].message

    def test_unassigned_open_expression_leaks(self):
        diags = run("""\
            import json

            def read_config(path):
                return json.load(open(path))
            """)
        assert "EV422" in rules_of(diags)

    def test_with_statement_is_managed(self):
        assert run("""\
            def peek(path):
                with open(path, "rb") as handle:
                    return handle.read(16)
            """) == []

    def test_explicit_close_is_accepted(self):
        assert run("""\
            def peek(path):
                handle = open(path, "rb")
                data = handle.read(16)
                handle.close()
                return data
            """) == []

    def test_returned_handle_is_the_callers_problem(self):
        assert run("""\
            def acquire(path):
                handle = open(path, "rb")
                return handle
            """) == []

    def test_attribute_assignment_is_long_lived_state(self):
        # self._handle = open(...) is an owned resource with its own
        # close path (e.g. WriteAheadLog), not a local leak.
        assert run("""\
            class Log:
                def _reopen(self, path):
                    self._handle = open(path, "ab")
            """) == []

    def test_later_with_block_manages_the_handle(self):
        assert run("""\
            def copy(src):
                handle = open(src, "rb")
                with handle:
                    return handle.read()
            """) == []

    def test_nested_function_opens_are_scored_separately(self):
        diags = run("""\
            def outer(path, sink):
                def inner():
                    handle = open(path, "rb")
                    sink.feed(handle.read(1))
                return inner
            """)
        findings = [d for d in diags if d.rule == "EV422"]
        assert len(findings) == 1
        assert "inner" in findings[0].message
