"""Property/fuzz tests for the fastwire codec against the reference codec.

The reference module (:mod:`repro.proto.reference`) is the pre-fastwire
implementation preserved verbatim; every test here is differential: the
fast path must produce byte-identical encodes, equal decoded objects, and
the same :class:`WireError` at the same offset — on fixtures, on
hypothesis-generated messages, on varint boundary values, and on payloads
truncated at every byte offset.
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.converters import pprof as pprof_conv
from repro.core import serialize
from repro.profilers.corpus import generate_bytes, tier
from repro.proto import easyview_pb, fastwire, pprof_pb, reference, wire
from repro.proto.fastwire import WireError

# Varint boundary values: 2^(7k) ± 1 (the byte-length cliffs), the u64
# ceiling, sign-extended negatives.
BOUNDARY_VALUES = sorted({
    v for k in range(0, 10) for base in ((1 << (7 * k)),)
    for v in (base - 1, base, base + 1)
} | {(1 << 64) - 1, (1 << 63), (1 << 63) - 1})
SIGNED_BOUNDARIES = sorted({
    v for k in range(0, 9) for base in ((1 << (7 * k)),)
    for v in (base - 1, base, base + 1, -(base - 1), -base, -(base + 1))
    if -(1 << 63) <= v < (1 << 63)
} | {(1 << 63) - 1, -(1 << 63)})

int64s = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
uint64s = st.integers(min_value=0, max_value=(1 << 64) - 1)


@pytest.fixture(scope="module")
def small_pprof_raw():
    return generate_bytes(tier("small"), compress=False)


@pytest.fixture(scope="module")
def small_easyview_raw(small_pprof_raw):
    profile = pprof_conv.parse(small_pprof_raw)
    return serialize.to_message(profile).serialize()


# --------------------------------------------------------------------------
# Scalar and packed kernels
# --------------------------------------------------------------------------

class TestVarintKernels:
    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_boundary_encode_matches_reference(self, value):
        assert fastwire.encode_varint(value) == wire.encode_varint(value)

    @pytest.mark.parametrize("value", BOUNDARY_VALUES)
    def test_boundary_reader_round_trip(self, value):
        encoded = fastwire.encode_varint(value)
        reader = fastwire.Reader(encoded)
        assert reader.varint() == value
        assert reader.pos == len(encoded)

    @given(uint64s)
    def test_encode_matches_reference(self, value):
        assert fastwire.encode_varint(value) == wire.encode_varint(value)

    @given(int64s)
    def test_svarint_round_trip(self, value):
        encoded = wire.encode_signed_varint(value)
        assert fastwire.Reader(encoded).svarint() == value

    def test_negative_rejected(self):
        with pytest.raises(WireError):
            fastwire.encode_varint(-1)
        with pytest.raises(WireError):
            fastwire.encode_varint(1 << 64)

    @given(st.binary(max_size=24))
    def test_reader_varint_matches_decode_varint(self, data):
        try:
            expected = ("ok", wire.decode_varint(data, 0))
        except WireError as exc:
            expected = ("err", str(exc))
        reader = fastwire.Reader(data)
        try:
            got = ("ok", (reader.varint(), reader.pos))
        except WireError as exc:
            got = ("err", str(exc))
        assert got == expected


class TestPackedKernels:
    @pytest.mark.parametrize("value", SIGNED_BOUNDARIES)
    def test_boundary_values_both_kernels(self, value):
        values = [value] * 3 + [0, 1]
        payload = fastwire.encode_packed_int64s(values)
        ref_body, _ = wire.decode_bytes(
            reference.encode_packed_varints(values), 0)
        assert payload == ref_body
        assert fastwire._decode_packed_py(
            memoryview(payload), 0, len(payload)) == values
        if fastwire._np is not None:
            assert fastwire._decode_packed_numpy(
                memoryview(payload)) == values

    @given(st.lists(int64s, max_size=64))
    def test_encode_matches_reference(self, values):
        ref_body, _ = wire.decode_bytes(
            reference.encode_packed_varints(values), 0)
        assert fastwire.encode_packed_int64s(values) == ref_body

    @given(st.lists(int64s, min_size=1, max_size=64))
    def test_decode_kernels_agree_on_valid_input(self, values):
        payload = fastwire.encode_packed_int64s(values)
        assert reference.decode_packed_varints(payload) == values
        assert fastwire._decode_packed_py(
            memoryview(payload), 0, len(payload)) == values
        if fastwire._np is not None:
            assert fastwire._decode_packed_numpy(
                memoryview(payload)) == values

    @given(st.binary(min_size=1, max_size=48))
    @settings(max_examples=300)
    def test_kernels_agree_on_byte_soup(self, payload):
        """Both kernels mirror the reference on arbitrary bytes — value
        for value, error message for error message."""
        outcomes = []
        for decode in (
                reference.decode_packed_varints,
                lambda p: fastwire._decode_packed_py(
                    memoryview(p), 0, len(p)),
                *([lambda p: fastwire._decode_packed_numpy(memoryview(p))]
                  if fastwire._np is not None else [])):
            try:
                outcomes.append(("ok", decode(payload)))
            except WireError as exc:
                outcomes.append(("err", str(exc)))
        assert all(o == outcomes[0] for o in outcomes[1:])

    def test_dispatcher_uses_numpy_for_long_runs(self):
        if fastwire._np is None:
            pytest.skip("numpy unavailable")
        values = list(range(1000))
        payload = fastwire.encode_packed_int64s(values)
        assert len(payload) >= fastwire.NUMPY_MIN_PACKED_BYTES
        before = fastwire.packed_stats()["numpyRuns"]
        assert fastwire.decode_packed_int64s(payload) == values
        assert fastwire.packed_stats()["numpyRuns"] == before + 1

    def test_single_byte_fast_path(self):
        values = list(range(128))
        assert fastwire.encode_packed_int64s(values) == bytes(values)


# --------------------------------------------------------------------------
# scan_fields vs the reference iterator
# --------------------------------------------------------------------------

def _field_outcomes(data, iterator):
    out = []
    try:
        for num, wtype, value in iterator(data):
            if isinstance(value, memoryview):
                value = bytes(value)
            out.append((num, wtype, value))
        return ("ok", out)
    except WireError as exc:
        return ("err", str(exc))


@given(st.binary(max_size=64))
@settings(max_examples=300)
def test_scan_fields_matches_reference_on_byte_soup(data):
    assert (_field_outcomes(data, fastwire.scan_fields)
            == _field_outcomes(data, reference.iter_fields))


@given(st.binary(max_size=64))
def test_wire_iter_fields_yields_bytes(data):
    try:
        fields = list(wire.iter_fields(data))
    except WireError:
        return
    for _, wtype, value in fields:
        if wtype == wire.WIRETYPE_LENGTH_DELIMITED:
            assert isinstance(value, bytes)
        else:
            assert isinstance(value, int)


# --------------------------------------------------------------------------
# Writer equivalence (including the scope API)
# --------------------------------------------------------------------------

random_messages = st.lists(
    st.tuples(st.integers(min_value=1, max_value=64),
              st.one_of(uint64s,
                        st.binary(max_size=200),
                        st.floats(allow_nan=False))),
    max_size=24)


class TestWriterEquivalence:
    @given(random_messages)
    def test_random_shapes_byte_identical(self, fields):
        fast, ref = fastwire.Writer(), reference.Writer()
        for num, value in fields:
            if isinstance(value, bytes):
                fast.bytes(num, value)
                ref.bytes(num, value)
            elif isinstance(value, float):
                fast.double(num, value)
                ref.double(num, value)
            else:
                fast.varint(num, value)
                ref.varint(num, value)
        assert fast.getvalue() == ref.getvalue()
        assert len(fast) == len(ref.getvalue())

    def test_negative_zero_double_reaches_the_wire(self):
        fast, ref = fastwire.Writer(), reference.Writer()
        fast.double(1, -0.0)
        ref.double(1, -0.0)
        assert fast.getvalue() == ref.getvalue() != b""
        (_, _, bits), = fastwire.scan_fields(fast.getvalue())
        value = struct.unpack("<d", struct.pack("<Q", bits))[0]
        assert math.copysign(1.0, value) == -1.0
        fast2 = fastwire.Writer()
        fast2.double(1, 0.0)
        assert fast2.getvalue() == b""  # +0.0 is the suppressed default

    @given(st.binary(max_size=300))
    def test_scope_matches_child_bytes_then_copy(self, payload):
        """begin/end_message produces the same bytes as serializing the
        child separately — across the 128-byte patch boundary."""
        scoped = fastwire.Writer()
        mark = scoped.begin_message(7)
        scoped.bytes(1, payload)
        scoped.varint(2, 99)
        scoped.end_message(mark)

        child = fastwire.Writer()
        child.bytes(1, payload)
        child.varint(2, 99)
        flat = reference.Writer().message(7, child.getvalue())
        assert scoped.getvalue() == flat.getvalue()

    def test_nested_scopes(self):
        writer = fastwire.Writer()
        outer = writer.begin_message(1)
        writer.varint(1, 5)
        inner = writer.begin_message(2)
        writer.bytes(1, b"x" * 200)  # forces the inner length to 2 bytes
        writer.end_message(inner)
        writer.varint(3, 7)
        writer.end_message(outer)

        inner_w = reference.Writer().bytes(1, b"x" * 200)
        mid = reference.Writer().varint(1, 5)
        mid.message(2, inner_w.getvalue()).varint(3, 7)
        expected = reference.Writer().message(1, mid.getvalue())
        assert writer.getvalue() == expected.getvalue()

    def test_len_is_tracked_not_recomputed(self):
        writer = wire.Writer()
        assert isinstance(writer, fastwire.Writer)
        assert len(writer) == 0
        writer.varint(1, 300)
        assert len(writer) == 3  # 1 tag byte + 2 varint bytes


# --------------------------------------------------------------------------
# Message codecs: fixtures decode equal / encode byte-identical
# --------------------------------------------------------------------------

class TestPprofEquivalence:
    def test_fixture_decode_equal(self, small_pprof_raw):
        assert (pprof_pb.Profile.parse(small_pprof_raw)
                == reference.parse_pprof(small_pprof_raw))

    def test_fixture_encode_byte_identical(self, small_pprof_raw):
        profile = pprof_pb.Profile.parse(small_pprof_raw)
        assert profile.serialize() == reference.serialize_pprof(profile)

    def test_fixture_encode_is_input(self, small_pprof_raw):
        profile = pprof_pb.Profile.parse(small_pprof_raw)
        assert profile.serialize() == small_pprof_raw

    def test_medium_fixture_round_trip(self):
        raw = generate_bytes(tier("medium"), compress=False)
        profile = pprof_pb.Profile.parse(raw)
        assert profile == reference.parse_pprof(raw)
        assert profile.serialize() == reference.serialize_pprof(profile)


class TestEasyViewEquivalence:
    def test_fixture_decode_equal(self, small_easyview_raw):
        assert (easyview_pb.ProfileMessage.parse(small_easyview_raw)
                == reference.parse_easyview(small_easyview_raw))

    def test_fixture_encode_byte_identical(self, small_easyview_raw):
        message = easyview_pb.ProfileMessage.parse(small_easyview_raw)
        assert message.serialize() == reference.serialize_easyview(message)

    def test_loads_accepts_memoryview(self, small_easyview_raw):
        message = easyview_pb.ProfileMessage.parse(small_easyview_raw)
        framed = easyview_pb.dumps(message)
        assert easyview_pb.loads(memoryview(framed)) == message


class TestStoreEncodingEquivalence:
    def test_wal_payload_byte_identical(self):
        from repro.store.wal import WalRecord
        record = WalRecord(service="web", ptype="cpu",
                           labels={"zone": "b", "az": "a"},
                           time_nanos=123456789, duration_nanos=60_000,
                           blob=b"\x01\x02" * 300, seq=42)
        assert record.payload() == reference.wal_payload(record)
        assert WalRecord.from_payload(record.payload()) == record

    def test_segment_footer_byte_identical(self):
        from repro.store.segment import RecordMeta, _footer_bytes, \
            _parse_footer
        metas = [RecordMeta(service="web", ptype="heap",
                            labels={"pod": str(i)}, time_nanos=i * 1000,
                            duration_nanos=5, offset=i * 64, length=64,
                            seq=i)
                 for i in range(20)]
        strings = ["", "main", "handler", "π"] * 5
        footer = _footer_bytes(strings, metas, 777)
        assert footer == reference.segment_footer(strings, metas, 777)
        parsed = _parse_footer(footer)
        assert parsed.strings == strings
        assert parsed.records == metas
        assert parsed.created_nanos == 777


# --------------------------------------------------------------------------
# Truncation: every byte offset, reference-identical behavior
# --------------------------------------------------------------------------

def _truncation_fixture():
    profile = pprof_pb.Profile(
        sample_type=[pprof_pb.ValueType(type=1, unit=2)],
        sample=[pprof_pb.Sample(location_id=[1, 2, 300],
                                value=[10, -5],
                                label=[pprof_pb.Label(key=3, num=128)])],
        location=[pprof_pb.Location(
            id=1, address=0xDEADBEEF,
            line=[pprof_pb.Line(function_id=1, line=42)])],
        function=[pprof_pb.Function(id=1, name=4, filename=5)],
        string_table=["", "cpu", "nanoseconds", "thread", "main", "main.c"],
        time_nanos=1_700_000_000_000_000_000,
        period=10_000_000,
        default_sample_type=1,  # non-default tail field
    )
    return profile.serialize()


def test_truncation_at_every_offset_matches_reference():
    raw = _truncation_fixture()
    assert len(raw) > 100
    for cut in range(len(raw)):
        prefix = raw[:cut]
        try:
            expected = ("ok", reference.parse_pprof(prefix))
        except WireError as exc:
            expected = ("err", str(exc))
        except Exception as exc:  # pragma: no cover - would be a real bug
            pytest.fail("reference crashed at offset %d: %r" % (cut, exc))
        try:
            got = ("ok", pprof_pb.Profile.parse(prefix))
        except WireError as exc:
            got = ("err", str(exc))
        except Exception as exc:
            pytest.fail("fastwire crashed at offset %d: %r" % (cut, exc))
        assert got == expected, "divergence at offset %d" % cut


def test_scan_fields_truncation_never_crashes():
    raw = _truncation_fixture()
    for cut in range(len(raw)):
        assert (_field_outcomes(raw[:cut], fastwire.scan_fields)
                == _field_outcomes(raw[:cut], reference.iter_fields))


# --------------------------------------------------------------------------
# Interner
# --------------------------------------------------------------------------

class TestStringInterner:
    def test_identity_across_decodes(self):
        pool = fastwire.StringInterner()
        first = pool.decode(b"main.handleRequest")
        second = pool.decode(bytearray(b"main.handleRequest"))
        assert first is second
        assert pool.hits == 1 and pool.misses == 1

    def test_bounded(self):
        pool = fastwire.StringInterner(max_entries=4)
        for i in range(10):
            pool.decode(str(i).encode())
        assert len(pool) <= 4
        assert pool.decode(b"9") == "9"  # correctness survives the clear

    def test_utf8_errors_propagate(self):
        with pytest.raises(UnicodeDecodeError):
            fastwire.intern_string(b"\xff\xfe\xfd")
