"""End-to-end tests for ``easyview lint`` and the ``view/lint`` protocol.

Covers the ISSUE acceptance criteria: a profile with a dangling
string-table index exits nonzero while a clean one exits zero; a formula
with an undefined metric yields a diagnostic with a rule ID and character
span; a callback calling ``open()`` is flagged — plus the golden
JSON-diagnostics snapshot and the ``ide/publishDiagnostics`` wiring.
"""

import json
import os

import pytest

from repro.cli import main
from repro.ide.mock_ide import MockIDE
from repro.ide.protocol import IDE_PUBLISH_DIAGNOSTICS
from repro.lint import lint_formula, lint_source, render_json
from repro.proto import pprof_pb

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "lint_golden.json")


def make_pprof(dangling=False):
    msg = pprof_pb.Profile()
    msg.string_table = ["", "cpu", "nanoseconds", "main", "work", "a.py"]
    msg.sample_type.append(pprof_pb.ValueType(type=1, unit=2))
    msg.function.append(pprof_pb.Function(id=1, name=3, filename=5))
    msg.function.append(pprof_pb.Function(id=2, name=4, filename=5))
    msg.location.append(pprof_pb.Location(
        id=1, line=[pprof_pb.Line(function_id=1, line=10)]))
    msg.location.append(pprof_pb.Location(
        id=2, line=[pprof_pb.Line(function_id=2, line=20)]))
    msg.sample.append(pprof_pb.Sample(location_id=[2, 1], value=[42]))
    if dangling:
        msg.function[0].name = 99  # index past the string table
    return pprof_pb.dumps(msg)


@pytest.fixture
def clean_path(tmp_path):
    path = tmp_path / "clean.pb.gz"
    path.write_bytes(make_pprof())
    return str(path)


@pytest.fixture
def dangling_path(tmp_path):
    path = tmp_path / "dangling.pb.gz"
    path.write_bytes(make_pprof(dangling=True))
    return str(path)


class TestLintCommand:
    def test_clean_profile_exits_zero(self, clean_path, capsys):
        assert main(["lint", clean_path]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_dangling_string_index_exits_nonzero(self, dangling_path,
                                                 capsys):
        assert main(["lint", dangling_path]) == 1
        out = capsys.readouterr().out
        assert "EV301" in out and "string 99" in out

    def test_formula_against_profile_metrics(self, clean_path, capsys):
        # The pprof converter names the sample-type column "cpu".
        assert main(["lint", clean_path, "--formula", "cpu / 2"]) == 0
        assert main(["lint", clean_path, "--formula", "cpuz / 2"]) == 1
        out = capsys.readouterr().out
        assert "EV101" in out and "chars 0..4" in out

    def test_formula_without_profile_skips_metric_check(self, capsys):
        assert main(["lint", "--formula", "whatever + 1"]) == 0
        assert main(["lint", "--formula", "whatever +"]) == 1
        assert "EV100" in capsys.readouterr().out

    def test_callback_file_with_open_is_flagged(self, tmp_path, capsys):
        callback = tmp_path / "cb.py"
        callback.write_text("def remap(frame):\n"
                            "    return open(frame.name).read()\n")
        assert main(["lint", "--callback", str(callback)]) == 1
        out = capsys.readouterr().out
        assert "EV202" in out and str(callback) in out

    def test_disable_directive(self, dangling_path):
        assert main(["lint", dangling_path, "--disable", "EV301"]) == 0

    def test_severity_directive_downgrades_exit_code(self, dangling_path):
        assert main(["lint", dangling_path,
                     "--disable", "EV301=warning"]) == 0

    def test_json_output_is_valid_and_sorted(self, dangling_path, capsys):
        assert main(["lint", dangling_path, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["counts"]["error"] == 1
        assert report["diagnostics"][0]["ruleId"] == "EV301"

    def test_unreadable_profile_reports_not_crashes(self, tmp_path, capsys):
        path = tmp_path / "junk.pb.gz"
        path.write_bytes(b"\x1f\x8b not actually gzip")
        assert main(["lint", str(path)]) == 1


class TestGoldenSnapshot:
    def test_json_report_matches_golden(self):
        diags = lint_formula("cyclez / (1000/8) + min(cycles)",
                             metrics=["cycles", "instructions"])
        diags += lint_source(
            "def remap(frame):\n    return open(frame.name)\n",
            subject="remap.py")
        with open(GOLDEN) as handle:
            assert render_json(diags) + "\n" == handle.read()


class TestViewLintProtocol:
    def test_view_lint_publishes_diagnostics(self, clean_path):
        ide = MockIDE()
        pid = ide.open_profile(clean_path)
        result = ide.request("view/lint", profileId=pid,
                             formula="cpuz + 1",
                             callbackSource="import os\n")
        rules = {d["ruleId"] for d in result["diagnostics"]}
        assert rules == {"EV101", "EV201"}
        assert result["counts"]["error"] == 2
        # The viewer pushed the same findings to the editor as squiggles.
        assert {d["ruleId"] for d in ide.state.diagnostics} == rules
        published = ide.actions_of(IDE_PUBLISH_DIAGNOSTICS)
        assert len(published) == 1

    def test_publish_replaces_previous_set(self, clean_path):
        ide = MockIDE()
        pid = ide.open_profile(clean_path)
        ide.request("view/lint", profileId=pid, formula="cpuz + 1")
        assert ide.state.diagnostics
        ide.request("view/lint", profileId=pid, formula="cpu + 1")
        assert ide.state.diagnostics == []

    def test_view_lint_without_profile(self):
        ide = MockIDE()
        result = ide.request("view/lint", formula="1 / 0")
        assert {d["ruleId"] for d in result["diagnostics"]} == {"EV104",
                                                               "EV105"}

    def test_view_lint_respects_disable(self, clean_path):
        ide = MockIDE()
        pid = ide.open_profile(clean_path)
        result = ide.request("view/lint", profileId=pid,
                             formula="cpuz + 1", disable=["EV101"])
        assert result["diagnostics"] == []

    def test_diagnostic_payload_shape(self):
        ide = MockIDE()
        result = ide.request("view/lint", formula="cyclez + 1")
        assert result["diagnostics"] == []  # no metric env → EV101 skipped
        result = ide.request("view/lint", callbackSource="eval('x')")
        [diag] = result["diagnostics"]
        assert diag["ruleId"] == "EV203"
        assert diag["severity"] == 1
        assert diag["source"] == "proflint:callback"
        assert diag["range"]["start"] == 0
