"""StdioServer robustness: bounded reads, bad bytes, clean interrupts."""

from __future__ import annotations

import io
import json

from repro.ide.protocol import PARSE_ERROR
from repro.ide.server import StdioServer


def _serve(stdin, **kwargs):
    stdout = io.StringIO()
    server = StdioServer(stdin=stdin, stdout=stdout, **kwargs)
    handled = server.serve_forever()
    lines = [json.loads(line) for line in
             stdout.getvalue().strip().splitlines() if line]
    return handled, lines


def _shutdown(req_id=99):
    return json.dumps({"jsonrpc": "2.0", "id": req_id,
                       "method": "shutdown", "params": {}})


class TestOversizedLines:
    def test_oversized_line_gets_parse_error(self):
        big = '{"jsonrpc": "2.0", "padding": "%s"}' % ("x" * 200)
        stdin = io.StringIO(big + "\n" + _shutdown() + "\n")
        handled, lines = _serve(stdin, max_line_bytes=64)
        assert handled == 2
        errors = [m for m in lines if m.get("error")]
        assert errors[0]["error"]["code"] == PARSE_ERROR
        assert "exceeds 64 bytes" in errors[0]["error"]["message"]
        # The server recovered onto the next message boundary.
        assert any(m.get("id") == 99 and m.get("result") == {"ok": True}
                   for m in lines)

    def test_oversized_read_is_bounded(self):
        class CountingStream(io.StringIO):
            max_request = 0

            def readline(self, limit=-1):
                if limit is not None and limit > 0:
                    CountingStream.max_request = max(
                        CountingStream.max_request, limit)
                return super().readline(limit)

        stdin = CountingStream("y" * 4096 + "\n" + _shutdown() + "\n")
        _serve(stdin, max_line_bytes=128)
        assert CountingStream.max_request <= 129


class TestBadBytes:
    def test_non_utf8_input_gets_parse_error(self):
        stdin = io.BytesIO(b"\xff\xfe not a utf-8 line\n" +
                           _shutdown().encode("utf-8") + b"\n")
        handled, lines = _serve(stdin)
        assert handled == 2
        errors = [m for m in lines if m.get("error")]
        assert errors[0]["error"]["code"] == PARSE_ERROR
        assert "UTF-8" in errors[0]["error"]["message"]
        assert any(m.get("id") == 99 for m in lines)

    def test_byte_stream_requests_work(self):
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        stdin = io.BytesIO((request + "\n").encode("utf-8"))
        handled, lines = _serve(stdin)
        assert handled == 1
        assert lines[0]["id"] == 1
        assert lines[0]["result"]


class TestInterrupts:
    def test_keyboard_interrupt_is_clean_shutdown(self):
        class InterruptingStream(io.StringIO):
            def readline(self, limit=-1):
                line = super().readline(limit)
                if not line:
                    raise KeyboardInterrupt()
                return line

        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        stdout = io.StringIO()
        server = StdioServer(stdin=InterruptingStream(request + "\n"),
                             stdout=stdout)
        handled = server.serve_forever()  # must not raise
        assert handled == 1
        assert not server._running
        response = json.loads(stdout.getvalue().strip().splitlines()[0])
        assert response["id"] == 1


class TestNormalTraffic:
    def test_blank_lines_are_skipped(self):
        stdin = io.StringIO("\n\n" + _shutdown() + "\n")
        handled, lines = _serve(stdin)
        assert handled == 1

    def test_response_message_rejected(self):
        stdin = io.StringIO(
            json.dumps({"jsonrpc": "2.0", "id": 5, "result": {}}) + "\n" +
            _shutdown() + "\n")
        handled, lines = _serve(stdin)
        assert any(m.get("error", {}).get("message") == "expected a request"
                   for m in lines)
