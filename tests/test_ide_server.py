"""StdioServer robustness: bounded reads, bad bytes, crashed handlers,
clean interrupts."""

from __future__ import annotations

import io
import json

from repro.ide.protocol import INTERNAL_ERROR, PARSE_ERROR
from repro.ide.server import StdioServer


def _serve(stdin, **kwargs):
    stdout = io.StringIO()
    server = StdioServer(stdin=stdin, stdout=stdout, **kwargs)
    handled = server.serve_forever()
    lines = [json.loads(line) for line in
             stdout.getvalue().strip().splitlines() if line]
    return handled, lines


def _shutdown(req_id=99):
    return json.dumps({"jsonrpc": "2.0", "id": req_id,
                       "method": "shutdown", "params": {}})


class TestOversizedLines:
    def test_oversized_line_gets_parse_error(self):
        big = '{"jsonrpc": "2.0", "padding": "%s"}' % ("x" * 200)
        stdin = io.StringIO(big + "\n" + _shutdown() + "\n")
        handled, lines = _serve(stdin, max_line_bytes=64)
        assert handled == 2
        errors = [m for m in lines if m.get("error")]
        assert errors[0]["error"]["code"] == PARSE_ERROR
        assert "exceeds 64 bytes" in errors[0]["error"]["message"]
        # The server recovered onto the next message boundary.
        assert any(m.get("id") == 99 and m.get("result") == {"ok": True}
                   for m in lines)

    def test_oversized_read_is_bounded(self):
        class CountingStream(io.StringIO):
            max_request = 0

            def readline(self, limit=-1):
                if limit is not None and limit > 0:
                    CountingStream.max_request = max(
                        CountingStream.max_request, limit)
                return super().readline(limit)

        stdin = CountingStream("y" * 4096 + "\n" + _shutdown() + "\n")
        _serve(stdin, max_line_bytes=128)
        assert CountingStream.max_request <= 129


class TestBadBytes:
    def test_non_utf8_input_gets_parse_error(self):
        stdin = io.BytesIO(b"\xff\xfe not a utf-8 line\n" +
                           _shutdown().encode("utf-8") + b"\n")
        handled, lines = _serve(stdin)
        assert handled == 2
        errors = [m for m in lines if m.get("error")]
        assert errors[0]["error"]["code"] == PARSE_ERROR
        assert "UTF-8" in errors[0]["error"]["message"]
        assert any(m.get("id") == 99 for m in lines)

    def test_byte_stream_requests_work(self):
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        stdin = io.BytesIO((request + "\n").encode("utf-8"))
        handled, lines = _serve(stdin)
        assert handled == 1
        assert lines[0]["id"] == 1
        assert lines[0]["result"]


class TestInterrupts:
    def test_keyboard_interrupt_is_clean_shutdown(self):
        class InterruptingStream(io.StringIO):
            def readline(self, limit=-1):
                line = super().readline(limit)
                if not line:
                    raise KeyboardInterrupt()
                return line

        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        stdout = io.StringIO()
        server = StdioServer(stdin=InterruptingStream(request + "\n"),
                             stdout=stdout)
        handled = server.serve_forever()  # must not raise
        assert handled == 1
        assert not server._running
        response = json.loads(stdout.getvalue().strip().splitlines()[0])
        assert response["id"] == 1


class TestHandlerCrashes:
    """Regression: an exception inside a request handler used to escape
    ``serve_forever`` and kill the server.  It must instead answer the
    request with ``INTERNAL_ERROR`` and keep serving."""

    def _crashing_server(self, stdin):
        stdout = io.StringIO()
        server = StdioServer(stdin=stdin, stdout=stdout)

        def boom(message):
            raise RuntimeError("kaput")

        server.session.handle = boom
        return server, stdout

    def test_handler_exception_becomes_internal_error(self):
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/summary", "params": {}})
        stdin = io.StringIO(request + "\n" + _shutdown() + "\n")
        server, stdout = self._crashing_server(stdin)
        handled = server.serve_forever()  # must not raise
        assert handled == 2
        lines = [json.loads(line) for line in
                 stdout.getvalue().strip().splitlines()]
        error = next(m for m in lines if m.get("error"))
        assert error["id"] == 1
        assert error["error"]["code"] == INTERNAL_ERROR
        assert "kaput" in error["error"]["message"]
        assert "view/summary" in error["error"]["message"]
        # The server survived to answer the shutdown request.
        assert any(m.get("id") == 99 and m.get("result") == {"ok": True}
                   for m in lines)

    def test_crash_counter_increments(self):
        from repro.obs import get_registry
        before = get_registry().counter("server.handler_crashes").value
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/summary", "params": {}})
        server, _ = self._crashing_server(io.StringIO(request + "\n"))
        server.serve_forever()
        after = get_registry().counter("server.handler_crashes").value
        assert after == before + 1

    def test_error_carries_trace_id_when_tracing(self):
        from repro.obs import get_tracer
        tracer = get_tracer()
        saved = tracer.enabled
        tracer.configure(enabled=True)
        try:
            request = json.dumps({"jsonrpc": "2.0", "id": 1,
                                  "method": "view/summary", "params": {}})
            server, stdout = self._crashing_server(
                io.StringIO(request + "\n"))
            server.serve_forever()
            error = json.loads(stdout.getvalue().strip().splitlines()[0])
            assert "(trace " in error["error"]["message"]
        finally:
            tracer.configure(enabled=saved)
            tracer.clear()


class TestRequestTelemetry:
    def test_latency_and_inflight_accounting(self):
        from repro.obs import get_registry
        registry = get_registry()
        before = registry.histogram("server.request_seconds").count
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        _serve(io.StringIO(request + "\n"))
        assert registry.histogram("server.request_seconds").count \
            == before + 1
        assert registry.gauge("server.inflight").value == 0

    def test_slow_request_logs_structured_line(self):
        log = io.StringIO()
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        stdout = io.StringIO()
        server = StdioServer(stdin=io.StringIO(request + "\n"),
                             stdout=stdout, slow_seconds=0.0, log=log)
        server.serve_forever()
        entry = json.loads(log.getvalue().strip().splitlines()[0])
        assert entry["event"] == "slow_request"
        assert entry["method"] == "view/capabilities"
        assert entry["seconds"] >= 0
        assert "traceId" in entry

    def test_fast_requests_do_not_log(self):
        log = io.StringIO()
        request = json.dumps({"jsonrpc": "2.0", "id": 1,
                              "method": "view/capabilities", "params": {}})
        server = StdioServer(stdin=io.StringIO(request + "\n"),
                             stdout=io.StringIO(), slow_seconds=60.0,
                             log=log)
        server.serve_forever()
        assert log.getvalue() == ""

    def test_env_slow_threshold(self, monkeypatch):
        monkeypatch.setenv("EASYVIEW_SLOW_MS", "250")
        server = StdioServer(stdin=io.StringIO(""), stdout=io.StringIO())
        assert server.slow_seconds == 0.25


class TestNormalTraffic:
    def test_blank_lines_are_skipped(self):
        stdin = io.StringIO("\n\n" + _shutdown() + "\n")
        handled, lines = _serve(stdin)
        assert handled == 1

    def test_response_message_rejected(self):
        stdin = io.StringIO(
            json.dumps({"jsonrpc": "2.0", "id": 5, "result": {}}) + "\n" +
            _shutdown() + "\n")
        handled, lines = _serve(stdin)
        assert any(m.get("error", {}).get("message") == "expected a request"
                   for m in lines)
