"""Property-based tests of cross-module invariants.

These encode the algebraic laws the views rely on: transforms conserve
totals, aggregation is linear, diffing partitions contexts, pruning and
truncation conserve mass, and flame-graph geometry nests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.builder.builder import ProfileBuilder
from repro.analysis.aggregate import aggregate_profiles
from repro.analysis.diff import diff_profiles, summarize
from repro.analysis.prune import collapse_recursion, prune, truncate_depth
from repro.analysis.transform import bottom_up, flat, top_down
from repro.viz.layout import layout, layout_profile

# -- profile generator ---------------------------------------------------------

_NAMES = "abcdefg"


@st.composite
def profiles(draw, max_samples=15):
    builder = ProfileBuilder(tool="prop")
    metric = builder.metric("m")
    n = draw(st.integers(min_value=1, max_value=max_samples))
    for _ in range(n):
        depth = draw(st.integers(min_value=1, max_value=6))
        stack = [(draw(st.sampled_from(_NAMES)), "p.c",
                  draw(st.integers(1, 3)))
                 for _ in range(depth)]
        value = draw(st.integers(min_value=1, max_value=10_000))
        builder.sample(stack, {metric: float(value)})
    return builder.build()


def total(profile):
    return profile.total("m")


SETTINGS = settings(max_examples=40, deadline=None)


class TestTransformConservation:
    @SETTINGS
    @given(profiles())
    def test_top_down_conserves_total(self, profile):
        assert top_down(profile).total(0) == pytest.approx(total(profile))

    @SETTINGS
    @given(profiles())
    def test_bottom_up_conserves_total(self, profile):
        assert bottom_up(profile).total(0) == pytest.approx(total(profile))

    @SETTINGS
    @given(profiles())
    def test_flat_exclusive_conserves_total(self, profile):
        tree = flat(profile)
        assert tree.root.exclusive.get(0, 0.0) == pytest.approx(
            total(profile))

    @SETTINGS
    @given(profiles())
    def test_children_never_exceed_parent(self, profile):
        tree = top_down(profile)
        for node in tree.nodes():
            child_sum = sum(c.inclusive.get(0, 0.0)
                            for c in node.children.values())
            assert child_sum <= node.inclusive.get(0, 0.0) + 1e-6

    @SETTINGS
    @given(profiles())
    def test_bottom_up_first_level_is_exclusive_partition(self, profile):
        tree = bottom_up(profile)
        level1 = sum(c.inclusive.get(0, 0.0)
                     for c in tree.root.children.values())
        assert level1 == pytest.approx(total(profile))


class TestPruneConservation:
    @SETTINGS
    @given(profiles(), st.floats(min_value=0.0, max_value=0.5))
    def test_prune_conserves_total(self, profile, fraction):
        tree = top_down(profile)
        pruned = prune(tree, min_fraction=fraction)
        assert pruned.total(0) == pytest.approx(tree.total(0))
        assert pruned.node_count() <= tree.node_count() + sum(
            1 for n in pruned.nodes() if n.frame.name == "<pruned>")

    @SETTINGS
    @given(profiles(), st.integers(min_value=1, max_value=5))
    def test_truncate_conserves_total(self, profile, depth):
        tree = top_down(profile)
        cut = truncate_depth(tree, depth)
        assert cut.total(0) == pytest.approx(tree.total(0))
        assert all(n.depth() <= depth for n in cut.nodes())

    @SETTINGS
    @given(profiles())
    def test_collapse_recursion_conserves_exclusive(self, profile):
        tree = top_down(profile)
        collapsed = collapse_recursion(tree)
        before = sum(n.exclusive.get(0, 0.0) for n in tree.nodes())
        after = sum(n.exclusive.get(0, 0.0) for n in collapsed.nodes())
        assert after == pytest.approx(before)

    @SETTINGS
    @given(profiles())
    def test_collapse_removes_self_nesting(self, profile):
        collapsed = collapse_recursion(top_down(profile))
        for node in collapsed.nodes():
            for child in node.children.values():
                assert child.frame.merge_key() != node.frame.merge_key()


class TestAggregateLinearity:
    @SETTINGS
    @given(profiles(max_samples=8), profiles(max_samples=8))
    def test_sum_column_is_sum_of_totals(self, p1, p2):
        tree = aggregate_profiles([p1, p2])
        column = tree.schema.index_of("m:sum")
        assert tree.root.inclusive[column] == pytest.approx(
            total(p1) + total(p2))

    @SETTINGS
    @given(profiles(max_samples=8))
    def test_self_aggregation_doubles(self, profile):
        tree = aggregate_profiles([profile, profile])
        column = tree.schema.index_of("m:sum")
        mean_column = tree.schema.index_of("m:mean")
        for node in tree.nodes():
            if column in node.inclusive:
                assert node.inclusive[column] == pytest.approx(
                    2 * node.inclusive[mean_column])

    @SETTINGS
    @given(profiles(max_samples=8))
    def test_min_le_mean_le_max(self, profile):
        other = ProfileBuilder(tool="x")
        other.metric("m")
        tree = aggregate_profiles([profile, other.build()])
        schema = tree.schema
        for node in tree.nodes():
            lo = node.inclusive.get(schema.index_of("m:min"), 0.0)
            mid = node.inclusive.get(schema.index_of("m:mean"), 0.0)
            hi = node.inclusive.get(schema.index_of("m:max"), 0.0)
            assert lo <= mid + 1e-9 and mid <= hi + 1e-9


class TestDiffPartition:
    @SETTINGS
    @given(profiles(max_samples=8), profiles(max_samples=8))
    def test_every_node_tagged(self, p1, p2):
        tree = diff_profiles(p1, p2)
        for node in tree.nodes():
            if node is tree.root:
                continue
            assert node.tag in ("A", "D", "+", "-", "=")

    @SETTINGS
    @given(profiles(max_samples=8))
    def test_self_diff_is_all_same(self, profile):
        tree = diff_profiles(profile, profile)
        assert set(summarize(tree)) <= {"="}

    @SETTINGS
    @given(profiles(max_samples=8), profiles(max_samples=8))
    def test_diff_antisymmetry(self, p1, p2):
        forward = summarize(diff_profiles(p1, p2))
        backward = summarize(diff_profiles(p2, p1))
        assert forward.get("A", 0) == backward.get("D", 0)
        assert forward.get("D", 0) == backward.get("A", 0)
        assert forward.get("+", 0) == backward.get("-", 0)

    @SETTINGS
    @given(profiles(max_samples=8), profiles(max_samples=8))
    def test_delta_sums_to_total_difference(self, p1, p2):
        tree = diff_profiles(p1, p2)
        assert tree.root.delta(0) == pytest.approx(total(p2) - total(p1))


class TestLayoutGeometry:
    @SETTINGS
    @given(profiles())
    def test_blocks_nest_within_parents(self, profile):
        flame = layout(top_down(profile), min_width=0.0)
        for rect in flame.rects:
            parent = rect.node.parent
            if parent is None:
                continue
            parent_rects = [r for r in flame.rects if r.node is parent]
            assert parent_rects
            parent_rect = parent_rects[0]
            assert rect.x >= parent_rect.x - 1e-6
            assert rect.x + rect.width <= \
                parent_rect.x + parent_rect.width + 1e-6

    @SETTINGS
    @given(profiles())
    def test_lazy_equals_eager(self, profile):
        lazy = layout_profile(profile, min_width=0.0)
        eager = layout(top_down(profile), min_width=0.0)
        assert lazy.laid_out_nodes == eager.laid_out_nodes
        assert lazy.total_value == pytest.approx(eager.total_value)

    @SETTINGS
    @given(profiles(), st.floats(min_value=0.5, max_value=50.0))
    def test_min_width_monotone(self, profile, cutoff):
        tree = top_down(profile)
        fine = layout(tree, min_width=0.0)
        coarse = layout(tree, min_width=cutoff)
        assert coarse.laid_out_nodes <= fine.laid_out_nodes
        assert all(r.width >= cutoff for r in coarse.rects
                   if r.depth > 0)


class TestSerializationIdempotence:
    @SETTINGS
    @given(profiles(max_samples=8))
    def test_double_roundtrip_stable(self, profile):
        from repro.core.serialize import dumps, loads
        once = dumps(loads(dumps(profile)))
        twice = dumps(loads(once))
        assert once == twice
