"""Segments: round trips, string dedup, content addressing, corruption."""

from __future__ import annotations

import os

import pytest

from repro.core import serialize
from repro.errors import StoreError
from repro.store.segment import (SEGMENT_MAGIC, build_segment, load_profile,
                                 parse_segment, read_segment, to_wal_record,
                                 write_segment)
from repro.store.wal import WalRecord


def _wal_record(profile, seq, service="api", labels=None):
    return WalRecord(service=service, ptype="cpu", labels=labels or {},
                     time_nanos=1_700_000_000_000_000_000 + seq,
                     duration_nanos=1_000, blob=serialize.dumps(profile),
                     seq=seq)


class TestBuildSegment:
    def test_round_trip(self, tmp_path, simple_profile):
        records = [_wal_record(simple_profile, i) for i in (1, 2)]
        segment = write_segment(str(tmp_path), records, created_nanos=99)
        assert os.path.exists(segment.path)
        loaded = read_segment(segment.path, verify=True)
        assert loaded.address == segment.address
        assert loaded.created_nanos == 99
        assert [m.seq for m in loaded.records] == [1, 2]
        for meta, record in zip(loaded.records, records):
            profile = load_profile(loaded, meta)
            assert profile.node_count() == simple_profile.node_count()
            assert profile.schema.names() == simple_profile.schema.names()
            assert profile.meta.time_nanos == record.time_nanos

    def test_deterministic_address(self, simple_profile):
        records = [_wal_record(simple_profile, i) for i in (1, 2)]
        data_a, seg_a = build_segment(records, created_nanos=5)
        data_b, seg_b = build_segment(records, created_nanos=5)
        assert data_a == data_b
        assert seg_a.address == seg_b.address

    def test_string_dedup_across_records(self, simple_profile):
        one = [_wal_record(simple_profile, 1)]
        many = [_wal_record(simple_profile, i) for i in range(1, 9)]
        data_one, seg_one = build_segment(one)
        data_many, seg_many = build_segment(many)
        # Strings are interned once per segment, not once per record.
        assert seg_many.strings == seg_one.strings
        per_record_overhead = len(data_many) / len(many)
        assert per_record_overhead < len(data_one)

    def test_zero_records_refused(self):
        with pytest.raises(StoreError):
            build_segment([])

    def test_empty_address_segment_rejected(self, tmp_path, simple_profile):
        record = _wal_record(simple_profile, 1)
        record.blob = b"not a profile"
        with pytest.raises(StoreError, match="does not parse"):
            build_segment([record])


class TestCorruption:
    def test_bad_magic(self, tmp_path, simple_profile):
        segment = write_segment(str(tmp_path),
                                [_wal_record(simple_profile, 1)])
        with open(segment.path, "rb") as handle:
            data = handle.read()
        with pytest.raises(StoreError, match="bad magic"):
            parse_segment(b"NOTSEG00" + data[len(SEGMENT_MAGIC):])

    def test_missing_end_marker(self, tmp_path, simple_profile):
        segment = write_segment(str(tmp_path),
                                [_wal_record(simple_profile, 1)])
        with open(segment.path, "rb") as handle:
            data = handle.read()
        with pytest.raises(StoreError, match="truncated"):
            parse_segment(data[:-4])

    def test_bit_flip_fails_verification(self, tmp_path, simple_profile):
        segment = write_segment(str(tmp_path),
                                [_wal_record(simple_profile, 1)])
        with open(segment.path, "r+b") as handle:
            handle.seek(len(SEGMENT_MAGIC) + 3)
            byte = handle.read(1)
            handle.seek(len(SEGMENT_MAGIC) + 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(StoreError, match="integrity"):
            read_segment(segment.path, verify=True)
        # Without verification the (corrupt) footer still parses.
        loaded = read_segment(segment.path, verify=False)
        assert loaded.address != segment.address


class TestCompactionBridge:
    def test_to_wal_record_round_trips(self, tmp_path, simple_profile):
        original = _wal_record(simple_profile, 3, labels={"k": "v"})
        segment = write_segment(str(tmp_path), [original])
        rebuilt = to_wal_record(segment, segment.records[0])
        assert rebuilt.seq == original.seq
        assert rebuilt.service == original.service
        assert rebuilt.labels == original.labels
        assert rebuilt.time_nanos == original.time_nanos
        profile = serialize.loads(rebuilt.blob)
        assert profile.node_count() == simple_profile.node_count()
