"""Golden tests for the SelfCheck blocking pass (EV411-EV413)."""

import textwrap

from repro.sa import analyze_source, classify_blocking, is_hot_span


def run(source, subject="repro/example.py"):
    return analyze_source(textwrap.dedent(source), subject)


def rules_of(diags):
    return {d.rule for d in diags}


class TestEV411BlockingUnderLock:
    def test_sleep_under_lock(self):
        diags = run("""\
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        time.sleep(0.1)
            """)
        assert [d.rule for d in diags] == ["EV411"]
        assert "time.sleep" in diags[0].message
        assert "self._lock" in diags[0].message

    def test_open_under_lock(self):
        diags = run("""\
            import threading

            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()

                def dump(self, path, payload):
                    with self._lock:
                        with open(path, "w") as handle:
                            handle.write(payload)
            """)
        assert "EV411" in rules_of(diags)

    def test_fsync_under_lock(self):
        diags = run("""\
            import os
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()

                def sync(self, fd):
                    with self._lock:
                        os.fsync(fd)
            """)
        assert "EV411" in rules_of(diags)

    def test_pool_fanout_under_lock(self):
        diags = run("""\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def go(self, pool, fn, items):
                    with self._lock:
                        return pool.map(fn, items)
            """)
        assert "EV411" in rules_of(diags)
        assert "pool.map" in diags[0].message

    def test_io_after_release_is_clean(self):
        assert run("""\
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self):
                    with self._lock:
                        delay = 0.1
                    time.sleep(delay)
            """) == []

    def test_nested_function_releases_the_lexical_lock(self):
        # A callable defined under the lock runs later, lock-free: its
        # blocking calls are not "under the lock".
        assert run("""\
            import threading
            import time

            class Deferred:
                def __init__(self):
                    self._lock = threading.Lock()

                def plan(self):
                    with self._lock:
                        def later():
                            time.sleep(1.0)
                        return later
            """) == []


class TestEV412BlockingInHotSpan:
    def test_sleep_inside_tracer_span(self):
        diags = run("""\
            import time

            def work(tracer):
                with tracer.span("engine.work"):
                    time.sleep(0.5)
            """)
        assert [d.rule for d in diags] == ["EV412"]
        assert "time.sleep" in diags[0].message

    def test_ev411_takes_precedence_over_ev412(self):
        diags = run("""\
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self, tracer):
                    with tracer.span("engine.work"):
                        with self._lock:
                            time.sleep(0.5)
            """)
        assert [d.rule for d in diags] == ["EV411"]

    def test_span_depth_resets_in_nested_function(self):
        assert run("""\
            import time

            def schedule(tracer):
                with tracer.span("engine.schedule"):
                    def later():
                        time.sleep(1.0)
                    return later
            """) == []

    def test_non_tracer_span_is_not_hot(self):
        assert run("""\
            import time

            def work(doc):
                with doc.span("bold"):
                    time.sleep(0.5)
            """) == []

    def test_plain_code_in_span_is_clean(self):
        assert run("""\
            def work(tracer, items):
                with tracer.span("engine.work"):
                    return sum(items)
            """) == []


class TestEV413BlockingInAsyncDef:
    def test_sleep_in_coroutine(self):
        diags = run("""\
            import time

            async def poll(queue):
                time.sleep(0.05)
                return queue.get_nowait()
            """)
        assert [d.rule for d in diags] == ["EV413"]
        assert "time.sleep" in diags[0].message
        assert "event loop" in diags[0].message

    def test_open_in_async_method(self):
        diags = run("""\
            class Session:
                async def load(self, path):
                    with open(path) as handle:
                        return handle.read()
            """)
        assert rules_of(diags) == {"EV413"}
        assert "Session.load" in diags[0].message

    def test_asyncio_sleep_is_clean(self):
        assert run("""\
            import asyncio

            async def poll(queue):
                await asyncio.sleep(0.05)
                return queue.get_nowait()
            """) == []

    def test_sync_helper_nested_in_coroutine_is_clean(self):
        # The nested def runs later, on whatever thread calls it — its
        # body does not execute on the event loop when defined.
        assert run("""\
            import time

            async def schedule(loop):
                def blocking_job():
                    time.sleep(0.05)
                return loop.run_in_executor(None, blocking_job)
            """) == []

    def test_nested_coroutine_inside_sync_def_flags(self):
        diags = run("""\
            import time

            def make_handler():
                async def handler(request):
                    time.sleep(0.05)
                return handler
            """)
        assert [d.rule for d in diags] == ["EV413"]

    def test_ev411_takes_precedence_over_ev413(self):
        diags = run("""\
            import threading
            import time

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                async def refresh(self):
                    with self._lock:
                        time.sleep(0.05)
            """)
        assert [d.rule for d in diags] == ["EV411"]

    def test_ev413_takes_precedence_over_ev412(self):
        diags = run("""\
            import time

            async def render(tracer, tree):
                with tracer.span("viewer.render"):
                    time.sleep(0.05)
                    return tree.layout()
            """)
        assert [d.rule for d in diags] == ["EV413"]


class TestClassifiers:
    def test_classify_blocking_labels(self):
        import ast

        def call_node(expr):
            return ast.parse(expr, mode="eval").body

        assert classify_blocking(call_node("open('x')")) == "open()"
        assert (classify_blocking(call_node("time.sleep(1)"))
                == "time.sleep()")
        assert (classify_blocking(call_node("subprocess.run(cmd)"))
                == "subprocess.run()")
        assert classify_blocking(call_node("os.fsync(fd)")) == "os.fsync()"
        assert (classify_blocking(call_node("pool.map(f, xs)"))
                == "pool.map() (worker-pool fan-out)")
        assert (classify_blocking(call_node("self.wal.append(rec)"))
                == "self.wal.append()")
        assert classify_blocking(call_node("math.sqrt(2)")) is None
        assert classify_blocking(call_node("items.append(1)")) is None

    def test_is_hot_span(self):
        import ast

        def expr(text):
            return ast.parse(text, mode="eval").body

        assert is_hot_span(expr("tracer.span('x')"))
        assert is_hot_span(expr("self._tracer.span('x', tag=1)"))
        assert not is_hot_span(expr("doc.span('x')"))
        assert not is_hot_span(expr("tracer.begin('x')"))
        assert not is_hot_span(expr("tracer.span"))
