"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import ProfileBuilder
from repro.profilers.corpus import generate_bytes, tier
from repro.profilers.workloads import (grpc_client_profile, lulesh_profile,
                                       lulesh_reuse_profile, spark_profile)


@pytest.fixture
def simple_profile():
    """A tiny hand-built profile: main → {work, idle}, work → inner."""
    builder = ProfileBuilder(tool="test")
    cpu = builder.metric("cpu", unit="nanoseconds")
    alloc = builder.metric("alloc", unit="bytes")
    builder.sample([("main", "app.c", 10), ("work", "app.c", 42),
                    ("inner", "app.c", 60)], {cpu: 700})
    builder.sample([("main", "app.c", 10), ("work", "app.c", 42)],
                   {cpu: 200, alloc: 64})
    builder.sample([("main", "app.c", 10), ("idle", "app.c", 77)],
                   {cpu: 100})
    return builder.build()


@pytest.fixture
def recursive_profile():
    """A profile with a self-recursive chain: main → f → f → f → g."""
    builder = ProfileBuilder(tool="test")
    cpu = builder.metric("cpu", unit="nanoseconds")
    f1 = ("f", "r.c", 5)
    builder.sample([("main", "r.c", 1), f1], {cpu: 10})
    builder.sample([("main", "r.c", 1), f1, f1], {cpu: 20})
    builder.sample([("main", "r.c", 1), f1, f1, f1], {cpu: 30})
    builder.sample([("main", "r.c", 1), f1, f1, f1, ("g", "r.c", 9)],
                   {cpu: 40})
    return builder.build()


@pytest.fixture(scope="session")
def grpc_profile():
    """The §VII-C1 gRPC memory-snapshot workload (session-cached)."""
    return grpc_client_profile(clients=20, snapshots=12)


@pytest.fixture(scope="session")
def lulesh():
    """The §VII-C2 LULESH CPU workload (session-cached)."""
    return lulesh_profile(scale=4)


@pytest.fixture(scope="session")
def lulesh_reuse():
    """LULESH with use/reuse pairs (session-cached)."""
    return lulesh_reuse_profile(scale=2)


@pytest.fixture(scope="session")
def spark_pair():
    """(RDD, SQL) Spark profiles for differential tests (session-cached)."""
    return spark_profile("rdd"), spark_profile("sql")


@pytest.fixture(scope="session")
def small_pprof_bytes():
    """A small synthetic pprof binary (session-cached)."""
    return generate_bytes(tier("small"))
