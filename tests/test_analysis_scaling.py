"""Tests for the ScaAnalyzer-style scaling analysis."""

import pytest

from repro import ProfileBuilder
from repro.analysis.scaling import (fit_exponent, scaling_losses,
                                    scaling_report, scaling_tree)
from repro.errors import AnalysisError
from repro.profilers.workloads import scaling_workload


@pytest.fixture(scope="module")
def sweep():
    return [(float(r), scaling_workload(r)) for r in (2, 4, 8, 16)]


class TestFitExponent:
    def test_linear_growth(self):
        assert fit_exponent([1, 2, 4], [10, 20, 40]) == pytest.approx(1.0)

    def test_quadratic_growth(self):
        assert fit_exponent([1, 2, 4], [3, 12, 48]) == pytest.approx(2.0)

    def test_constant(self):
        assert fit_exponent([1, 2, 4], [7, 7, 7]) == pytest.approx(0.0)

    def test_shrinking(self):
        assert fit_exponent([1, 2, 4], [40, 20, 10]) == pytest.approx(-1.0)

    def test_short_series_rejected(self):
        with pytest.raises(AnalysisError):
            fit_exponent([1], [5])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            fit_exponent([1, 2], [5])


class TestScalingReport:
    def test_halo_buffers_flagged(self, sweep):
        losses = scaling_losses(sweep, "alloc_bytes",
                                expected_exponent=0.0)
        names = {v.label for v in losses}
        assert any("exchange_halos" in n or "halo_buffers" in n
                   for n in names)

    def test_replicated_table_not_flagged(self, sweep):
        verdicts = scaling_report(sweep, "alloc_bytes",
                                  expected_exponent=0.0)
        table = [v for v in verdicts if "lookup_table" in v.label]
        assert table and not table[0].loss
        assert table[0].exponent == pytest.approx(0.0, abs=0.05)

    def test_partitioned_arrays_shrink(self, sweep):
        verdicts = scaling_report(sweep, "alloc_bytes",
                                  expected_exponent=0.0)
        domain = [v for v in verdicts if "domain_arrays" in v.label]
        assert domain and domain[0].exponent < -0.5

    def test_sorted_worst_first(self, sweep):
        verdicts = scaling_report(sweep, "alloc_bytes",
                                  expected_exponent=0.0)
        exponents = [v.exponent for v in verdicts]
        assert exponents == sorted(exponents, reverse=True)

    def test_describe(self, sweep):
        verdicts = scaling_report(sweep, "alloc_bytes",
                                  expected_exponent=0.0)
        assert "SCALING LOSS" in verdicts[0].describe()

    def test_single_run_rejected(self, sweep):
        with pytest.raises(AnalysisError):
            scaling_report(sweep[:1], "alloc_bytes")

    def test_unordered_scales_rejected(self, sweep):
        with pytest.raises(AnalysisError):
            scaling_report(list(reversed(sweep)), "alloc_bytes")

    def test_min_share_filters_noise(self, sweep):
        few = scaling_report(sweep, "alloc_bytes", expected_exponent=0.0,
                             min_share=0.2)
        many = scaling_report(sweep, "alloc_bytes", expected_exponent=0.0,
                              min_share=0.0)
        assert len(few) < len(many)


class TestScalingTree:
    def test_ratio_column(self, sweep):
        tree = scaling_tree(sweep[0][1], sweep[-1][1],
                            metric="alloc_bytes")
        column = tree.schema.index_of("alloc_bytes:ratio")
        halos = [n for n in tree.nodes()
                 if n.frame.name == "exchange_halos"]
        # 16 ranks / 2 ranks = 8× halo memory.
        assert halos[0].inclusive[column] == pytest.approx(8.0, rel=0.01)
        tables = [n for n in tree.nodes() if n.frame.name == "setup"]
        assert tables[0].inclusive[column] == pytest.approx(1.0, rel=0.01)
