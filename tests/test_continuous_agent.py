"""The capture agent: envelopes, the spool, retry/backoff, replay."""

from __future__ import annotations

import os

import pytest

from repro.continuous import (CaptureAgent, CaptureEnvelope, DiskSpool,
                              EnvelopeError, MachineSource, RetryPolicy)
from repro.continuous.agent import ShipError
from repro.continuous.envelope import (HEADER_DIGEST, HEADER_LABELS,
                                       HEADER_SERVICE)


def make_envelope(seq=0, payload=b"profile-bytes", service="checkout",
                  **kwargs):
    return CaptureEnvelope(service=service, host="h1", ptype="cpu",
                           seq=seq, blob=payload, time_nanos=123,
                           labels={"region": "us"}, **kwargs)


class RecordingShipper:
    """Scripted shipper: raises per the plan, then succeeds."""

    def __init__(self, plan=()):
        self.plan = list(plan)
        self.sent = []

    def __call__(self, envelope):
        self.sent.append(envelope)
        if self.plan:
            exc = self.plan.pop(0)
            if exc is not None:
                raise exc
        return {"status": "stored", "digest": envelope.digest}


class TestEnvelope:
    def test_spool_roundtrip(self):
        env = make_envelope()
        back = CaptureEnvelope.from_bytes(env.to_bytes())
        assert back.service == "checkout"
        assert back.host == "h1"
        assert back.seq == 0
        assert back.time_nanos == 123
        assert back.labels == {"region": "us"}
        assert back.blob == b"profile-bytes"
        assert back.digest == env.digest

    def test_header_roundtrip(self):
        env = make_envelope(seq=7)
        back = CaptureEnvelope.from_headers(env.to_headers(), env.blob)
        assert back.seq == 7
        assert back.labels == {"region": "us"}
        assert back.digest == env.digest

    def test_header_digest_mismatch_rejected(self):
        env = make_envelope()
        headers = env.to_headers()
        with pytest.raises(EnvelopeError, match="digest mismatch"):
            CaptureEnvelope.from_headers(headers, b"different-bytes")

    def test_missing_service_header_rejected(self):
        headers = make_envelope().to_headers()
        del headers[HEADER_SERVICE]
        with pytest.raises(EnvelopeError, match=HEADER_SERVICE):
            CaptureEnvelope.from_headers(headers, b"profile-bytes")

    def test_bad_labels_header_rejected(self):
        headers = make_envelope().to_headers()
        headers[HEADER_LABELS] = "{not json"
        with pytest.raises(EnvelopeError, match="unparseable"):
            CaptureEnvelope.from_headers(headers, b"profile-bytes")

    def test_bad_magic_rejected(self):
        with pytest.raises(EnvelopeError, match="magic"):
            CaptureEnvelope.from_bytes(b"NOTSPOOL {}\nxx")

    def test_truncated_record_rejected(self):
        data = make_envelope().to_bytes()
        with pytest.raises(EnvelopeError):
            CaptureEnvelope.from_bytes(data.split(b"\n")[0])

    def test_empty_blob_rejected(self):
        with pytest.raises(EnvelopeError, match="non-empty"):
            CaptureEnvelope(service="s", host="h", ptype="cpu", seq=0,
                            blob=b"")

    def test_corrupt_spool_blob_detected(self):
        data = make_envelope().to_bytes()
        with pytest.raises(EnvelopeError, match="corrupt"):
            CaptureEnvelope.from_bytes(data[:-1] + b"X")

    def test_store_labels_carry_identity_and_digest(self):
        env = make_envelope(seq=3)
        labels = env.store_labels()
        assert labels["host"] == "h1"
        assert labels["agent_seq"] == "3"
        assert labels["digest"] == env.digest
        assert labels["region"] == "us"


class TestDiskSpool:
    def test_put_peek_pop_is_fifo(self, tmp_path):
        spool = DiskSpool(str(tmp_path))
        for seq in range(3):
            spool.put(make_envelope(seq=seq,
                                    payload=b"payload-%d" % seq))
        assert len(spool) == 3
        assert spool.peek().seq == 0
        spool.pop()
        assert spool.peek().seq == 1

    def test_drain_removes_after_yield(self, tmp_path):
        spool = DiskSpool(str(tmp_path))
        for seq in range(3):
            spool.put(make_envelope(seq=seq, payload=b"p%d" % seq))
        drained = []
        for env in spool.drain():
            drained.append(env.seq)
            if env.seq == 1:
                break  # simulate the collector going away again
        assert drained == [0, 1]
        # 0 was popped, 1 was yielded but not popped (break before the
        # generator advanced), 2 untouched.
        assert spool.peek().seq == 1

    def test_bounded_spool_evicts_oldest(self, tmp_path):
        spool = DiskSpool(str(tmp_path), max_records=2)
        for seq in range(4):
            spool.put(make_envelope(seq=seq, payload=b"p%d" % seq))
        assert len(spool) == 2
        assert spool.peek().seq == 2

    def test_corrupt_record_is_skipped_and_removed(self, tmp_path):
        spool = DiskSpool(str(tmp_path))
        spool.put(make_envelope(seq=0, payload=b"good"))
        # Corrupt the only record on disk.
        (name,) = [n for n in os.listdir(str(tmp_path))
                   if n.endswith(".evspool")]
        with open(os.path.join(str(tmp_path), name), "wb") as fh:
            fh.write(b"garbage")
        assert spool.peek() is None
        assert len(spool) == 0

    def test_tmp_leftovers_are_swept(self, tmp_path):
        leftover = tmp_path / "0000.evspool.tmp"
        leftover.write_bytes(b"half-written")
        spool = DiskSpool(str(tmp_path))
        spool.put(make_envelope())
        assert not leftover.exists()

    def test_survives_reopen(self, tmp_path):
        DiskSpool(str(tmp_path)).put(make_envelope(seq=9))
        reopened = DiskSpool(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.peek().seq == 9


class TestRetryPolicy:
    def test_ceiling_doubles_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
        full = lambda: 1.0  # jitter at the ceiling
        assert policy.delay(0, full) == pytest.approx(0.1)
        assert policy.delay(1, full) == pytest.approx(0.2)
        assert policy.delay(2, full) == pytest.approx(0.4)
        assert policy.delay(3, full) == pytest.approx(0.5)  # capped
        assert policy.delay(10, full) == pytest.approx(0.5)

    def test_full_jitter_spans_zero_to_ceiling(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        assert policy.delay(1, lambda: 0.0) == 0.0
        assert policy.delay(1, lambda: 0.5) == pytest.approx(0.1)

    def test_server_retry_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.02)
        delay = policy.delay(0, lambda: 0.0, retry_after_ms=250)
        assert delay == pytest.approx(0.25)


class TestCaptureAgent:
    def make_agent(self, shipper, tmp_path=None, attempts=3):
        sleeps = []
        agent = CaptureAgent(
            MachineSource("checkout", scale=3), shipper,
            service="checkout", host="h1", labels={"env": "test"},
            spool=DiskSpool(str(tmp_path)) if tmp_path else None,
            retry=RetryPolicy(max_attempts=attempts, base_delay=0.01),
            clock=lambda: 1000.0, sleep=sleeps.append,
            rng=lambda: 1.0)
        return agent, sleeps

    def test_capture_stamps_identity(self):
        agent, _ = self.make_agent(RecordingShipper())
        env = agent.capture()
        assert env.service == "checkout"
        assert env.host == "h1"
        assert env.labels == {"env": "test"}
        assert env.seq == 0
        assert agent.capture().seq == 1

    def test_ship_retries_then_succeeds(self):
        shipper = RecordingShipper([ShipError("down"), ShipError("down"),
                                    None])
        agent, sleeps = self.make_agent(shipper)
        result = agent.ship(agent.capture())
        assert result["status"] == "stored"
        assert len(shipper.sent) == 3
        assert len(sleeps) == 2  # backoff between the three attempts

    def test_exhausted_retries_spool_the_capture(self, tmp_path):
        shipper = RecordingShipper([ShipError("down")] * 3)
        agent, _ = self.make_agent(shipper, tmp_path=tmp_path, attempts=3)
        assert agent.ship(agent.capture()) is None
        assert len(agent.spool) == 1

    def test_permanent_rejection_drops_without_spooling(self, tmp_path):
        shipper = RecordingShipper(
            [ShipError("bad profile", retryable=False)])
        agent, _ = self.make_agent(shipper, tmp_path=tmp_path)
        assert agent.ship(agent.capture()) is None
        assert len(shipper.sent) == 1  # no retries for permanent errors
        assert len(agent.spool) == 0

    def test_spool_replays_before_fresh_captures(self, tmp_path):
        # Outage: two captures land in the spool.
        down = RecordingShipper([ShipError("down")] * 8)
        agent, _ = self.make_agent(down, tmp_path=tmp_path, attempts=2)
        agent.tick()
        agent.tick()
        assert len(agent.spool) == 2

        # Recovery: the next tick drains the backlog first, in order.
        up = RecordingShipper()
        agent.shipper = up
        agent.tick()
        assert [e.seq for e in up.sent] == [0, 1, 2]
        assert len(agent.spool) == 0

    def test_replay_stops_on_transient_failure(self, tmp_path):
        down = RecordingShipper([ShipError("down")] * 8)
        agent, _ = self.make_agent(down, tmp_path=tmp_path, attempts=2)
        agent.tick()
        agent.tick()
        flaky = RecordingShipper([None, ShipError("down again")])
        agent.shipper = flaky
        assert agent.replay_spool() == 1
        assert len(agent.spool) == 1  # the unshipped tail stays parked

    def test_run_sleeps_the_cadence_between_ticks(self):
        agent, sleeps = self.make_agent(RecordingShipper())
        agent.cadence_seconds = 5.0
        results = agent.run(3)
        assert len(results) == 3
        assert sleeps.count(5.0) == 2

    def test_retry_hint_reaches_the_backoff(self):
        shipper = RecordingShipper(
            [ShipError("busy", retry_after_ms=500), None])
        agent, sleeps = self.make_agent(shipper)
        agent.ship(agent.capture())
        assert sleeps and sleeps[0] >= 0.5


class TestMachineSource:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(Exception, match="unknown scenario"):
            MachineSource("nope")

    def test_seed_varies_per_tick(self):
        from repro.core.digest import profile_digest
        source = MachineSource("checkout", scale=3)
        digests = {profile_digest(source()) for _ in range(3)}
        assert len(digests) == 3

    def test_vary_seed_off_is_deterministic(self):
        from repro.core.digest import profile_digest
        source = MachineSource("checkout", scale=3, vary_seed=False)
        digests = {profile_digest(source()) for _ in range(3)}
        assert len(digests) == 1
