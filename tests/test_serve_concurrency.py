"""Concurrent shared-state serving: N sessions, one engine, one store.

The determinism claim under test: N sessions hammering the shared
engine cache and a shared profile store through ``repro.serve`` produce
response streams digest-identical to each other *and* to a single
client running the same script against the stdio transport.
"""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.bench.serve import make_profile, stdio_reference_digest
from repro.core.serialize import dump
from repro.engine import get_engine
from repro.ide import protocol as pvp
from repro.ide.session import ViewerSession
from repro.serve import (PVPServer, ServeConfig, analyst_script, run_load,
                         sequential_script)

SESSIONS = 8


def run_sessions(profile_path, script, sessions=SESSIONS):
    async def main():
        server = PVPServer(ServeConfig(max_session_queue=64),
                           log=io.StringIO())
        await server.start()
        try:
            return await run_load("127.0.0.1", server.port, sessions,
                                  profile_path, script=script)
        finally:
            await server.stop()

    return asyncio.run(main())


@pytest.fixture(scope="module")
def profile_path(tmp_path_factory):
    return make_profile(str(tmp_path_factory.mktemp("serve-profiles")))


class TestEngineSharing:
    def test_concurrent_sessions_match_stdio(self, profile_path):
        script = sequential_script(analyst_script(max_steps=8))
        reference = stdio_reference_digest(profile_path, script)
        report = run_sessions(profile_path, script)
        assert report.errors == 0
        assert report.denied == 0
        assert len(set(report.digests)) == 1
        assert set(report.digests) == {reference}

    def test_shared_engine_cache_absorbs_the_fleet(self, profile_path):
        script = sequential_script(analyst_script(max_steps=8))
        before = get_engine().stats()["hits"]
        report = run_sessions(profile_path, script)
        assert report.errors == 0
        # Every session re-renders the same profile: all but the first
        # computation of each (digest-keyed) view hits the shared cache.
        assert get_engine().stats()["hits"] > before

    def test_repeat_run_is_stable(self, profile_path):
        script = sequential_script(analyst_script(max_steps=6))
        first = run_sessions(profile_path, script, sessions=4)
        second = run_sessions(profile_path, script, sessions=4)
        assert set(first.digests) == set(second.digests)


class TestStoreSharing:
    @pytest.fixture(scope="class")
    def store_root(self, tmp_path_factory, profile_path):
        """A store populated once, then read by every session."""
        from repro.profilers.workloads import spark_profile

        base = tmp_path_factory.mktemp("serve-store")
        root = str(base / "store")
        session = ViewerSession()
        for i in (1, 2, 3):
            path = str(base / ("p%d.ezvw" % i))
            profile = spark_profile(seed=i)
            profile.meta.time_nanos = 1_700_000_000_000_000_000 + i
            dump(profile, path)
            response = session.handle(pvp.Request(
                method="store/ingest", id=i,
                params={"store": root, "path": path, "service": "api",
                        "labels": {"run": str(i)}}))
            assert response.ok, response.error
        return root

    def test_concurrent_store_reads_match_stdio(self, profile_path,
                                                store_root):
        script = [{
            "step": "store_reads", "burst": False,
            "requests": [
                ("store/query", {"store": store_root,
                                 "query": "service=api"}),
                ("view/openQuery", {"store": store_root,
                                    "query": "service=api"}),
                ("store/query", {"store": store_root, "query": "limit=2"}),
            ],
        }]
        reference = stdio_reference_digest(profile_path, script)
        report = run_sessions(profile_path, script, sessions=6)
        assert report.errors == 0
        assert len(set(report.digests)) == 1
        assert set(report.digests) == {reference}


class TestBurstNondeterminismIsContained:
    def test_burst_cancellations_only_hit_supersedable_requests(
            self, profile_path):
        # Bursty hovers may or may not be cancelled (timing), but no
        # non-burst request may ever be: completed + cancelled must
        # account for every request, with zero errors.
        script = analyst_script(max_steps=8)
        report = run_sessions(profile_path, script)
        assert report.errors == 0
        assert report.denied == 0
        assert report.completed + report.cancelled == report.requests

    def test_cancellation_fires_under_narrow_pool(self, profile_path):
        async def main():
            server = PVPServer(
                ServeConfig(max_session_queue=64, workers=2),
                log=io.StringIO())
            await server.start()
            try:
                return await run_load(
                    "127.0.0.1", server.port, 16, profile_path,
                    script=analyst_script(max_steps=8))
            finally:
                await server.stop()

        report = asyncio.run(main())
        assert report.errors == 0
        assert report.burst_requests > 0
        assert report.cancelled > 0  # supersession actually fired
