"""Tests for metric descriptors and schemas."""

import pytest

from repro.core.metric import Aggregation, Metric, MetricSchema
from repro.errors import SchemaError


class TestAggregation:
    def test_sum(self):
        assert Aggregation.SUM.combine([1.0, 2.0, 3.0]) == 6.0

    def test_min_max(self):
        assert Aggregation.MIN.combine([3.0, 1.0, 2.0]) == 1.0
        assert Aggregation.MAX.combine([3.0, 1.0, 2.0]) == 3.0

    def test_mean(self):
        assert Aggregation.MEAN.combine([2.0, 4.0]) == 3.0

    def test_last(self):
        assert Aggregation.LAST.combine([1.0, 9.0]) == 9.0

    def test_empty_is_zero(self):
        for agg in Aggregation:
            assert agg.combine([]) == 0.0


class TestMetricFormatting:
    def test_bytes_scaling(self):
        metric = Metric("mem", unit="bytes")
        assert metric.format_value(512) == "512 B"
        assert metric.format_value(2048) == "2.00 KiB"
        assert metric.format_value(3 * 1024 ** 2) == "3.00 MiB"
        assert metric.format_value(5 * 1024 ** 3) == "5.00 GiB"

    def test_time_scaling(self):
        metric = Metric("t", unit="nanoseconds")
        assert metric.format_value(500) == "500 ns"
        assert metric.format_value(2_500) == "2.50 us"
        assert metric.format_value(3_000_000) == "3.00 ms"
        assert metric.format_value(7_200_000_000) == "7.20 s"

    def test_plain_unit(self):
        assert Metric("n", unit="count").format_value(1234) == "1,234 count"

    def test_unitless(self):
        assert Metric("x").format_value(3.5) == "3.50"


class TestMetricSchema:
    def test_add_returns_index(self):
        schema = MetricSchema()
        assert schema.add(Metric("a")) == 0
        assert schema.add(Metric("b")) == 1

    def test_re_add_same_descriptor_is_idempotent(self):
        schema = MetricSchema()
        index = schema.add(Metric("a", unit="x"))
        assert schema.add(Metric("a", unit="x")) == index
        assert len(schema) == 1

    def test_conflicting_descriptor_rejected(self):
        schema = MetricSchema([Metric("a", unit="x")])
        with pytest.raises(SchemaError):
            schema.add(Metric("a", unit="y"))

    def test_index_of_unknown_raises(self):
        schema = MetricSchema([Metric("a")])
        with pytest.raises(SchemaError, match="unknown metric"):
            schema.index_of("zzz")

    def test_get_returns_none_for_unknown(self):
        assert MetricSchema().get("a") is None

    def test_names_order(self):
        schema = MetricSchema([Metric("b"), Metric("a")])
        assert schema.names() == ["b", "a"]

    def test_contains(self):
        schema = MetricSchema([Metric("a")])
        assert "a" in schema and "b" not in schema

    def test_copy_is_independent(self):
        schema = MetricSchema([Metric("a")])
        clone = schema.copy()
        clone.add(Metric("b"))
        assert len(schema) == 1 and len(clone) == 2

    def test_union_merges_new_columns(self):
        left = MetricSchema([Metric("a", unit="x")])
        right = MetricSchema([Metric("a", unit="x"), Metric("b")])
        merged = left.union(right)
        assert merged.names() == ["a", "b"]

    def test_union_conflicting_units_rejected(self):
        left = MetricSchema([Metric("a", unit="x")])
        right = MetricSchema([Metric("a", unit="y")])
        with pytest.raises(SchemaError):
            left.union(right)

    def test_derive_adds_column(self):
        schema = MetricSchema([Metric("a")])
        index = schema.derive("a_per_k", unit="ratio")
        assert schema[index].name == "a_per_k"
