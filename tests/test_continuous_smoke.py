"""CI smoke: the whole continuous loop over real HTTP, in one process.

An agent captures a checkout service on a cadence (three healthy ticks,
then a deploy that slows ``parse_payload`` 4x), ships to a collector
over HTTP, the collector ingests into a throwaway store, and the watch
diffs the two windows and names the slowed frame.  When
``EASYVIEW_SMOKE_OUT`` is set the watch report is written there so the
CI job can upload it as an artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.continuous import CaptureAgent, Collector, DiskSpool, RegressionWatch
from repro.continuous.agent import HTTPShipper, RetryPolicy
from repro.profilers.workloads import checkout_service_profile
from repro.store import ProfileStore

pytestmark = pytest.mark.continuous_smoke

SECOND = 10 ** 9


class SlowdownSource:
    """Three healthy captures, then the regression ships to prod.

    Advances the shared fake clock one second per capture so the
    envelopes land in two clean, adjacent time windows.
    """

    def __init__(self, clock):
        self.clock = clock
        self.ticks = 0

    def __call__(self):
        slow = self.ticks >= 3
        profile = checkout_service_profile(slow=slow, scale=3,
                                           seed=50 + self.ticks % 3)
        self.ticks += 1
        self.clock["now"] += 1.0
        return profile


def counter_value(name):
    instrument = obs.get_registry().get(name)
    return instrument.value if instrument is not None else 0


def test_continuous_loop_end_to_end(tmp_path):
    clock = {"now": 0.0}
    before = {name: counter_value(name)
              for name in ("continuous.agent.shipped",
                           "continuous.collector.uploads",
                           "continuous.watch.ticks")}

    store = ProfileStore(str(tmp_path / "store"), clock=lambda: 7 * SECOND)
    with Collector(store, port=0) as collector:
        agent = CaptureAgent(
            SlowdownSource(clock),
            HTTPShipper(collector.url, timeout=5.0),
            service="checkout", host="smoke",
            spool=DiskSpool(str(tmp_path / "spool")),
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            clock=lambda: clock["now"], sleep=lambda s: None)
        results = agent.run(6)

    assert all(r and r["status"] == "stored" for r in results), results
    assert len(store.select("service=checkout")) == 6

    watch = RegressionWatch(store, query="service=checkout type=cpu",
                            window="3s", baseline="3s")
    report = watch.tick(now_nanos=6 * SECOND)

    assert report.current_captures == 3
    assert report.baseline_captures == 3
    assert report.has_regressions
    top = report.regressions[0]
    assert top.path.endswith("parse_payload")
    assert top.ratio == pytest.approx(4.0, rel=1e-6)

    # Every stage of the loop left a pulse in the process metrics.
    assert counter_value("continuous.agent.shipped") \
        >= before["continuous.agent.shipped"] + 6
    assert counter_value("continuous.collector.uploads") \
        >= before["continuous.collector.uploads"] + 6
    assert counter_value("continuous.watch.ticks") \
        >= before["continuous.watch.ticks"] + 1

    out_path = os.environ.get("EASYVIEW_SMOKE_OUT")
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(report.to_json())
        with open(out_path) as fh:
            assert json.load(fh)["regressions"]
