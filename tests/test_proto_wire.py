"""Tests for the protobuf wire-format codec."""

import pytest
from hypothesis import given, strategies as st

from repro.proto import wire


class TestVarint:
    def test_zero_is_one_byte(self):
        assert wire.encode_varint(0) == b"\x00"

    def test_small_values_single_byte(self):
        for value in (1, 42, 127):
            assert wire.encode_varint(value) == bytes([value])

    def test_128_spills_to_two_bytes(self):
        assert wire.encode_varint(128) == b"\x80\x01"

    def test_known_vector_300(self):
        # The canonical example from the protobuf encoding docs.
        assert wire.encode_varint(300) == b"\xac\x02"

    def test_max_uint64(self):
        value = (1 << 64) - 1
        encoded = wire.encode_varint(value)
        assert len(encoded) == 10
        assert wire.decode_varint(encoded)[0] == value

    def test_negative_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_varint(-1)

    def test_oversized_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_varint(1 << 64)

    def test_truncated_decode_raises(self):
        with pytest.raises(wire.WireError):
            wire.decode_varint(b"\x80")

    def test_overlong_decode_raises(self):
        with pytest.raises(wire.WireError):
            wire.decode_varint(b"\x80" * 10 + b"\x01")

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        encoded = wire.encode_varint(value)
        decoded, pos = wire.decode_varint(encoded)
        assert decoded == value
        assert pos == len(encoded)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_roundtrip(self, value):
        encoded = wire.encode_signed_varint(value)
        decoded, _ = wire.decode_signed_varint(encoded)
        assert decoded == value

    def test_negative_int64_is_ten_bytes(self):
        # proto3 int64 sign-extends negatives: always 10 bytes on the wire.
        assert len(wire.encode_signed_varint(-1)) == 10


class TestZigZag:
    @pytest.mark.parametrize("value,encoded", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294),
    ])
    def test_known_vectors(self, value, encoded):
        assert wire.zigzag_encode(value) == encoded
        assert wire.zigzag_decode(encoded) == value

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        assert wire.zigzag_decode(wire.zigzag_encode(value)) == value

    def test_out_of_range_rejected(self):
        with pytest.raises(wire.WireError):
            wire.zigzag_encode(1 << 63)


class TestTags:
    def test_tag_layout(self):
        # field 1, varint → key 0x08.
        assert wire.encode_tag(1, wire.WIRETYPE_VARINT) == b"\x08"
        # field 2, length-delimited → key 0x12.
        assert wire.encode_tag(2, wire.WIRETYPE_LENGTH_DELIMITED) == b"\x12"

    def test_tag_roundtrip(self):
        data = wire.encode_tag(150, wire.WIRETYPE_FIXED64)
        field, wtype, pos = wire.decode_tag(data, 0)
        assert (field, wtype) == (150, wire.WIRETYPE_FIXED64)
        assert pos == len(data)

    def test_field_zero_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_tag(0, wire.WIRETYPE_VARINT)
        with pytest.raises(wire.WireError):
            wire.decode_tag(b"\x00", 0)

    def test_group_wire_type_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_tag(1, wire.WIRETYPE_START_GROUP)


class TestFixedAndBytes:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip(self, value):
        encoded = wire.encode_double(value)
        decoded, _ = wire.decode_double(encoded, 0)
        assert decoded == value

    def test_fixed64_roundtrip(self):
        encoded = wire.encode_fixed64(0xDEADBEEFCAFEBABE)
        assert wire.decode_fixed64(encoded, 0)[0] == 0xDEADBEEFCAFEBABE

    def test_fixed32_roundtrip(self):
        encoded = wire.encode_fixed32(0xDEADBEEF)
        assert wire.decode_fixed32(encoded, 0)[0] == 0xDEADBEEF

    def test_truncated_fixed_raises(self):
        with pytest.raises(wire.WireError):
            wire.decode_fixed64(b"\x01\x02", 0)

    @given(st.binary(max_size=512))
    def test_bytes_roundtrip(self, payload):
        encoded = wire.encode_bytes(payload)
        decoded, pos = wire.decode_bytes(encoded, 0)
        assert decoded == payload
        assert pos == len(encoded)

    def test_overrunning_length_raises(self):
        with pytest.raises(wire.WireError):
            wire.decode_bytes(b"\x05abc", 0)


class TestPacked:
    @given(st.lists(st.integers(min_value=-(1 << 63),
                                max_value=(1 << 63) - 1), max_size=50))
    def test_packed_roundtrip(self, values):
        payload, pos = wire.decode_bytes(wire.encode_packed_varints(values), 0)
        assert wire.decode_packed_varints(payload) == values


class TestIterFields:
    def test_mixed_message(self):
        writer = (wire.Writer()
                  .varint(1, 150)
                  .string(2, "hello")
                  .double(3, 2.5)
                  .bytes(4, b"\x00\x01"))
        fields = list(wire.iter_fields(writer.getvalue()))
        numbers = [f[0] for f in fields]
        assert numbers == [1, 2, 3, 4]
        assert fields[1][2] == b"hello"

    def test_defaults_omitted(self):
        writer = wire.Writer().varint(1, 0).string(2, "").double(3, 0.0)
        assert writer.getvalue() == b""

    def test_negative_zero_double_is_present(self):
        # Regression: ``value or emit_defaults`` treated -0.0 as the proto3
        # default (it is falsy) and dropped it; only the exact +0.0 bit
        # pattern is absent from the wire.
        import math
        import struct
        data = wire.Writer().double(1, -0.0).getvalue()
        assert data != b""
        (num, wtype, raw) = next(iter(wire.iter_fields(data)))
        assert (num, wtype) == (1, wire.WIRETYPE_FIXED64)
        decoded = struct.unpack("<d", struct.pack("<Q", raw))[0]
        assert math.copysign(1.0, decoded) == -1.0

    @given(st.floats(allow_nan=False, allow_infinity=True, width=64))
    def test_double_presence_matches_bit_pattern(self, value):
        # A double is omitted iff it is bit-identical to +0.0; everything
        # else (including -0.0) round-trips through the wire exactly.
        import struct
        data = wire.Writer().double(5, value).getvalue()
        if struct.pack("<d", value) == struct.pack("<d", 0.0):
            assert data == b""
        else:
            fields = list(wire.iter_fields(data))
            assert len(fields) == 1
            decoded = struct.unpack("<d", struct.pack("<Q", fields[0][2]))[0]
            assert struct.pack("<d", decoded) == struct.pack("<d", value)

    def test_emit_defaults(self):
        writer = wire.Writer(emit_defaults=True).varint(1, 0)
        assert writer.getvalue() == b"\x08\x00"

    def test_skip_unknown_fields(self):
        data = (wire.Writer().varint(99, 7).string(1, "x")).getvalue()
        seen = {num: val for num, _, val in wire.iter_fields(data)}
        assert seen == {99: 7, 1: b"x"}

    def test_garbage_raises(self):
        with pytest.raises(wire.WireError):
            list(wire.iter_fields(b"\x0b\x01"))  # wire type 3 = group

    @given(st.binary(max_size=64))
    def test_fuzz_never_hangs(self, data):
        # Arbitrary bytes either parse or raise WireError — no crashes.
        try:
            list(wire.iter_fields(data))
        except wire.WireError:
            pass
