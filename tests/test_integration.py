"""Cross-module integration tests: full pipelines from raw profiler output
to rendered views and IDE actions."""

import pytest

from repro import ProfileBuilder, dumps, loads
from repro.analysis.diff import diff_profiles, summarize
from repro.analysis.formula import derive
from repro.analysis.leak import detect_leaks
from repro.analysis.transform import bottom_up, top_down
from repro.converters import parse_bytes
from repro.converters.collapsed import serialize as to_collapsed
from repro.converters.pprof import to_pprof
from repro.ide.mock_ide import MockIDE
from repro.profilers.tracing import profile_callable
from repro.proto import pprof_pb
from repro.viz.flamegraph import CorrelatedView, FlameGraph
from repro.viz.html import HtmlReport


class TestFormatBridging:
    def test_pprof_to_native_to_collapsed(self, small_pprof_bytes):
        """pprof binary → EasyView model → native bytes → folded text."""
        profile = parse_bytes(small_pprof_bytes, format="pprof")
        native = dumps(profile)
        restored = loads(native)
        folded = to_collapsed(restored, metric="samples")
        reparsed = parse_bytes(folded.encode(), format="collapsed")
        assert reparsed.total("samples") == restored.total("samples")

    def test_native_to_pprof_and_back(self, simple_profile):
        """EasyView model → pprof binary → EasyView model."""
        data = pprof_pb.dumps(to_pprof(simple_profile))
        back = parse_bytes(data, format="pprof")
        assert back.total("cpu") == simple_profile.total("cpu")
        bu = bottom_up(back)
        inner = [n for n in bu.root.children.values()
                 if n.frame.name == "inner"]
        assert inner and inner[0].inclusive[0] == 700.0


class TestSelfProfilingPipeline:
    def test_profile_python_render_and_link(self):
        """Profile real Python code, render it, and code-link a frame."""

        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        _, profile = profile_callable(fib, 12)
        # Serialize through the native format like the real workflow would.
        profile = loads(dumps(profile))
        graph = FlameGraph.top_down(profile, metric="wall_time")
        svg = graph.to_svg()
        assert "fib" in svg
        # Recursion collapses cleanly in analysis.
        from repro.analysis.prune import collapse_recursion
        from repro.analysis.query import search
        collapsed = collapse_recursion(graph.tree)
        assert len(search(collapsed, "fib")) <= len(search(graph.tree, "fib"))
        # And the IDE session can code-link the frame to this test file.
        ide = MockIDE()
        opened = ide.session.open(profile)
        tree = ide.session.view(opened.id, "top_down")
        from repro.analysis.query import search
        fib_node = search(tree, "fib")[0]   # qualname includes the class
        link = ide.session.select(opened.id, fib_node)
        assert link is not None
        assert link.file.endswith("test_integration.py")


class TestCaseStudyPipelines:
    def test_memory_leak_study_end_to_end(self, grpc_profile):
        """Fig. 4 flow: aggregate snapshots → histogram → leak verdicts →
        code link to the leaky allocation site."""
        verdicts = detect_leaks(grpc_profile, "inuse_bytes", min_peak=1.0)
        leaky = [v for v in verdicts if v.suspicious]
        assert leaky
        ide = MockIDE()
        opened = ide.session.open(grpc_profile)
        tree = ide.session.view(opened.id, "top_down")
        target = tree.find_by_name(leaky[0].context.frame.name)[0]
        link = ide.session.select(opened.id, target)
        assert link is not None and link.line > 0

    def test_reuse_study_end_to_end(self, lulesh_reuse):
        """Fig. 7 flow: correlated panes → fusion guidance."""
        view = CorrelatedView(lulesh_reuse)
        allocations = view.allocations()
        assert allocations
        uses = view.select_allocation(allocations[0][0])
        assert uses
        reuses = view.select_use(uses[0][0])
        assert reuses
        guidance = view.guidance()
        assert any("fuse" in line for line in guidance)
        text = view.render_text()
        assert "allocations" in text and "▶" in text

    def test_spark_diff_study_end_to_end(self, spark_pair):
        """Fig. 3 flow: differential flame graph with tags + HTML export."""
        rdd, sql = spark_pair
        graph = FlameGraph.differential(rdd, sql)
        assert graph.is_differential
        svg = graph.to_svg()
        assert "Differential" in svg
        tags = summarize(graph.tree)
        assert tags.get("A") and tags.get("D")
        report = HtmlReport("spark rdd vs sql")
        report.add_flamegraph(graph)
        assert "<svg" in report.render()

    def test_derived_metric_on_aggregate_view(self, simple_profile):
        """§V-B flow: aggregate two runs, derive a per-run-mean ratio."""
        from repro.analysis.aggregate import aggregate_profiles
        tree = aggregate_profiles([simple_profile, simple_profile])
        index = derive(tree, "cpu_spread", "cpu:max - cpu:min")
        assert tree.root.inclusive[index] == 0.0  # identical runs

    def test_validation_after_every_converter(self, small_pprof_bytes):
        from repro.builder import validate
        profile = parse_bytes(small_pprof_bytes)
        assert validate(profile).ok
