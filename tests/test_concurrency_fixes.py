"""Regression tests for the races SelfCheck's first run over ``src/``
surfaced (and this change fixed): unguarded counter bumps in the worker
pool, dirty metric/cache/intern-pool reads, and the store's
flush-vs-query lock discipline.

Each test hammers the fixed path from many threads and asserts the
invariant the original code could violate.  They are deterministic
passes for correct code; under the old code they were flaky by design.
"""

import threading

from repro.core.frame import intern_frame, intern_pool_size
from repro.engine.cache import LRUCache
from repro.engine.parallel import WorkerPool
from repro.obs.metrics import Counter, Histogram, MetricsRegistry


def hammer(worker, threads=8):
    """Run ``worker(index)`` concurrently on a start barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=wrapped, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestWorkerPoolCounters:
    def test_inline_batches_counted_exactly(self):
        pool = WorkerPool(max_workers=1)  # disabled: every batch inline
        rounds = 200

        def worker(_):
            for _ in range(rounds):
                pool.map(lambda x: x, [1])

        hammer(worker)
        assert pool.to_dict()["inlineBatches"] == 8 * rounds

    def test_parallel_batches_counted_exactly(self):
        pool = WorkerPool(max_workers=4)
        big = list(range(64))  # above MIN_PARALLEL_ITEMS
        rounds = 25

        def worker(_):
            for _ in range(rounds):
                assert pool.map(lambda x: x + 1, big) \
                    == [x + 1 for x in big]

        hammer(worker, threads=4)
        stats = pool.to_dict()
        assert stats["parallelBatches"] == 4 * rounds
        pool.shutdown()


class TestMetricsUnderContention:
    def test_counter_increments_are_not_lost(self):
        counter = Counter("hits")
        rounds = 2000

        def worker(_):
            for _ in range(rounds):
                counter.inc()

        hammer(worker)
        assert counter.value == 8 * rounds

    def test_histogram_mean_snapshot_is_consistent(self):
        histogram = Histogram("latency")
        stop = threading.Event()
        seen_bad_mean = []

        def reader():
            while not stop.is_set():
                mean = histogram.mean
                # Every observation is 5.0, so any consistent
                # (sum, count) snapshot yields exactly 5.0 (or 0.0
                # before the first record).
                if mean not in (0.0, 5.0):
                    seen_bad_mean.append(mean)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            hammer(lambda _: [histogram.observe(5.0)
                              for _ in range(2000)])
        finally:
            stop.set()
            thread.join()
        assert seen_bad_mean == []
        assert histogram.count == 8 * 2000

    def test_registry_get_during_concurrent_registration(self):
        registry = MetricsRegistry()

        def worker(index):
            for i in range(300):
                registry.counter("c.%d.%d" % (index, i)).inc()
                assert registry.get("c.%d.%d" % (index, i)) is not None

        hammer(worker)


class TestStoreConcurrency:
    def test_concurrent_ingest_query_and_stats(self, tmp_path):
        from repro import ProfileBuilder
        from repro.engine import AnalysisEngine
        from repro.store import ProfileStore

        def build(scale):
            builder = ProfileBuilder(tool="test")
            cpu = builder.metric("cpu", unit="nanoseconds")
            builder.sample([("main", "a.c", 1), ("work", "a.c", 2)],
                           {cpu: 100 * scale})
            return builder.build()

        store = ProfileStore(str(tmp_path / "store"),
                             engine=AnalysisEngine(), fsync=False,
                             flush_records=5)
        try:
            store.ingest(build(1), service="svc")

            def worker(index):
                # Writers keep flushing (flush_records=5) while readers
                # query and take stats snapshots: the old code deadlocked
                # on reentrant flush or tore the stats snapshot.
                for i in range(10):
                    store.ingest(build(index * 10 + i), service="svc")
                    result = store.query("service=svc")
                    assert result.count >= 1
                    assert result.tree is not None
                    snapshot = store.stats()
                    assert snapshot["records"] >= 1

            hammer(worker, threads=4)
            assert store.query("service=svc").count == 41
            assert store.verify() == []
        finally:
            store.close()


class TestCacheAndInternPool:
    def test_len_is_safe_during_concurrent_stores(self):
        cache = LRUCache(capacity=64)
        stop = threading.Event()
        sizes = []

        def reader():
            while not stop.is_set():
                sizes.append(len(cache))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            hammer(lambda index: [cache.store((index, i), i)
                                  for i in range(2000)])
        finally:
            stop.set()
            thread.join()
        assert all(0 <= size <= 64 for size in sizes)
        assert len(cache) <= 64

    def test_intern_pool_size_during_concurrent_interning(self):
        before = intern_pool_size()

        def worker(index):
            for i in range(200):
                frame = intern_frame("fn_%d_%d" % (index, i), "f.py", i)
                assert frame is intern_frame("fn_%d_%d" % (index, i),
                                             "f.py", i)
                assert intern_pool_size() >= before

        hammer(worker)
        assert intern_pool_size() >= before + 8 * 200
