"""Tests for the text-format converters: collapsed, perf, gprof, TAU."""

import pytest

from repro.converters.collapsed import parse as parse_collapsed, serialize
from repro.converters.gprof import parse as parse_gprof
from repro.converters.perf_script import parse as parse_perf
from repro.converters.tau import parse as parse_tau
from repro.errors import FormatError


class TestCollapsed:
    def test_basic_stacks(self):
        profile = parse_collapsed(b"main;compute;hot 400\nmain;io 100\n")
        assert profile.total("samples") == 500
        hot = profile.find_by_name("hot")[0]
        assert [f.name for f in hot.call_path()] == ["main", "compute",
                                                     "hot"]

    def test_duplicate_stacks_accumulate(self):
        profile = parse_collapsed(b"a;b 10\na;b 5\n")
        assert profile.find_by_name("b")[0].exclusive(0) == 15

    def test_comments_and_blanks_skipped(self):
        profile = parse_collapsed(b"# comment\n\na;b 3\n")
        assert profile.total("samples") == 3

    def test_module_backtick_syntax(self):
        profile = parse_collapsed(b"libc`malloc;libc`brk 7\n")
        brk = profile.find_by_name("brk")[0]
        assert brk.frame.module == "libc"

    def test_file_line_suffix_syntax(self):
        profile = parse_collapsed(b"main (app.py:12);f (app.py:30) 2\n")
        f = profile.find_by_name("f")[0]
        assert f.frame.file == "app.py" and f.frame.line == 30

    def test_fractional_counts(self):
        profile = parse_collapsed(b"a;b 1.5\n")
        assert profile.total("samples") == 1.5

    def test_missing_count_rejected(self):
        with pytest.raises(FormatError, match="non-numeric|no sample"):
            parse_collapsed(b"just;a;stack\n")

    def test_empty_input_rejected(self):
        with pytest.raises(FormatError):
            parse_collapsed(b"# nothing here\n")

    def test_serialize_roundtrip(self, simple_profile):
        text = serialize(simple_profile)
        back = parse_collapsed(text.encode())
        # Totals survive (attribution is name-only in folded format).
        assert back.total("samples") == 1000.0


class TestPerfScript:
    SAMPLE = (b"prog 1234 100.5: 250000 cycles:\n"
              b"\tffffffff81a0 do_syscall_64 ([kernel.kallsyms])\n"
              b"\t000055d2b31 compute+0x1f (/usr/bin/prog)\n"
              b"\t000055d2a10 main+0x40 (/usr/bin/prog)\n"
              b"\n"
              b"prog 1234 100.6: 250000 cycles:\n"
              b"\t000055d2b31 compute+0x1f (/usr/bin/prog)\n"
              b"\t000055d2a10 main+0x40 (/usr/bin/prog)\n")

    def test_stacks_and_periods(self):
        profile = parse_perf(self.SAMPLE)
        assert profile.total("cycles") == 500000
        syscall = profile.find_by_name("do_syscall_64")[0]
        path = [f.name for f in syscall.call_path()]
        assert path == ["main", "compute", "do_syscall_64"]

    def test_module_stripped_to_basename(self):
        profile = parse_perf(self.SAMPLE)
        main = profile.find_by_name("main")[0]
        assert main.frame.module == "prog"

    def test_multiple_events_become_columns(self):
        data = (b"p 1 1.0: 100 cycles:\n\tdead main (/bin/p)\n\n"
                b"p 1 1.1: 7 cache-misses:\n\tdead main (/bin/p)\n")
        profile = parse_perf(data)
        assert set(profile.schema.names()) == {"cycles", "cache-misses"}
        assert profile.total("cache-misses") == 7

    def test_unknown_symbol_uses_address(self):
        data = b"p 1 1.0: 5 cycles:\n\tdeadbeef [unknown] (/bin/p)\n"
        profile = parse_perf(data)
        assert profile.find_by_name("0xdeadbeef")

    def test_no_samples_rejected(self):
        with pytest.raises(FormatError):
            parse_perf(b"random text that is not perf output\n")


class TestGprof:
    REPORT = (b"Flat profile:\n\n"
              b"Each sample counts as 0.01 seconds.\n"
              b"  %   cumulative   self              self     total\n"
              b" time   seconds   seconds    calls  ms/call  ms/call  name\n"
              b" 60.00      0.06     0.06     100     0.60     0.60  hot\n"
              b" 40.00      0.10     0.04      10     4.00     4.00  warm\n"
              b"\n"
              b"Call graph\n\n"
              b"index % time    self  children    called     name\n"
              b"                0.06    0.00     100/100         main [2]\n"
              b"[1]     60.0    0.06    0.00     100         hot [1]\n"
              b"-----------------------------------------------\n")

    def test_totals_not_double_counted(self):
        # hot's self time appears in both the flat section and the call
        # graph's caller attribution; it must be counted exactly once.
        profile = parse_gprof(self.REPORT)
        assert profile.total("self_time") == pytest.approx(0.10)

    def test_call_graph_two_level_paths(self):
        profile = parse_gprof(self.REPORT)
        nested = [n for n in profile.find_by_name("hot") if n.depth() == 2]
        assert nested
        assert nested[0].parent.frame.name == "main"
        assert nested[0].exclusive(0) == pytest.approx(0.06)

    def test_unattributed_functions_stay_flat(self):
        profile = parse_gprof(self.REPORT)
        warm = profile.find_by_name("warm")
        assert len(warm) == 1 and warm[0].depth() == 1
        assert warm[0].exclusive(0) == pytest.approx(0.04)

    def test_missing_flat_section_rejected(self):
        with pytest.raises(FormatError):
            parse_gprof(b"no gprof content")


class TestTau:
    PROFILE = (b"3 templated_functions_MULTI_TIME\n"
               b"# Name Calls Subrs Excl Incl ProfileCalls\n"
               b'"main" 1 2 1000 5000 0\n'
               b'"main => compute" 10 5 3000 4000 0\n'
               b'"main => compute => kernel" 50 0 1000 1000 0\n')

    def test_callpath_timers(self):
        profile = parse_tau(self.PROFILE)
        kernel = profile.find_by_name("kernel")[0]
        assert [f.name for f in kernel.call_path()] == \
            ["main", "compute", "kernel"]
        assert kernel.exclusive(0) == 1000

    def test_total_counts_each_exclusive_once(self):
        profile = parse_tau(self.PROFILE)
        assert profile.total("templated_functions_MULTI_TIME") == 5000

    def test_flat_leaf_timer_skipped_when_callpath_exists(self):
        data = (b"2 TIME\n"
                b'"compute" 10 0 3000 3000 0\n'
                b'"main => compute" 10 0 3000 3000 0\n')
        profile = parse_tau(data)
        assert profile.total("TIME") == 3000

    def test_source_location_syntax(self):
        data = (b"1 TIME\n"
                b'"work [{src/app.c} {42,1}-{60,1}]" 1 0 100 100 0\n')
        profile = parse_tau(data)
        work = profile.find_by_name("work")[0]
        assert work.frame.file == "src/app.c"
        assert work.frame.line == 42

    def test_calls_column(self):
        profile = parse_tau(self.PROFILE)
        kernel = profile.find_by_name("kernel")[0]
        assert kernel.exclusive(1) == 50

    def test_bad_header_rejected(self):
        with pytest.raises(FormatError):
            parse_tau(b"not a tau profile\n")

    def test_no_rows_rejected(self):
        with pytest.raises(FormatError):
            parse_tau(b"1 TIME\n# Name Calls\n")


class TestCallgrind:
    SAMPLE = (b"# callgrind format\n"
              b"version: 1\n"
              b"creator: callgrind-3.19\n"
              b"events: Ir Dr\n"
              b"\n"
              b"ob=(1) /usr/bin/app\n"
              b"fl=(1) app.c\n"
              b"fn=(1) main\n"
              b"10 100 20\n"
              b"+2 50 5\n"
              b"cfn=(2) compute\n"
              b"calls=3 20\n"
              b"12 900 80\n"
              b"\n"
              b"fn=(2)\n"
              b"fl=(1)\n"
              b"20 800 70\n"
              b"* 100 10\n")

    def parse(self):
        from repro.converters.callgrind import parse as parse_callgrind
        return parse_callgrind(self.SAMPLE)

    def test_events_become_metrics(self):
        profile = self.parse()
        assert {"Ir", "Dr", "calls"} <= set(profile.schema.names())

    def test_self_costs_counted_once(self):
        profile = self.parse()
        # main: 100 + 50; compute: 800 + 100 — call-edge costs excluded.
        assert profile.total("Ir") == 1050.0
        assert profile.total("Dr") == 105.0

    def test_name_compression_resolves(self):
        profile = self.parse()
        assert profile.find_by_name("main")
        compute = profile.find_by_name("compute")
        # fn=(2) back-reference resolved to "compute".
        assert compute

    def test_subpositions(self):
        profile = self.parse()
        lines = {n.frame.line for n in profile.nodes()
                 if n.frame.name.startswith("line")}
        assert {10, 12, 20} <= lines   # +2 relative and * repeat handled

    def test_call_edges_give_bottom_up_answers(self):
        from repro.analysis.transform import bottom_up
        profile = self.parse()
        tree = bottom_up(profile)
        calls = profile.schema.index_of("calls")
        compute_entries = [n for n in tree.root.children.values()
                           if n.frame.name == "compute"]
        assert compute_entries
        callers = set()
        for entry in compute_entries:
            callers |= {c.frame.name for c in entry.children.values()}
        assert "main" in callers
        assert profile.total("calls") == 3.0

    def test_module_from_ob(self):
        profile = self.parse()
        main = profile.find_by_name("main")[0]
        assert main.frame.module == "app"

    def test_sniffed_from_registry(self):
        from repro.converters import parse_bytes
        assert parse_bytes(self.SAMPLE).meta.tool == "callgrind"

    def test_cost_before_fn_rejected(self):
        from repro.converters.callgrind import parse as parse_callgrind
        with pytest.raises(FormatError, match="before any fn="):
            parse_callgrind(b"events: Ir\n10 5\n")

    def test_dangling_backreference_rejected(self):
        from repro.converters.callgrind import parse as parse_callgrind
        with pytest.raises(FormatError, match="back-reference"):
            parse_callgrind(b"events: Ir\nfn=(7)\n10 5\n")

    def test_no_cost_lines_rejected(self):
        from repro.converters.callgrind import parse as parse_callgrind
        with pytest.raises(FormatError, match="no cost lines"):
            parse_callgrind(b"events: Ir\nfn=(1) main\n")
