"""Tests for the JSON-format converters: Chrome, speedscope, pyinstrument,
Scalene, Cloud Profiler — and the HPCToolkit XML converter."""

import json

import pytest

from repro.converters.chrome import parse as parse_chrome
from repro.converters.cloudprofiler import parse as parse_cloud, wrap
from repro.converters.hpctoolkit import parse as parse_hpct
from repro.converters.pyinstrument import parse as parse_pyinstrument
from repro.converters.scalene import parse as parse_scalene
from repro.converters.speedscope import parse as parse_speedscope
from repro.errors import FormatError
from repro.proto import pprof_pb


def as_bytes(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


class TestChrome:
    def cpuprofile(self):
        return {
            "nodes": [
                {"id": 1, "callFrame": {"functionName": "(root)",
                                        "url": "", "lineNumber": -1},
                 "children": [2]},
                {"id": 2, "callFrame": {"functionName": "main",
                                        "url": "http://x/app.js",
                                        "lineNumber": 9},
                 "children": [3]},
                {"id": 3, "callFrame": {"functionName": "work",
                                        "url": "http://x/app.js",
                                        "lineNumber": 20}},
            ],
            "samples": [3, 3, 2],
            "timeDeltas": [100, 120, 80],
            "startTime": 1000,
        }

    def test_samples_with_deltas(self):
        profile = parse_chrome(as_bytes(self.cpuprofile()))
        assert profile.total("samples") == 3
        assert profile.total("cpu_time") == (100 + 120 + 80) * 1000

    def test_root_frame_elided(self):
        profile = parse_chrome(as_bytes(self.cpuprofile()))
        assert not profile.find_by_name("(root)")
        work = profile.find_by_name("work")[0]
        assert [f.name for f in work.call_path()] == ["main", "work"]

    def test_v8_lines_converted_to_one_based(self):
        profile = parse_chrome(as_bytes(self.cpuprofile()))
        assert profile.find_by_name("main")[0].frame.line == 10

    def test_hit_counts_fallback(self):
        payload = self.cpuprofile()
        del payload["samples"], payload["timeDeltas"]
        payload["nodes"][2]["hitCount"] = 5
        profile = parse_chrome(as_bytes(payload))
        assert profile.total("samples") == 5

    def test_unknown_sample_node_rejected(self):
        payload = self.cpuprofile()
        payload["samples"] = [99]
        with pytest.raises(FormatError):
            parse_chrome(as_bytes(payload))

    def test_non_json_rejected(self):
        with pytest.raises(FormatError):
            parse_chrome(b"\x00\x01")


class TestSpeedscope:
    def sampled(self):
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": "main"},
                                  {"name": "work", "file": "a.py",
                                   "line": 3}]},
            "profiles": [{"type": "sampled", "name": "t0",
                          "unit": "milliseconds",
                          "samples": [[0], [0, 1], [0, 1]],
                          "weights": [1, 2, 3]}],
        }

    def test_sampled_profile(self):
        profile = parse_speedscope(as_bytes(self.sampled()))
        assert profile.total("weight") == 6
        work = profile.find_by_name("work")[0]
        assert work.exclusive(0) == 5
        assert work.frame.file == "a.py"

    def test_evented_profile(self):
        payload = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": "main"}, {"name": "f"}]},
            "profiles": [{"type": "evented", "name": "t0", "unit": "none",
                          "startValue": 0,
                          "events": [
                              {"type": "O", "frame": 0, "at": 0},
                              {"type": "O", "frame": 1, "at": 2},
                              {"type": "C", "frame": 1, "at": 7},
                              {"type": "C", "frame": 0, "at": 10},
                          ]}],
        }
        profile = parse_speedscope(as_bytes(payload))
        f = profile.find_by_name("f")[0]
        assert f.exclusive(0) == 5          # open 2 → close 7
        main = profile.find_by_name("main")[0]
        assert main.exclusive(0) == 5       # 0→2 plus 7→10

    def test_multiple_profiles_get_thread_contexts(self):
        payload = self.sampled()
        payload["profiles"].append(dict(payload["profiles"][0], name="t1"))
        profile = parse_speedscope(as_bytes(payload))
        threads = {n.frame.name for n in profile.root.children.values()}
        assert threads == {"t0", "t1"}

    def test_mismatched_close_rejected(self):
        payload = {
            "$schema": "speedscope", "shared": {"frames": [{"name": "a"},
                                                           {"name": "b"}]},
            "profiles": [{"type": "evented", "events": [
                {"type": "O", "frame": 0, "at": 0},
                {"type": "C", "frame": 1, "at": 1}]}],
        }
        with pytest.raises(FormatError, match="mismatched"):
            parse_speedscope(as_bytes(payload))

    def test_unclosed_frames_rejected(self):
        payload = {
            "$schema": "speedscope", "shared": {"frames": [{"name": "a"}]},
            "profiles": [{"type": "evented", "events": [
                {"type": "O", "frame": 0, "at": 0}]}],
        }
        with pytest.raises(FormatError, match="open frames"):
            parse_speedscope(as_bytes(payload))

    def test_missing_schema_rejected(self):
        with pytest.raises(FormatError):
            parse_speedscope(b"{}")


class TestPyinstrument:
    def test_self_time_attribution(self):
        payload = {"duration": 1.5, "root_frame": {
            "function": "main", "file_path": "m.py", "line_no": 1,
            "time": 1.5,
            "children": [{"function": "work", "file_path": "m.py",
                          "line_no": 9, "time": 1.0, "children": []}]}}
        profile = parse_pyinstrument(as_bytes(payload))
        main = profile.find_by_name("main")[0]
        assert main.exclusive(0) == pytest.approx(0.5e9)
        work = profile.find_by_name("work")[0]
        assert work.exclusive(0) == pytest.approx(1.0e9)
        assert profile.meta.duration_nanos == int(1.5e9)

    def test_missing_root_rejected(self):
        with pytest.raises(FormatError):
            parse_pyinstrument(b"{}")


class TestScalene:
    def test_line_granular_metrics(self):
        payload = {"elapsed_time_sec": 2.0, "files": {"app.py": {"lines": [
            {"lineno": 10, "function": "hot", "n_cpu_percent_python": 50.0,
             "n_cpu_percent_c": 10.0, "n_sys_percent": 5.0,
             "n_peak_mb": 12.0, "n_copy_mb_s": 1.0}]}}}
        profile = parse_scalene(as_bytes(payload))
        assert profile.total("cpu_python") == pytest.approx(1e9)
        assert profile.total("cpu_native") == pytest.approx(0.2e9)
        assert profile.total("memory_peak") == 12 * 1024 * 1024
        line = profile.find_by_name("line 10")[0]
        assert line.parent.frame.name == "hot"

    def test_zero_lines_skipped(self):
        payload = {"elapsed_time_sec": 1.0, "files": {"a.py": {"lines": [
            {"lineno": 1, "function": "f"}]}}}
        profile = parse_scalene(as_bytes(payload))
        assert profile.node_count() == 1  # nothing but the root

    def test_missing_files_rejected(self):
        with pytest.raises(FormatError):
            parse_scalene(b"{}")


class TestCloudProfiler:
    def test_envelope_unwrapped(self, small_pprof_bytes):
        envelope = wrap(small_pprof_bytes, profile_type="HEAP",
                        project_id="acme", target="api-server")
        profile = parse_cloud(envelope)
        assert profile.meta.tool == "cloud-profiler"
        assert profile.meta.attributes["profileType"] == "HEAP"
        assert profile.meta.attributes["target"] == "api-server"
        assert profile.node_count() > 100

    def test_missing_bytes_rejected(self):
        with pytest.raises(FormatError, match="profileBytes"):
            parse_cloud(b'{"profileType": "CPU"}')

    def test_bad_base64_rejected(self):
        with pytest.raises(FormatError, match="base64"):
            parse_cloud(b'{"profileBytes": "!!!not-base64!!!"}')


class TestHPCToolkit:
    XML = b"""<?xml version="1.0"?>
<HPCToolkitExperiment>
<SecCallPathProfile><SecHeader>
<MetricTable><Metric i="0" n="CPUTIME (usec):Sum (I)"/></MetricTable>
<FileTable><File i="1" n="lulesh.cc"/></FileTable>
<ProcedureTable><Procedure i="2" n="main"/><Procedure i="3" n="compute"/>
</ProcedureTable>
<LoadModuleTable><LoadModule i="4" n="/usr/bin/lulesh"/></LoadModuleTable>
</SecHeader>
<SecCallPathProfileData>
<PF n="2" f="1" l="10" lm="4"><M n="0" v="100"/>
 <C l="12"><PF n="3" f="1" l="30" lm="4"><M n="0" v="900"/>
   <L l="33"><S l="34"><M n="0" v="500"/></S></L>
 </PF></C>
</PF>
</SecCallPathProfileData></SecCallPathProfile></HPCToolkitExperiment>"""

    def test_procedure_frames(self):
        profile = parse_hpct(self.XML)
        compute = profile.find_by_name("compute")[0]
        assert [f.name for f in compute.call_path()] == ["main", "compute"]
        assert compute.frame.module == "lulesh"

    def test_loop_and_statement_scopes(self):
        from repro.core.frame import FrameKind
        profile = parse_hpct(self.XML)
        loops = [n for n in profile.nodes()
                 if n.frame.kind is FrameKind.LOOP]
        statements = [n for n in profile.nodes()
                      if n.frame.kind is FrameKind.INSTRUCTION]
        assert len(loops) == 1 and len(statements) == 1
        assert statements[0].exclusive(0) == 500.0

    def test_total(self):
        profile = parse_hpct(self.XML)
        assert profile.total("CPUTIME (usec):Sum (I)") == 1500.0

    def test_wrong_root_rejected(self):
        with pytest.raises(FormatError):
            parse_hpct(b"<NotAnExperiment/>")

    def test_no_metrics_rejected(self):
        with pytest.raises(FormatError):
            parse_hpct(b"<HPCToolkitExperiment><SecCallPathProfileData/>"
                       b"</HPCToolkitExperiment>")
