"""Tests for the calling context tree."""

from hypothesis import given, strategies as st

from repro.core.cct import CCT
from repro.core.frame import FrameKind, intern_frame


def frames(*names):
    return [intern_frame(name, "t.c", i + 1) for i, name in enumerate(names)]


class TestPrefixMerging:
    def test_shared_prefix_shares_nodes(self):
        tree = CCT()
        leaf1 = tree.add_path(frames("main", "a", "b"))
        leaf2 = tree.add_path(frames("main", "a", "c"))
        assert leaf1.parent is leaf2.parent
        # root + main + a + b + c
        assert tree.node_count() == 5

    def test_identical_paths_merge_completely(self):
        tree = CCT()
        leaf1 = tree.add_path(frames("main", "a"))
        leaf2 = tree.add_path(frames("main", "a"))
        assert leaf1 is leaf2
        assert tree.node_count() == 3

    def test_same_name_different_line_distinct(self):
        tree = CCT()
        tree.add_path([intern_frame("main", "t.c", 1),
                       intern_frame("f", "t.c", 5)])
        tree.add_path([intern_frame("main", "t.c", 1),
                       intern_frame("f", "t.c", 6)])
        assert tree.node_count() == 4  # two distinct f contexts

    @given(st.lists(st.lists(st.sampled_from("abcdef"), min_size=1,
                             max_size=6), min_size=1, max_size=30))
    def test_node_count_bounded_by_distinct_prefixes(self, paths):
        tree = CCT()
        for path in paths:
            tree.add_path([intern_frame(c) for c in path])
        prefixes = {tuple(path[:i + 1]) for path in paths
                    for i in range(len(path))}
        assert tree.node_count() == len(prefixes) + 1


class TestMetrics:
    def test_add_sample_accumulates_on_leaf(self):
        tree = CCT()
        tree.add_sample(frames("main", "f"), {0: 10.0})
        leaf = tree.add_sample(frames("main", "f"), {0: 5.0})
        assert leaf.exclusive(0) == 15.0
        assert leaf.parent.exclusive(0) == 0.0

    def test_set_value_overwrites(self):
        tree = CCT()
        leaf = tree.add_sample(frames("main"), {0: 10.0})
        leaf.set_value(0, 3.0)
        assert leaf.exclusive(0) == 3.0

    def test_missing_metric_is_zero(self):
        tree = CCT()
        leaf = tree.add_path(frames("main"))
        assert leaf.exclusive(7) == 0.0


class TestNavigation:
    def test_call_path_excludes_root(self):
        tree = CCT()
        leaf = tree.add_path(frames("main", "a", "b"))
        assert [f.name for f in leaf.call_path()] == ["main", "a", "b"]

    def test_depth(self):
        tree = CCT()
        leaf = tree.add_path(frames("main", "a", "b"))
        assert leaf.depth() == 3
        assert tree.root.depth() == 0

    def test_max_depth(self):
        tree = CCT()
        tree.add_path(frames("main", "a"))
        tree.add_path(frames("main", "a", "b", "c"))
        assert tree.max_depth() == 4

    def test_find_by_name(self):
        tree = CCT()
        tree.add_path(frames("main", "hot"))
        tree.add_path(frames("main", "other", "hot"))
        found = tree.find_by_name("hot")
        assert len(found) == 2

    def test_leaf_nodes(self):
        tree = CCT()
        tree.add_path(frames("main", "a"))
        tree.add_path(frames("main", "b"))
        leaves = {n.frame.name for n in tree.leaf_nodes()}
        assert leaves == {"a", "b"}

    def test_walk_visits_every_node_once(self):
        tree = CCT()
        tree.add_path(frames("main", "a", "b"))
        tree.add_path(frames("main", "c"))
        visited = list(tree.nodes())
        assert len(visited) == len({id(n) for n in visited}) == 5

    def test_sorted_children_deterministic(self):
        tree = CCT()
        tree.add_path(frames("main", "zeta"))
        tree.add_path(frames("main", "alpha"))
        main = tree.find_by_name("main")[0]
        names = [c.frame.name for c in main.sorted_children()]
        assert names == sorted(names)

    def test_clear_inclusive_cache(self):
        tree = CCT()
        leaf = tree.add_path(frames("main"))
        leaf.inclusive[0] = 42.0
        tree.clear_inclusive_cache()
        assert leaf.inclusive == {}

    def test_deep_path_no_recursion_error(self):
        tree = CCT()
        path = [intern_frame("f%d" % i) for i in range(5000)]
        leaf = tree.add_path(path)
        assert leaf.depth() == 5000
        assert tree.node_count() == 5001
