"""Unit tests for the ProfLint analyzers: one class per rule family."""

import math

import pytest

from repro.builder import ProfileBuilder
from repro.core.cct import CCTNode
from repro.core.frame import intern_frame
from repro.core.monitor import MonitoringPoint, PointKind
from repro.errors import Span
from repro.lint import (DEFAULT_CONFIG, LintConfig, Severity, all_rules,
                        get_rule, has_errors, lint_callback, lint_formula,
                        lint_pprof, lint_profile, lint_source,
                        sort_diagnostics, worst_severity)
from repro.proto import pprof_pb

import repro.sa  # noqa: F401 — registers the EV4xx "selfcheck" family

METRICS = ["cycles", "instructions", "cache misses", "bytes"]


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


class TestFormulaRules:
    def test_clean_formula_has_no_findings(self):
        assert lint_formula("cycles / instructions", metrics=METRICS) == []

    def test_ev100_parse_error_with_span(self):
        [diag] = lint_formula("cycles +", metrics=METRICS)
        assert diag.rule == "EV100"
        assert diag.severity is Severity.ERROR
        assert diag.span is not None

    def test_ev101_undefined_metric_carries_rule_id_and_span(self):
        # The ISSUE acceptance check: rule ID plus character span.
        [diag] = lint_formula("cycles / cyclez", metrics=METRICS)
        assert diag.rule == "EV101"
        assert diag.severity is Severity.ERROR
        assert diag.span == Span(9, 15)
        assert "cycles / cyclez"[diag.span.start:diag.span.end] == "cyclez"

    def test_ev101_skipped_without_metric_environment(self):
        assert lint_formula("anything_goes + 1", metrics=None) == []

    def test_ev101_accepts_inclusive_prefix_and_backquotes(self):
        assert lint_formula("inclusive.cycles + `cache misses`",
                            metrics=METRICS) == []

    def test_ev102_unknown_function(self):
        [diag] = lint_formula("frob(cycles)", metrics=METRICS)
        assert diag.rule == "EV102"
        assert diag.span.slice("frob(cycles)") == "frob(cycles)"

    def test_ev103_wrong_arity(self):
        [diag] = lint_formula("max(cycles)", metrics=METRICS)
        assert diag.rule == "EV103"

    def test_ev104_constant_subexpression(self):
        diags = lint_formula("cycles * (1000 / 8)", metrics=METRICS)
        [diag] = [d for d in diags if d.rule == "EV104"]
        assert "125" in diag.message
        assert diag.span.slice("cycles * (1000 / 8)") == "(1000 / 8)"

    def test_ev104_whole_constant_formula(self):
        diags = lint_formula("2 ^ 10", metrics=METRICS)
        assert rules_of(diags) == {"EV104"}
        assert "1024" in diags[0].message

    def test_ev104_not_raised_for_plain_literals(self):
        assert lint_formula("cycles * 2", metrics=METRICS) == []
        assert lint_formula("cycles + -3", metrics=METRICS) == []

    def test_ev105_constant_zero_division(self):
        diags = lint_formula("cycles / 0", metrics=METRICS)
        assert "EV105" in rules_of(diags)

    def test_ev105_modulo_zero(self):
        diags = lint_formula("cycles % 0", metrics=METRICS)
        assert "EV105" in rules_of(diags)

    def test_ev106_constant_if_condition(self):
        diags = lint_formula("if(1, cycles, instructions)", metrics=METRICS)
        [diag] = [d for d in diags if d.rule == "EV106"]
        assert "else" in diag.message  # cond truthy → else branch dead

    def test_ev107_out_of_range_profile_ref(self):
        [diag] = lint_formula("bytes@3 - bytes@1", metrics=METRICS,
                              profile_count=2)
        assert diag.rule == "EV107"
        assert diag.span.slice("bytes@3 - bytes@1") == "bytes@3"

    def test_ev107_in_range_refs_pass(self):
        assert lint_formula("bytes@2 - bytes@1", metrics=METRICS,
                            profile_count=2) == []


class TestCallbackRules:
    def test_clean_callback_has_no_findings(self):
        assert lint_source("def elide(node):\n"
                           "    return node.frame.name == 'idle'\n") == []

    def test_ev200_syntax_error(self):
        [diag] = lint_source("def elide(node) return False")
        assert diag.rule == "EV200"
        assert diag.span is not None

    def test_ev201_import(self):
        diags = lint_source("import os\n")
        assert rules_of(diags) == {"EV201"}

    def test_ev202_open_call_is_flagged(self):
        # The ISSUE acceptance check: a callback calling open().
        diags = lint_source("def remap(frame):\n"
                            "    return open('/etc/passwd').read()\n")
        assert "EV202" in rules_of(diags)

    def test_ev202_structural_not_substring(self):
        # `reopen(x)` contains "open(" but is a different callee.
        assert lint_source("def f(x):\n    return reopen(x)\n") == []

    def test_ev203_eval(self):
        diags = lint_source("lambda node: eval('1+1')")
        assert "EV203" in rules_of(diags)

    def test_ev204_nondeterminism_is_warning(self):
        [diag] = lint_source("lambda node: random.random()")
        assert diag.rule == "EV204"
        assert diag.severity is Severity.WARNING

    def test_ev205_mutating_parameter(self):
        diags = lint_source("def elide(n):\n    n.metrics.clear()\n")
        assert "EV205" in rules_of(diags)

    def test_ev205_assignment_into_shared_tree(self):
        diags = lint_source("tree.root.metrics[0] = 0\n")
        assert "EV205" in rules_of(diags)

    def test_ev206_dunder_attribute(self):
        diags = lint_source("lambda node: node.__class__")
        assert "EV206" in rules_of(diags)

    def test_lint_callback_accepts_function_objects(self):
        def bad_elide(node):
            return open("x")  # noqa: SIM115 — the point of the test

        diags = lint_callback(bad_elide)
        assert "EV202" in rules_of(diags)
        assert diags[0].subject == "bad_elide"


class TestProfileRules:
    def build(self):
        builder = ProfileBuilder(tool="t")
        cpu = builder.metric("cpu", unit="ns")
        node = builder.sample(["main", "work"], {cpu: 5.0})
        return builder, cpu, node

    def test_clean_profile_has_no_findings(self):
        builder, _, _ = self.build()
        assert lint_profile(builder.build()) == []

    def test_ev303_nan_metric(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        node.metrics[cpu] = float("nan")
        assert "EV303" in rules_of(lint_profile(profile))

    def test_ev304_negative_summed_metric(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        node.metrics[cpu] = -1.0
        diags = [d for d in lint_profile(profile) if d.rule == "EV304"]
        assert diags and diags[0].severity is Severity.WARNING

    def test_ev305_inclusive_smaller_than_exclusive(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        node.inclusive[cpu] = 1.0  # exclusive is 5.0
        assert "EV305" in rules_of(lint_profile(profile))

    def test_ev306_cct_cycle(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        node.children[profile.root.frame] = profile.root  # cycle
        profile.root.parent = node
        assert "EV306" in rules_of(lint_profile(profile))

    def test_ev307_broken_parent_link(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        node.parent = CCTNode(intern_frame("elsewhere"))
        assert "EV307" in rules_of(lint_profile(profile))

    def test_ev307_point_context_outside_tree(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        stray = CCTNode(intern_frame("stray"))
        profile.points.append(MonitoringPoint(kind=PointKind.PLAIN,
                                              contexts=[stray],
                                              values={cpu: 1.0}))
        assert "EV307" in rules_of(lint_profile(profile))

    def test_ev308_wrong_point_arity(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        profile.points.append(MonitoringPoint(kind=PointKind.USE_REUSE,
                                              contexts=[node],
                                              values={cpu: 1.0}))
        assert "EV308" in rules_of(lint_profile(profile))

    def test_ev309_unused_metric_is_info(self):
        builder, cpu, node = self.build()
        builder.metric("unused")
        profile = builder.build()
        diags = [d for d in lint_profile(profile) if d.rule == "EV309"]
        assert diags and diags[0].severity is Severity.INFO

    def test_ev310_out_of_schema_column(self):
        builder, cpu, node = self.build()
        profile = builder.build()
        node.metrics[9] = 1.0
        assert "EV310" in rules_of(lint_profile(profile))

    def test_ev312_negative_time_always_flagged(self):
        builder, _, _ = self.build()
        profile = builder.build()
        profile.meta.time_nanos = -5
        assert "EV312" in rules_of(lint_profile(profile))

    def test_ev312_negative_duration_always_flagged(self):
        builder, _, _ = self.build()
        profile = builder.build()
        profile.meta.duration_nanos = -1
        assert "EV312" in rules_of(lint_profile(profile))

    def test_ev312_missing_time_only_when_required(self):
        builder, _, _ = self.build()
        profile = builder.build()
        assert profile.meta.time_nanos == 0
        # Ordinary lint tolerates a missing stamp (fixtures, conversions)...
        assert "EV312" not in rules_of(lint_profile(profile))
        # ...but the store's ingest path demands one.
        assert "EV312" in rules_of(lint_profile(profile, require_time=True))

    def test_ev312_stamped_profile_is_clean_even_when_required(self):
        builder, _, _ = self.build()
        profile = builder.build()
        profile.meta.time_nanos = 1_700_000_000_000_000_000
        assert "EV312" not in rules_of(lint_profile(profile,
                                                    require_time=True))

    def test_workload_fixtures_are_clean_of_errors(self, simple_profile,
                                                   recursive_profile):
        for profile in (simple_profile, recursive_profile):
            assert not has_errors(lint_profile(profile))


class TestPprofRules:
    def message(self):
        msg = pprof_pb.Profile()
        msg.string_table = ["", "cpu", "ns", "main"]
        msg.sample_type.append(pprof_pb.ValueType(type=1, unit=2))
        msg.function.append(pprof_pb.Function(id=1, name=3))
        msg.location.append(pprof_pb.Location(
            id=1, line=[pprof_pb.Line(function_id=1, line=4)]))
        msg.sample.append(pprof_pb.Sample(location_id=[1], value=[7]))
        return msg

    def test_clean_message(self):
        assert lint_pprof(self.message()) == []

    def test_ev301_dangling_string_index(self):
        msg = self.message()
        msg.function[0].name = 42
        [diag] = lint_pprof(msg)
        assert diag.rule == "EV301"

    def test_ev302_undefined_location_and_function(self):
        msg = self.message()
        msg.sample[0].location_id = [9]
        msg.location[0].line[0].function_id = 8
        assert rules_of(lint_pprof(msg)) == {"EV302"}

    def test_ev311_value_count_mismatch(self):
        msg = self.message()
        msg.sample[0].value = [7, 8]
        diags = [d for d in lint_pprof(msg) if d.rule == "EV311"]
        assert diags and diags[0].severity is Severity.WARNING


class TestConfigAndRegistry:
    def test_disable_by_rule_id(self):
        config = LintConfig.from_directives(["EV104=off"])
        assert lint_formula("cycles * (1000/8)", metrics=METRICS,
                            config=config) == []

    def test_disable_whole_family(self):
        config = LintConfig.from_directives(["formula"])
        assert lint_formula("cycles / cyclez", metrics=METRICS,
                            config=config) == []

    def test_severity_override(self):
        config = LintConfig.from_directives(["EV101=warning"])
        [diag] = lint_formula("cyclez", metrics=METRICS, config=config)
        assert diag.severity is Severity.WARNING

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            LintConfig.from_directives(["EV101=loud"])

    def test_every_rule_has_summary_and_example(self):
        rules = all_rules()
        assert len(rules) >= 33
        for rule in rules:
            assert rule.summary and rule.bad and rule.good

    def test_registry_families(self):
        assert {r.family for r in all_rules()} == {"formula", "callback",
                                                   "profile", "selfcheck"}
        assert get_rule("EV101").family == "formula"
        assert get_rule("EV401").family == "selfcheck"

    def test_family_prefix_aliases(self):
        config = LintConfig.from_directives(["EV1xx=off"])
        assert lint_formula("cycles / cyclez", metrics=METRICS,
                            config=config) == []

    def test_family_severity_override(self):
        config = LintConfig.from_directives(["formula=hint"])
        [diag] = lint_formula("cyclez", metrics=METRICS, config=config)
        assert diag.severity is Severity.HINT

    def test_formula_rule_examples_trigger_their_own_rule(self):
        # The documented bad/good examples are executable documentation.
        for rule in all_rules("formula"):
            bad = lint_formula(rule.bad, metrics=METRICS, profile_count=2)
            assert rule.id in rules_of(bad), rule.id
            good = lint_formula(rule.good, metrics=METRICS, profile_count=2)
            assert rule.id not in rules_of(good), rule.id

    def test_sort_and_worst_severity(self):
        diags = lint_formula("cyclez + (1+1)", metrics=METRICS)
        ordered = sort_diagnostics(diags)
        assert [d.rule for d in ordered] == ["EV101", "EV104"]
        assert worst_severity(ordered) is Severity.ERROR
        assert worst_severity([]) is None
