"""The transport-shared dispatch layer: parity, parsing, supersession.

The contract under test: the stdio server and the socket server answer
the same wire input with the same responses — well-formed requests,
parse errors, oversized lines, and non-UTF-8 bytes alike — because both
route through :mod:`repro.serve.dispatch`.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.core.serialize import dump
from repro.ide import protocol as pvp
from repro.ide.server import StdioServer
from repro.serve import (PVPServer, ServeConfig, canonical_line,
                         parse_line, supersede_key)


def run_stdio(lines, **kwargs):
    """Feed raw wire lines to a StdioServer; return its stdout lines."""
    stdout = io.StringIO()
    server = StdioServer(stdin=io.StringIO("\n".join(lines) + "\n"),
                         stdout=stdout, log=io.StringIO(), **kwargs)
    server.serve_forever()
    return stdout.getvalue().splitlines()


def run_socket(payload_lines, config=None):
    """Feed the same wire lines over a socket session; return its lines.

    ``payload_lines`` may mix str and bytes (bytes for deliberately
    undecodable input).  Reads until the server closes the connection
    (every input ends with a ``shutdown`` request).
    """
    async def main():
        server = PVPServer(config or ServeConfig(), log=io.StringIO())
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            for line in payload_lines:
                data = (line.encode("utf-8") if isinstance(line, str)
                        else line)
                writer.write(data + b"\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=30)
            writer.close()
            return raw.decode("utf-8").splitlines()
        finally:
            await server.stop()

    return asyncio.run(main())


def canonical(lines):
    """Sorted canonical forms — response order may legally differ across
    transports (control responses overtake executed ones)."""
    return sorted(canonical_line(json.loads(line)) for line in lines)


def request_line(req_id, method, **params):
    return json.dumps({"jsonrpc": "2.0", "id": req_id, "method": method,
                       "params": params}, sort_keys=True)


SHUTDOWN = request_line(99, "shutdown")


class TestTransportParity:
    def test_happy_path_byte_identical(self, tmp_path, simple_profile):
        path = str(tmp_path / "p.ezvw")
        dump(simple_profile, path)
        lines = [
            request_line(1, "view/open", path=path),
            request_line(2, "view/summary", profileId=1),
            request_line(3, "view/switchShape", profileId=1,
                         shape="bottom_up"),
            SHUTDOWN,
        ]
        assert canonical(run_stdio(lines)) == canonical(run_socket(lines))

    def test_error_paths_byte_identical(self):
        lines = [
            "this is not json",
            json.dumps({"jsonrpc": "2.0", "id": 7}),   # not a request
            request_line(2, "view/summary", profileId=12345),  # unknown id
            request_line(3, "no/such/method"),
            "",
            SHUTDOWN,
        ]
        stdio = run_stdio(lines)
        socket = run_socket(lines)
        # Error responses carry no volatile fields: exact bytes, not just
        # canonical forms, must agree.
        assert sorted(stdio) == sorted(socket)

    def test_oversized_line_byte_identical(self):
        big = request_line(1, "view/summary",
                           profileId=1, pad="x" * 5000)
        lines = [big, SHUTDOWN]
        stdio = run_stdio(lines, max_line_bytes=256)
        socket = run_socket(lines, ServeConfig(max_line_bytes=256))
        assert sorted(stdio) == sorted(socket)

    def test_undecodable_bytes_byte_identical(self):
        stdio_out = io.StringIO()
        raw = b"\xff\xfe not utf8\n" + (SHUTDOWN + "\n").encode("utf-8")
        server = StdioServer(stdin=io.BytesIO(raw), stdout=stdio_out,
                             log=io.StringIO())
        server.serve_forever()
        stdio = stdio_out.getvalue().splitlines()
        socket = run_socket([b"\xff\xfe not utf8", SHUTDOWN])
        assert sorted(stdio) == sorted(socket)

    def test_shutdown_acknowledged_identically(self):
        stdio = run_stdio([SHUTDOWN])
        socket = run_socket([SHUTDOWN])
        assert stdio == socket
        assert json.loads(stdio[0])["result"] == {"ok": True}


class TestParseLine:
    def test_blank_line_is_skipped(self):
        assert parse_line("   ") == (None, None)

    def test_garbage_is_parse_error(self):
        request, error = parse_line("nope")
        assert request is None
        assert error.error["code"] == pvp.PARSE_ERROR

    def test_method_less_message_is_parse_error(self):
        request, error = parse_line(json.dumps({"jsonrpc": "2.0", "id": 1}))
        assert request is None
        assert error.error["code"] == pvp.PARSE_ERROR

    def test_response_message_is_invalid_request(self):
        request, error = parse_line(json.dumps(
            {"jsonrpc": "2.0", "id": 1, "result": {}}))
        assert request is None
        assert error.error["code"] == pvp.INVALID_REQUEST

    def test_valid_request_parses(self):
        request, error = parse_line(request_line(1, "view/summary",
                                                 profileId=1))
        assert error is None
        assert request.method == "view/summary"


class TestSupersedeKey:
    def request(self, method, req_id=1, **params):
        return pvp.Request(method=method, id=req_id, params=params)

    def test_same_pane_same_key(self):
        a = self.request("view/hover", 1, profileId=1, file="a.c", line=1)
        b = self.request("view/hover", 2, profileId=1, file="b.c", line=9)
        assert supersede_key(a) == supersede_key(b)
        assert supersede_key(a) is not None

    def test_different_profile_different_key(self):
        a = self.request("view/hover", 1, profileId=1, file="a.c", line=1)
        b = self.request("view/hover", 2, profileId=2, file="a.c", line=1)
        assert supersede_key(a) != supersede_key(b)

    def test_different_shape_different_key(self):
        a = self.request("view/search", 1, profileId=1, shape="top_down",
                         pattern="x")
        b = self.request("view/search", 2, profileId=1, shape="bottom_up",
                         pattern="x")
        assert supersede_key(a) != supersede_key(b)

    def test_mutating_requests_never_supersede(self):
        for method in ("view/open", "view/deriveMetric", "view/tableExpand",
                       "store/ingest", "view/close"):
            assert supersede_key(self.request(method, 1, profileId=1)) \
                is None

    def test_notifications_never_supersede(self):
        note = pvp.Request(method="view/hover", id=None,
                           params={"profileId": 1, "file": "a", "line": 1})
        assert note.is_notification
        assert supersede_key(note) is None


class TestDispatcherSessionId:
    def test_slow_log_carries_session_id(self, tmp_path, simple_profile):
        path = str(tmp_path / "p.ezvw")
        dump(simple_profile, path)
        log = io.StringIO()
        stdout = io.StringIO()
        lines = [request_line(1, "view/open", path=path), SHUTDOWN]
        server = StdioServer(stdin=io.StringIO("\n".join(lines) + "\n"),
                             stdout=stdout, log=log,
                             slow_seconds=0.0)  # everything is "slow"
        server.serve_forever()
        entries = [json.loads(line) for line in
                   log.getvalue().splitlines()]
        assert entries, "expected at least one slow-request log line"
        assert entries[0]["event"] == "slow_request"
        assert entries[0]["sessionId"] == "stdio"
        assert "traceId" in entries[0]  # null unless the tracer is on

    def test_obs_trace_carries_session_id(self):
        from repro.ide.session import ViewerSession
        session = ViewerSession(session_id="c42")
        response = session.handle(pvp.Request(method="obs/trace", id=1,
                                              params={}))
        assert response.ok
        assert response.result["sessionId"] == "c42"
