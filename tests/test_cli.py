"""End-to-end tests for the ``easyview`` CLI."""

import os

import pytest

from repro.cli import main
from repro.core.serialize import dump
from repro.profilers.workloads import spark_profile


@pytest.fixture
def pprof_path(tmp_path, small_pprof_bytes):
    path = tmp_path / "svc.pb.gz"
    path.write_bytes(small_pprof_bytes)
    return str(path)


@pytest.fixture
def spark_paths(tmp_path):
    rdd_path = str(tmp_path / "rdd.ezvw")
    sql_path = str(tmp_path / "sql.ezvw")
    dump(spark_profile("rdd"), rdd_path)
    dump(spark_profile("sql"), sql_path)
    return rdd_path, sql_path


class TestOpen:
    def test_open_flame(self, pprof_path, capsys):
        assert main(["open", pprof_path, "--width", "70"]) == 0
        out = capsys.readouterr().out
        assert "Hottest contexts" in out

    def test_open_outline(self, pprof_path, capsys):
        assert main(["open", pprof_path, "--outline"]) == 0
        assert "%" in capsys.readouterr().out

    def test_open_bottom_up(self, pprof_path, capsys):
        assert main(["open", pprof_path, "--shape", "bottom_up"]) == 0

    def test_open_missing_file_fails_cleanly(self, capsys):
        assert main(["open", "/nope.pb.gz"]) == 1
        assert "error" in capsys.readouterr().err

    def test_open_explicit_metric(self, pprof_path, capsys):
        assert main(["open", pprof_path, "--metric", "samples"]) == 0


class TestConvert:
    def test_convert_to_native(self, pprof_path, tmp_path, capsys):
        out_path = str(tmp_path / "out.ezvw")
        assert main(["convert", pprof_path, out_path]) == 0
        assert os.path.exists(out_path)
        assert "contexts" in capsys.readouterr().out
        # The native file opens again.
        assert main(["open", out_path]) == 0

    def test_convert_collapsed_input(self, tmp_path):
        src = tmp_path / "stacks.folded"
        src.write_text("main;hot 10\n")
        out_path = str(tmp_path / "o.ezvw")
        assert main(["convert", str(src), out_path]) == 0


class TestDiffAggregate:
    def test_diff_shows_tags(self, spark_paths, capsys):
        rdd_path, sql_path = spark_paths
        assert main(["diff", rdd_path, sql_path]) == 0
        out = capsys.readouterr().out
        assert "[A]" in out and "[D]" in out
        assert "difference tags:" in out

    def test_aggregate(self, spark_paths, capsys):
        rdd_path, _ = spark_paths
        assert main(["aggregate", rdd_path, rdd_path]) == 0
        assert "cpu:sum" in capsys.readouterr().out


class TestReportFormats:
    def test_engine_stats_cold_and_warm(self, spark_paths, capsys):
        rdd_path, sql_path = spark_paths
        assert main(["engine-stats", rdd_path, sql_path]) == 0
        out = capsys.readouterr().out
        assert "cold pass:" in out
        assert "warm pass:" in out
        assert "hit rate" in out
        assert "pool:" in out

    def test_engine_stats_without_paths(self, capsys):
        assert main(["engine-stats"]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out

    def test_report_written(self, pprof_path, tmp_path, capsys):
        out_path = str(tmp_path / "report.html")
        assert main(["report", pprof_path, "-o", out_path]) == 0
        html = open(out_path).read()
        assert "<svg" in html
        assert "bottom-up flame graph" in html

    def test_formats_listed(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        for name in ("pprof", "collapsed", "hpctoolkit", "easyview"):
            assert name in out


class TestAnalysisSubcommands:
    def test_leak_subcommand(self, tmp_path, capsys):
        from repro.profilers.workloads import grpc_client_profile
        path = str(tmp_path / "heap.ezvw")
        dump(grpc_client_profile(clients=10, snapshots=10), path)
        assert main(["leak", path, "--min-peak", "1"]) == 0
        out = capsys.readouterr().out
        assert "POTENTIAL LEAK" in out
        assert "potential leaks" in out

    def test_leak_without_snapshots_fails(self, tmp_path, capsys,
                                          small_pprof_bytes):
        path = tmp_path / "cpu.pb.gz"
        path.write_bytes(small_pprof_bytes)
        assert main(["leak", str(path), "--metric", "cpu"]) == 1

    def test_reuse_subcommand(self, tmp_path, capsys):
        from repro.profilers.workloads import lulesh_reuse_profile
        path = str(tmp_path / "reuse.ezvw")
        dump(lulesh_reuse_profile(scale=2), path)
        assert main(["reuse", path]) == 0
        out = capsys.readouterr().out
        assert "allocations" in out
        assert "guidance:" in out

    def test_reuse_without_pairs_fails(self, tmp_path, capsys,
                                       small_pprof_bytes):
        path = tmp_path / "cpu.pb.gz"
        path.write_bytes(small_pprof_bytes)
        assert main(["reuse", str(path)]) == 1

    def test_inefficiencies_subcommand(self, tmp_path, capsys):
        from repro.profilers.workloads import false_sharing_workload
        path = str(tmp_path / "fs.ezvw")
        dump(false_sharing_workload(), path)
        assert main(["inefficiencies", path]) == 0
        out = capsys.readouterr().out
        assert "false sharing" in out and "stats" in out

    def test_inefficiencies_redundancy(self, tmp_path, capsys):
        from repro.profilers.workloads import redundancy_workload
        path = str(tmp_path / "red.ezvw")
        dump(redundancy_workload(), path)
        assert main(["inefficiencies", path]) == 0
        assert "redundancy" in capsys.readouterr().out

    def test_inefficiencies_empty_fails(self, tmp_path, capsys,
                                        small_pprof_bytes):
        path = tmp_path / "cpu.pb.gz"
        path.write_bytes(small_pprof_bytes)
        assert main(["inefficiencies", str(path)]) == 1

    def test_study_subcommand(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "easyview" in out and "DNF" in out
        assert "flame/top_down" in out

    def test_report_interactive(self, tmp_path, capsys, small_pprof_bytes):
        src = tmp_path / "svc.pb.gz"
        src.write_bytes(small_pprof_bytes)
        out_path = str(tmp_path / "viewer.html")
        assert main(["report", str(src), "-o", out_path,
                     "--interactive"]) == 0
        page = open(out_path).read()
        assert "var DATA =" in page and "<script>" in page

    def test_combine_subcommand(self, tmp_path, capsys):
        from repro.profilers.workloads import (lulesh_profile,
                                               lulesh_reuse_profile)
        a = str(tmp_path / "a.ezvw")
        b = str(tmp_path / "b.ezvw")
        dump(lulesh_profile(scale=2), a)
        dump(lulesh_reuse_profile(scale=2), b)
        out_path = str(tmp_path / "merged.ezvw")
        assert main(["combine", a, b, "-o", out_path]) == 0
        assert "hpctoolkit" in capsys.readouterr().out
        assert main(["open", out_path]) == 0

    def test_timeline_subcommand(self, tmp_path, capsys):
        from repro.profilers.workloads import grpc_client_profile
        path = str(tmp_path / "heap.ezvw")
        dump(grpc_client_profile(clients=10, snapshots=10), path)
        assert main(["timeline", path, "--window", "1:5"]) == 0
        out = capsys.readouterr().out
        assert "#1" in out and "window 1..5" in out

    def test_timeline_without_snapshots_fails(self, tmp_path, capsys,
                                              small_pprof_bytes):
        path = tmp_path / "cpu.pb.gz"
        path.write_bytes(small_pprof_bytes)
        assert main(["timeline", str(path), "--metric", "cpu"]) == 1

    def test_validate_subcommand(self, tmp_path, capsys,
                                 small_pprof_bytes):
        path = tmp_path / "svc.pb.gz"
        path.write_bytes(small_pprof_bytes)
        assert main(["validate", str(path)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_anonymize_subcommand(self, tmp_path, capsys):
        from repro.profilers.workloads import spark_profile
        src = str(tmp_path / "spark.ezvw")
        dump(spark_profile("rdd"), src)
        out_path = str(tmp_path / "anon.ezvw")
        assert main(["anonymize", src, "-o", out_path,
                     "--key", "shared-key"]) == 0
        data = open(out_path, "rb").read()
        assert b"ShuffleMapTask" not in data
        assert main(["open", out_path]) == 0


class TestStoreSubcommands:
    @pytest.fixture
    def store_root(self, tmp_path, spark_paths):
        root = str(tmp_path / "store")
        rdd_path, sql_path = spark_paths
        assert main(["store", "ingest", root, rdd_path, sql_path,
                     "--service", "spark", "--label", "env=test"]) == 0
        return root

    def test_ingest_and_ls(self, store_root, capsys):
        capsys.readouterr()
        assert main(["store", "ls", store_root]) == 0
        out = capsys.readouterr().out
        assert "2 records" in out
        assert "spark" in out and "env=test" in out

    def test_query_renders_merged_view(self, store_root, capsys):
        capsys.readouterr()
        assert main(["store", "query", store_root, "service=spark",
                     "--width", "70"]) == 0
        out = capsys.readouterr().out
        assert "merged 2 records" in out
        assert "Hottest" in out

    def test_query_no_match_fails(self, store_root, capsys):
        assert main(["store", "query", store_root,
                     "service=nothing"]) == 1

    def test_stats_verifies_integrity(self, store_root, capsys):
        capsys.readouterr()
        assert main(["store", "stats", store_root]) == 0
        out = capsys.readouterr().out
        assert "1 segments" in out
        assert "content addresses verify" in out

    def test_stats_reports_corruption(self, store_root, capsys):
        seg = [name for name in os.listdir(store_root)
               if name.endswith(".seg")][0]
        with open(os.path.join(store_root, seg), "r+b") as handle:
            handle.seek(20)
            handle.write(b"\x00\x00\x00\x00")
        assert main(["store", "stats", store_root]) == 1
        assert "integrity" in capsys.readouterr().out

    def test_gc_by_age(self, store_root, capsys):
        capsys.readouterr()
        # The spark fixtures carry no wall-clock stamp, so they were
        # indexed at ingest time: a 1-week retention keeps everything.
        assert main(["store", "gc", store_root, "--max-age", "7d"]) == 0
        assert "removed 0 segments" in capsys.readouterr().out

    def test_compact_needs_two_segments(self, store_root, capsys):
        capsys.readouterr()
        assert main(["store", "compact", store_root]) == 0
        assert "nothing to compact" in capsys.readouterr().out
