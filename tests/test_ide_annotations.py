"""Tests for annotation builders: code lenses, hovers, decorations,
floating windows."""

import pytest

from repro.analysis.transform import top_down
from repro.ide.annotations import (build_code_lenses, build_decorations,
                                   build_floating_window, build_hover,
                                   line_attribution)


class TestLineAttribution:
    def test_values_bucketed_per_line(self, simple_profile):
        table = line_attribution(top_down(simple_profile))
        assert table[("app.c", 42)][0] == 200.0   # work's exclusive cpu
        assert table[("app.c", 60)][0] == 700.0   # inner

    def test_lines_without_mapping_skipped(self):
        from repro import ProfileBuilder
        builder = ProfileBuilder()
        builder.metric("m")
        builder.sample(["anonymous"], {0: 5.0})
        table = line_attribution(top_down(builder.build()))
        assert table == {}


class TestCodeLenses:
    def test_one_lens_per_measured_line(self, simple_profile):
        # main (line 10) has no exclusive cost, so no lens appears there.
        lenses = build_code_lenses(top_down(simple_profile))
        lines = {lens.line for lens in lenses}
        assert lines == {42, 60, 77}

    def test_lens_text_shows_metric_and_share(self, simple_profile):
        lenses = build_code_lenses(top_down(simple_profile), file="app.c")
        work_lens = [l for l in lenses if l.line == 42][0]
        assert "cpu" in work_lens.text
        assert "20.0%" in work_lens.text

    def test_file_filter(self, simple_profile):
        assert build_code_lenses(top_down(simple_profile),
                                 file="other.c") == []

    def test_min_fraction_suppresses_noise(self, simple_profile):
        lenses = build_code_lenses(top_down(simple_profile),
                                   min_fraction=0.5)
        # inner holds 70% of cpu; line 42 holds 100% of alloc.
        assert {l.line for l in lenses} == {42, 60}


class TestHover:
    def test_hover_lists_all_metrics(self, simple_profile):
        hover = build_hover(top_down(simple_profile), "app.c", 42)
        assert hover is not None
        text = "\n".join(hover.lines)
        assert "cpu" in text and "alloc" in text
        assert "% of program" in text

    def test_hover_none_for_cold_line(self, simple_profile):
        assert build_hover(top_down(simple_profile), "app.c", 999) is None

    def test_hover_tips_appended(self, simple_profile):
        hover = build_hover(top_down(simple_profile), "app.c", 42,
                            tips=["consider pooling"])
        assert any("consider pooling" in line for line in hover.lines)


class TestDecorations:
    def test_intensity_proportional_to_share(self, simple_profile):
        decorations = build_decorations(top_down(simple_profile))
        by_line = {d.line: d for d in decorations}
        assert by_line[60].intensity == 1.0            # hottest line
        assert by_line[42].intensity == pytest.approx(200 / 700)

    def test_empty_profile_no_decorations(self):
        from repro import ProfileBuilder
        builder = ProfileBuilder()
        builder.metric("m")
        assert build_decorations(top_down(builder.build())) == []


class TestFloatingWindow:
    def test_window_summarizes_whole_profile(self, simple_profile):
        window = build_floating_window(top_down(simple_profile))
        assert "total cpu" in window.body
        assert "contexts:" in window.body
        assert "Hottest contexts" in window.body


class TestAssemblyLenses:
    def build_instruction_profile(self):
        """A compiler-developer profile: statements carry instructions."""
        from repro import ProfileBuilder
        from repro.core.frame import FrameKind, intern_frame
        builder = ProfileBuilder(tool="drcctprof")
        cycles = builder.metric("cycles", unit="count")
        base = [("main", "kern.c", 4), ("saxpy", "kern.c", 20)]
        builder.sample(base, {cycles: 10.0})
        for address, opcode, cost in ((0x4005a0, "vmulps %ymm1,%ymm0",
                                       900.0),
                                      (0x4005a4, "vaddps %ymm2,%ymm0",
                                       700.0),
                                      (0x4005a8, "vmovups %ymm0,(%rdi)",
                                       150.0)):
            builder.sample(
                base + [intern_frame(opcode, file="kern.c", line=21,
                                     address=address,
                                     kind=FrameKind.INSTRUCTION)],
                {cycles: cost})
        return builder.build()

    def test_lens_carries_assembly(self):
        from repro.analysis.transform import top_down
        profile = self.build_instruction_profile()
        lenses = build_code_lenses(top_down(profile), file="kern.c")
        by_line = {lens.line: lens for lens in lenses}
        assert 21 in by_line
        assembly = by_line[21].assembly
        assert len(assembly) == 3
        # Hottest instruction first, with its address.
        assert assembly[0].startswith("0x4005a0")
        assert "vmulps" in assembly[0]

    def test_assembly_suppressed_on_request(self):
        from repro.analysis.transform import top_down
        profile = self.build_instruction_profile()
        lenses = build_code_lenses(top_down(profile), file="kern.c",
                                   with_assembly=False)
        assert all(not lens.assembly for lens in lenses)

    def test_profiles_without_instructions_unaffected(self, simple_profile):
        from repro.analysis.transform import top_down
        lenses = build_code_lenses(top_down(simple_profile))
        assert all(lens.assembly == [] for lens in lenses)
