"""Tests for the ProfileBuilder API and profile validation."""

import pytest

from repro.builder import ProfileBuilder, validate
from repro.builder.builder import _coerce_frame
from repro.core.frame import Frame, FrameKind, intern_frame
from repro.core.monitor import PointKind


class TestFrameSpecs:
    def test_string_spec(self):
        frame = _coerce_frame("main")
        assert frame.name == "main" and frame.file == ""

    def test_tuple_specs(self):
        assert _coerce_frame(("f",)).name == "f"
        assert _coerce_frame(("f", "a.c")).file == "a.c"
        assert _coerce_frame(("f", "a.c", 3)).line == 3
        assert _coerce_frame(("f", "a.c", 3, "m")).module == "m"

    def test_frame_passthrough(self):
        frame = intern_frame("x")
        assert _coerce_frame(frame) is frame

    def test_bad_tuple_rejected(self):
        with pytest.raises(ValueError):
            _coerce_frame(("a", "b", 1, "m", "extra"))

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            _coerce_frame(42)


class TestBuilder:
    def test_metric_reuse(self):
        builder = ProfileBuilder()
        assert builder.metric("cpu") == builder.metric("cpu")

    def test_leaf_sample_reverses(self):
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        builder.leaf_sample(["leaf", "mid", "root"], {cpu: 1.0})
        profile = builder.build()
        leaf = profile.find_by_name("leaf")[0]
        assert [f.name for f in leaf.call_path()] == ["root", "mid", "leaf"]

    def test_snapshot_requires_positive_sequence(self):
        builder = ProfileBuilder()
        builder.metric("m")
        with pytest.raises(ValueError):
            builder.snapshot(0, ["main"], {0: 1.0})

    def test_snapshot_not_folded_into_node_metrics(self):
        builder = ProfileBuilder()
        mem = builder.metric("inuse", unit="bytes")
        builder.snapshot(1, ["main"], {mem: 100.0})
        profile = builder.build()
        assert profile.total("inuse") == 0.0  # lives on the point only
        assert profile.points[0].value(mem) == 100.0

    def test_allocation_creates_data_object_context(self):
        builder = ProfileBuilder()
        size = builder.metric("bytes", unit="bytes")
        point = builder.allocation("buf", ["main", "alloc_site"],
                                   {size: 64.0})
        leaf = point.primary()
        assert leaf.frame.kind is FrameKind.DATA_OBJECT
        assert leaf.frame.name == "buf"
        assert leaf.parent.frame.name == "alloc_site"

    def test_pair_point_orders_contexts(self):
        builder = ProfileBuilder()
        count = builder.metric("n")
        point = builder.pair_point(PointKind.REDUNDANCY,
                                   [["main", "dead"], ["main", "killer"]],
                                   {count: 2.0})
        assert [c.frame.name for c in point.contexts] == ["dead", "killer"]

    def test_build_finalizes(self):
        builder = ProfileBuilder()
        builder.metric("m")
        builder.build()
        with pytest.raises(RuntimeError):
            builder.sample(["f"], {0: 1.0})

    def test_attributes_recorded(self):
        builder = ProfileBuilder(tool="x")
        builder.attribute("host", "dev01")
        assert builder.build().meta.attributes == {"host": "dev01"}


class TestValidation:
    def test_clean_profile_passes(self, simple_profile):
        report = validate(simple_profile)
        assert report.ok
        assert not report.errors

    def test_unused_metric_warns(self):
        builder = ProfileBuilder()
        builder.metric("used")
        builder.metric("unused")
        builder.sample(["main"], {0: 1.0})
        report = validate(builder.build())
        assert report.ok
        assert any("unused" in w for w in report.warnings)

    def test_line_without_file_warns(self):
        builder = ProfileBuilder()
        builder.metric("m")
        builder.sample([intern_frame("f", line=12)], {0: 1.0})
        report = validate(builder.build())
        assert any("code link" in w for w in report.warnings)

    def test_negative_sum_metric_warns(self):
        builder = ProfileBuilder()
        builder.metric("m")
        builder.sample(["f"], {0: -5.0})
        report = validate(builder.build())
        assert any("negative" in w for w in report.warnings)

    def test_bad_point_arity_is_error(self):
        builder = ProfileBuilder()
        builder.metric("m")
        builder.sample(["f"], {0: 1.0})
        profile = builder.build()
        from repro.core.monitor import MonitoringPoint
        node = profile.find_by_name("f")[0]
        # Bypass add_point validation to simulate a corrupt file.
        profile.points.append(MonitoringPoint(
            kind=PointKind.USE_REUSE, contexts=[node], values={}))
        report = validate(profile)
        assert not report.ok
