"""repro.obs.metrics: counters, gauges, histograms, and the registry."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               DEFAULT_BUCKETS)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        assert counter.inc() == 1
        assert counter.inc(5) == 6
        assert counter.value == 6

    def test_rejects_negative_amounts(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments_lose_nothing(self):
        # The race CacheStats used to have: bare += drops updates under
        # contention.  8 threads x 2000 increments must land exactly.
        counter = Counter("c")

        def hammer():
            for _ in range(2000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * 2000


class TestGauge:
    def test_moves_both_directions(self):
        gauge = Gauge("g")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7.5)
        assert gauge.value == 7.5
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        histogram = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.to_dict()
        assert [b["count"] for b in snapshot["buckets"]] == [1, 2, 3, 4]
        assert snapshot["buckets"][-1]["le"] == "+Inf"
        assert snapshot["count"] == 4
        assert snapshot["min"] == 0.005
        assert snapshot["max"] == 5.0
        assert snapshot["mean"] == pytest.approx((0.005 + 0.05 + 0.5 + 5) / 4)

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.1)  # <= 0.1: first bucket
        assert histogram.to_dict()["buckets"][0]["count"] == 1

    def test_bounds_are_sorted_and_distinct(self):
        assert Histogram("h", buckets=(1.0, 0.1)).buckets == (0.1, 1.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 5.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_groups_by_type(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("inflight").set(2)
        registry.histogram("latency", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"requests": 3}
        assert snapshot["gauges"] == {"inflight": 2}
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_snapshot_is_json_ready(self):
        import json
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.2)
        json.dumps(registry.snapshot())  # must not raise

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("c") is counter

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
