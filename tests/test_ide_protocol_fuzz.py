"""Protocol robustness: arbitrary JSON-RPC traffic must fail cleanly.

An editor plugin crashing its viewer over a malformed message is a
usability disaster; the session must answer *every* request with either a
result or a JSON-RPC error object.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.ide.protocol import Request, Response, parse_message
from repro.ide.session import ViewerSession


METHODS = ["view/open", "view/close", "view/switchShape", "view/select",
           "view/click", "view/search", "view/hover", "view/zoom",
           "view/summary", "view/diff", "view/aggregate",
           "view/deriveMetric", "view/capabilities", "view/table",
           "view/tableExpand", "view/export", "view/doesNotExist"]

param_values = st.one_of(
    st.none(), st.booleans(), st.integers(-10, 10 ** 6),
    st.text(max_size=12), st.lists(st.integers(0, 5), max_size=3))


class TestSessionFuzz:
    @settings(max_examples=80, deadline=None)
    @given(method=st.sampled_from(METHODS),
           params=st.dictionaries(
               st.sampled_from(["profileId", "nodeRef", "shape", "path",
                                "pattern", "file", "line", "format",
                                "name", "formula", "profileIds",
                                "baselineId", "treatmentId", "maxRows",
                                "capabilities", "metric", "hotPath"]),
               param_values, max_size=5))
    def test_every_request_gets_a_response(self, method, params):
        session = ViewerSession()
        request = Request(method=method, params=params, id=1)
        response = session.handle(request)
        assert isinstance(response, Response)
        if not response.ok:
            assert isinstance(response.error["code"], int)
            assert isinstance(response.error["message"], str)
        # The response must serialize back through the wire format.
        parse_message(response.to_json())

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=120))
    def test_parse_message_never_crashes(self, text):
        try:
            parse_message(text)
        except ProtocolError:
            pass

    def test_open_profile_then_fuzz_refs(self, simple_profile):
        """Requests against a live profile with wild node refs."""
        session = ViewerSession()
        opened = session.open(simple_profile)
        for ref in (-1, 0, 10 ** 9):
            response = session.handle(Request(
                method="view/select",
                params={"profileId": opened.id, "nodeRef": ref}, id=1))
            if ref == 0:
                continue  # ref 0 may or may not exist yet
            assert not response.ok

    def test_type_confusion_in_params(self, simple_profile):
        session = ViewerSession()
        opened = session.open(simple_profile)
        for bad in ("abc", None, [1], {"x": 1}):
            response = session.handle(Request(
                method="view/switchShape",
                params={"profileId": bad, "shape": "top_down"}, id=2))
            assert isinstance(response, Response)
            assert not response.ok
