"""The store query language: parsing, matching, canonical text."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.store.index import RecordEntry
from repro.store.query import Query, parse_age, parse_query, parse_time

NOW = 1_700_000_000_000_000_000


def _entry(service="api", ptype="cpu", labels=None, time_nanos=NOW, seq=1):
    return RecordEntry(service=service, ptype=ptype, labels=labels or {},
                       time_nanos=time_nanos, duration_nanos=0, seq=seq)


class TestParseTime:
    def test_raw_nanos(self):
        assert parse_time("123456789") == 123456789

    def test_iso_date(self):
        assert parse_time("2023-11-14T22:13:20") == NOW

    def test_iso_with_timezone(self):
        assert parse_time("2023-11-14T22:13:20+00:00") == NOW

    def test_relative_age(self):
        assert parse_time("15m", now_nanos=NOW) == NOW - 15 * 60 * 10 ** 9
        assert parse_time("1.5h", now_nanos=NOW) == NOW - 5400 * 10 ** 9
        assert parse_time("7d", now_nanos=NOW) == NOW - 7 * 86400 * 10 ** 9

    def test_relative_needs_clock(self):
        with pytest.raises(QueryError, match="reference clock"):
            parse_time("6h")

    def test_garbage(self):
        with pytest.raises(QueryError, match="cannot parse time"):
            parse_time("yesterday-ish")

    def test_empty(self):
        with pytest.raises(QueryError, match="empty"):
            parse_time("  ")


class TestParseAge:
    def test_units(self):
        assert parse_age("30s") == 30 * 10 ** 9
        assert parse_age("2w") == 14 * 86400 * 10 ** 9
        assert parse_age("500") == 500

    def test_garbage(self):
        with pytest.raises(QueryError, match="cannot parse age"):
            parse_age("soon")


class TestParseQuery:
    def test_empty_matches_everything(self):
        query = parse_query("")
        assert query.matches(_entry())
        assert query.matches(_entry(service="other", ptype="heap"))

    def test_all_keys(self):
        query = parse_query(
            "service=api type=cpu since=10 until=20 label.region=us "
            "limit=3 seq=9")
        assert query.service == "api"
        assert query.ptype == "cpu"
        assert query.since_nanos == 10
        assert query.until_nanos == 20
        assert query.labels == {"region": "us"}
        assert query.limit == 3
        assert query.seq == 9

    def test_unknown_key(self):
        with pytest.raises(QueryError, match="unknown query key"):
            parse_query("color=red")

    def test_malformed_term(self):
        with pytest.raises(QueryError, match="malformed"):
            parse_query("service")

    def test_nameless_label(self):
        with pytest.raises(QueryError, match="names no label"):
            parse_query("label.=x")

    def test_bad_limit(self):
        with pytest.raises(QueryError):
            parse_query("limit=zero")
        with pytest.raises(QueryError, match="positive"):
            parse_query("limit=0")

    def test_relative_since_uses_now(self):
        query = parse_query("since=1h", now_nanos=NOW)
        assert query.since_nanos == NOW - 3600 * 10 ** 9


class TestMatching:
    def test_service_and_type(self):
        query = parse_query("service=api type=cpu")
        assert query.matches(_entry())
        assert not query.matches(_entry(service="web"))
        assert not query.matches(_entry(ptype="heap"))

    def test_time_window(self):
        query = Query(since_nanos=10, until_nanos=20)
        assert query.matches(_entry(time_nanos=15))
        assert query.matches(_entry(time_nanos=10))
        assert query.matches(_entry(time_nanos=20))
        assert not query.matches(_entry(time_nanos=9))
        assert not query.matches(_entry(time_nanos=21))

    def test_labels_are_anded(self):
        query = parse_query("label.region=us label.env=prod")
        assert query.matches(
            _entry(labels={"region": "us", "env": "prod", "x": "y"}))
        assert not query.matches(_entry(labels={"region": "us"}))

    def test_seq(self):
        query = parse_query("seq=5")
        assert query.matches(_entry(seq=5))
        assert not query.matches(_entry(seq=6))


class TestCanonicalText:
    def test_round_trip_is_stable(self):
        text = ("service=api type=cpu since=10 until=20 label.a=1 "
                "label.b=2 seq=4 limit=9")
        query = parse_query(text)
        assert parse_query(query.to_text()) == query
        assert parse_query(query.to_text()).to_text() == query.to_text()

    def test_label_order_is_canonical(self):
        a = parse_query("label.b=2 label.a=1")
        b = parse_query("label.a=1 label.b=2")
        assert a.to_text() == b.to_text()
