"""Tests for the real in-process profilers (tracing, sampling, heap)."""

import time

import pytest

from repro.profilers.memsnap import HeapSnapshotProfiler, snapshot_workload
from repro.profilers.sampling import SamplingProfiler, sample_callable
from repro.profilers.tracing import TracingProfiler, profile_callable


def hot_function(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def cold_function():
    return 1


def workload():
    result = hot_function(30000)
    cold_function()
    return result


class TestTracingProfiler:
    def test_profiles_callable(self):
        result, profile = profile_callable(workload)
        assert result == workload()
        assert profile.meta.tool == "repro-tracing"
        names = {n.frame.name for n in profile.nodes()}
        assert "hot_function" in names
        assert "cold_function" in names

    def test_call_paths_reflect_nesting(self):
        _, profile = profile_callable(workload)
        hot_nodes = profile.find_by_name("hot_function")
        assert any("workload" in [f.name for f in n.call_path()]
                   for n in hot_nodes)

    def test_call_counts(self):
        def caller():
            for _ in range(5):
                cold_function()

        _, profile = profile_callable(caller)
        calls = profile.schema.index_of("calls")
        cold = profile.find_by_name("cold_function")
        assert sum(n.exclusive(calls) for n in cold) == 5

    def test_hot_function_dominates_time(self):
        _, profile = profile_callable(workload)
        wall = profile.schema.index_of("wall_time")
        hot = sum(n.exclusive(wall)
                  for n in profile.find_by_name("hot_function"))
        cold = sum(n.exclusive(wall)
                   for n in profile.find_by_name("cold_function"))
        assert hot > cold

    def test_cannot_double_start(self):
        profiler = TracingProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            TracingProfiler().stop()

    def test_exception_still_yields_profile(self):
        profiler = TracingProfiler()

        def boom():
            raise ValueError("expected")

        with pytest.raises(ValueError):
            profiler.profile(boom)
        # The profiler unwound cleanly and can be reused.
        _, profile = profiler.profile(cold_function)
        assert profile is not None


class TestSamplingProfiler:
    def test_samples_hot_code(self):
        def long_workload():
            return sum(hot_function(100_000) for _ in range(5))

        result, profile = sample_callable(long_workload,
                                          interval_seconds=0.002)
        assert result == long_workload()
        # Sampling is timing-dependent: only assert attribution when the
        # sampler clearly ran during the workload (several captures).
        if profile.total("samples") >= 5:
            names = " ".join(n.frame.name for n in profile.nodes())
            assert "hot_function" in names or "long_workload" in names

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_seconds=0)

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            SamplingProfiler().stop()


class TestHeapSnapshotProfiler:
    def test_snapshot_series_recorded(self):
        retained = []

        def step(i):
            retained.append(bytearray(64 * 1024))   # leak-shaped growth

        profile = snapshot_workload(step, steps=4)
        assert profile.snapshot_sequences() == [1, 2, 3, 4]
        from repro.analysis.aggregate import snapshot_totals
        totals = snapshot_totals(profile, "inuse_bytes")
        assert len(totals) == 4
        assert totals[-1] > totals[0]   # retained memory grows

    def test_leak_detector_integration(self):
        retained = []

        def step(i):
            retained.append(bytearray(128 * 1024))

        profile = snapshot_workload(step, steps=6)
        from repro.analysis.leak import detect_leaks
        verdicts = detect_leaks(profile, "inuse_bytes",
                                min_peak=64 * 1024)
        assert any(v.suspicious for v in verdicts)

    def test_capture_requires_start(self):
        with pytest.raises(RuntimeError):
            HeapSnapshotProfiler().capture()
