"""Tests for the JSON profile form."""

import json

import pytest

from repro import ProfileBuilder
from repro.core import jsonio
from repro.core.monitor import PointKind
from repro.errors import FormatError


class TestRoundTrip:
    def test_simple_profile(self, simple_profile):
        back = jsonio.loads(jsonio.dumps(simple_profile))
        assert back.node_count() == simple_profile.node_count()
        assert back.total("cpu") == simple_profile.total("cpu")
        assert back.meta.tool == "test"

    def test_frame_attribution(self, simple_profile):
        back = jsonio.loads(jsonio.dumps(simple_profile))
        work = back.find_by_name("work")[0]
        assert work.frame.file == "app.c" and work.frame.line == 42

    def test_points_survive(self):
        builder = ProfileBuilder(tool="t")
        mem = builder.metric("inuse", unit="bytes")
        builder.snapshot(2, [("main",), ("alloc",)], {mem: 64.0})
        builder.pair_point(PointKind.DATA_RACE,
                           [["main", "a"], ["main", "b"]], {mem: 1.0})
        back = jsonio.loads(jsonio.dumps(builder.build()))
        kinds = {p.kind for p in back.points}
        assert kinds == {PointKind.ALLOCATION, PointKind.DATA_RACE}
        assert back.snapshot_sequences() == [2]

    def test_metadata_survives(self):
        builder = ProfileBuilder(tool="x", time_nanos=99,
                                 duration_nanos=500)
        builder.metric("m")
        builder.attribute("host", "dev01")
        back = jsonio.loads(jsonio.dumps(builder.build()))
        assert back.meta.time_nanos == 99
        assert back.meta.attributes == {"host": "dev01"}

    def test_document_is_plain_json(self, simple_profile):
        payload = json.loads(jsonio.dumps(simple_profile))
        assert payload["format"] == "easyview-json"
        assert payload["nodes"][0]["kind"] == "root"
        assert all("id" in node for node in payload["nodes"])


class TestErrors:
    def test_wrong_format_marker(self):
        with pytest.raises(FormatError, match="not an easyview-json"):
            jsonio.loads('{"format": "something-else", "version": 1}')

    def test_wrong_version(self):
        with pytest.raises(FormatError, match="version"):
            jsonio.loads('{"format": "easyview-json", "version": 99}')

    def test_invalid_json(self):
        with pytest.raises(FormatError, match="invalid JSON"):
            jsonio.loads("{nope")

    def test_non_object(self):
        with pytest.raises(FormatError, match="object"):
            jsonio.loads("[1, 2]")

    def test_dangling_parent(self):
        with pytest.raises(FormatError, match="undefined parent"):
            jsonio.loads(json.dumps({
                "format": "easyview-json", "version": 1, "metrics": [],
                "nodes": [{"id": 5, "parent": 99, "kind": "function",
                           "name": "f"}],
            }))

    def test_dangling_point_context(self):
        with pytest.raises(FormatError, match="undefined node"):
            jsonio.loads(json.dumps({
                "format": "easyview-json", "version": 1, "metrics": [],
                "nodes": [{"id": 0, "parent": None, "kind": "root",
                           "name": "<root>"}],
                "points": [{"kind": "plain", "contexts": [42],
                            "values": {}, "sequence": 0}],
            }))
