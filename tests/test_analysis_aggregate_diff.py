"""Tests for multi-profile aggregation and differencing (§V-A(c))."""

import pytest

from repro import ProfileBuilder
from repro.analysis.aggregate import (aggregate_profiles, merge_trees,
                                      snapshot_series, snapshot_totals)
from repro.analysis.diff import (add_delta_column, diff_profiles, diff_trees,
                                 summarize, TAG_ADDED, TAG_DELETED, TAG_GREW,
                                 TAG_SAME, TAG_SHRANK)
from repro.analysis.transform import bottom_up, top_down
from repro.core.metric import Aggregation
from repro.errors import AnalysisError


def build(tool, entries):
    builder = ProfileBuilder(tool=tool)
    cpu = builder.metric("cpu")
    for path, value in entries:
        builder.sample([(name, "s.c", 1) for name in path], {cpu: value})
    return builder.build()


def build_multi(tool, metrics, entries):
    """Build a profile with several metric columns, declared in order."""
    builder = ProfileBuilder(tool=tool)
    indices = {name: builder.metric(name) for name in metrics}
    for path, values in entries:
        builder.sample([(name, "s.c", 1) for name in path],
                       {indices[name]: v for name, v in values.items()})
    return builder.build()


class TestAggregate:
    def test_stats_columns(self):
        p1 = build("a", [(("main", "f"), 10.0)])
        p2 = build("b", [(("main", "f"), 30.0)])
        tree = aggregate_profiles([p1, p2])
        f = tree.find_by_name("f")[0]
        schema = tree.schema
        assert f.inclusive[schema.index_of("cpu:sum")] == 40.0
        assert f.inclusive[schema.index_of("cpu:min")] == 10.0
        assert f.inclusive[schema.index_of("cpu:max")] == 30.0
        assert f.inclusive[schema.index_of("cpu:mean")] == 20.0

    def test_histogram_series_per_profile(self):
        profiles = [build(str(i), [(("main", "f"), float(i + 1))])
                    for i in range(4)]
        tree = aggregate_profiles(profiles)
        f = tree.find_by_name("f")[0]
        series = f.histogram[0]
        assert series == [1.0, 2.0, 3.0, 4.0]

    def test_missing_context_filled_with_zero(self):
        p1 = build("a", [(("main", "only_in_a"), 5.0)])
        p2 = build("b", [(("main", "only_in_b"), 7.0)])
        tree = aggregate_profiles([p1, p2])
        a = tree.find_by_name("only_in_a")[0]
        assert a.histogram[0] == [5.0, 0.0]

    def test_histogram_position_aligned_with_tree_order(self):
        # A node absent from some trees still gets a full-length series,
        # padded with 0.0 at the positions of the trees that lacked it.
        p1 = build("a", [(("main", "shared"), 1.0)])
        p2 = build("b", [(("main", "shared"), 2.0),
                         (("main", "mid_only"), 9.0)])
        p3 = build("c", [(("main", "shared"), 3.0)])
        tree = merge_trees([top_down(p) for p in (p1, p2, p3)])
        shared = tree.find_by_name("shared")[0]
        assert shared.histogram[0] == [1.0, 2.0, 3.0]
        mid = tree.find_by_name("mid_only")[0]
        assert mid.histogram[0] == [0.0, 9.0, 0.0]

    def test_mixed_shapes_rejected(self, simple_profile):
        td = top_down(simple_profile)
        bu = bottom_up(simple_profile)
        with pytest.raises(AnalysisError):
            merge_trees([td, bu])

    def test_zero_trees_rejected(self):
        with pytest.raises(AnalysisError):
            merge_trees([])

    def test_aggregate_bottom_up_shape(self, simple_profile):
        tree = aggregate_profiles([simple_profile, simple_profile],
                                  shape="bottom_up")
        assert tree.shape == "aggregate:bottom_up"

    def test_custom_operators(self):
        p1 = build("a", [(("main",), 10.0)])
        tree = aggregate_profiles([p1, p1],
                                  operators=(Aggregation.MEAN,))
        assert tree.schema.names() == ["cpu:mean"]


class TestSnapshotSeries:
    def test_series_indexed_by_sequence(self):
        builder = ProfileBuilder()
        mem = builder.metric("inuse", unit="bytes")
        for seq, value in ((1, 100.0), (2, 150.0), (3, 50.0)):
            builder.snapshot(seq, [("main",), ("alloc",)], {mem: value})
        profile = builder.build()
        series = snapshot_series(profile, "inuse")
        assert len(series) == 1
        assert list(series.values())[0] == [100.0, 150.0, 50.0]

    def test_missing_captures_zero_filled(self):
        builder = ProfileBuilder()
        mem = builder.metric("inuse", unit="bytes")
        builder.snapshot(1, [("main",), ("a",)], {mem: 10.0})
        builder.snapshot(2, [("main",), ("a",)], {mem: 20.0})
        builder.snapshot(2, [("main",), ("b",)], {mem: 99.0})
        series = snapshot_series(builder.build(), "inuse")
        by_name = {node.frame.name: values for node, values in series.items()}
        assert by_name["a"] == [10.0, 20.0]
        assert by_name["b"] == [0.0, 99.0]

    def test_totals(self):
        builder = ProfileBuilder()
        mem = builder.metric("inuse", unit="bytes")
        builder.snapshot(1, [("a",)], {mem: 10.0})
        builder.snapshot(1, [("b",)], {mem: 5.0})
        builder.snapshot(2, [("a",)], {mem: 20.0})
        assert snapshot_totals(builder.build(), "inuse") == [15.0, 20.0]

    def test_no_snapshots_empty(self, simple_profile):
        assert snapshot_series(simple_profile, "cpu") == {}


class TestDiff:
    def test_tag_classification(self):
        base = build("p1", [(("main", "stays"), 10.0),
                            (("main", "shrinks"), 50.0),
                            (("main", "gone"), 5.0)])
        treat = build("p2", [(("main", "stays"), 10.0),
                             (("main", "shrinks"), 20.0),
                             (("main", "fresh"), 7.0)])
        tree = diff_profiles(base, treat)
        tags = {n.frame.name: n.tag for n in tree.nodes() if n.tag}
        assert tags["stays"] == TAG_SAME
        assert tags["shrinks"] == TAG_SHRANK
        assert tags["gone"] == TAG_DELETED
        assert tags["fresh"] == TAG_ADDED

    def test_metric_only_in_treatment_resolves_against_union(self):
        # Regression: ``metric`` used to be resolved against the baseline's
        # schema alone, so naming a metric the treatment introduced raised
        # SchemaError even though the diff tree carries that column.
        base = build_multi("p1", ["cpu"],
                           [(("main", "work"), {"cpu": 10.0})])
        treat = build_multi("p2", ["alloc", "cpu"],
                            [(("main", "work"), {"alloc": 64.0,
                                                 "cpu": 10.0})])
        tree = diff_profiles(base, treat, metric="alloc")
        assert tree.schema.names() == ["cpu", "alloc"]
        work = tree.find_by_name("work")[0]
        # cpu is unchanged; the GREW tag proves classification ran on the
        # alloc column at its union index, not on column 0.
        assert work.tag == TAG_GREW
        assert diff_profiles(base, treat,
                             metric="cpu").find_by_name("work")[0].tag \
            == TAG_SAME

    def test_permuted_schemas_classify_on_named_metric(self):
        # The two profiles declare the same metrics in opposite orders;
        # tags must follow the *named* metric, whatever its local index.
        base = build_multi("p1", ["alloc", "cpu"],
                           [(("main", "work"), {"alloc": 100.0,
                                                "cpu": 10.0})])
        treat = build_multi("p2", ["cpu", "alloc"],
                            [(("main", "work"), {"alloc": 40.0,
                                                 "cpu": 10.0})])
        shrank = diff_profiles(base, treat, metric="alloc")
        assert shrank.find_by_name("work")[0].tag == TAG_SHRANK
        same = diff_profiles(base, treat, metric="cpu")
        assert same.find_by_name("work")[0].tag == TAG_SAME

    def test_deleted_node_keeps_baseline_value(self):
        base = build("p1", [(("main", "gone"), 5.0)])
        treat = build("p2", [(("main", "other"), 1.0)])
        tree = diff_profiles(base, treat)
        gone = tree.find_by_name("gone")[0]
        assert gone.baseline[0] == 5.0
        assert gone.inclusive.get(0, 0.0) == 0.0
        assert gone.delta(0) == -5.0

    def test_tolerance_suppresses_noise(self):
        base = build("p1", [(("main", "f"), 100.0)])
        treat = build("p2", [(("main", "f"), 101.0)])
        strict = diff_profiles(base, treat)
        assert strict.find_by_name("f")[0].tag == TAG_GREW
        loose = diff_profiles(base, treat, tolerance=5.0)
        assert loose.find_by_name("f")[0].tag == TAG_SAME

    def test_diff_over_bottom_up(self, simple_profile):
        tree = diff_profiles(simple_profile, simple_profile,
                             shape="bottom_up")
        assert tree.shape == "diff:bottom_up"
        assert set(summarize(tree)) == {TAG_SAME}

    def test_shape_mismatch_rejected(self, simple_profile):
        with pytest.raises(AnalysisError):
            diff_trees(top_down(simple_profile),
                       bottom_up(simple_profile))

    def test_delta_column_subtract(self):
        base = build("p1", [(("main", "f"), 10.0)])
        treat = build("p2", [(("main", "f"), 25.0)])
        tree = diff_profiles(base, treat)
        column = add_delta_column(tree, 0, mode="subtract")
        assert tree.find_by_name("f")[0].inclusive[column] == 15.0

    def test_delta_column_ratio(self):
        base = build("p1", [(("main", "f"), 10.0)])
        treat = build("p2", [(("main", "f"), 25.0)])
        tree = diff_profiles(base, treat)
        column = add_delta_column(tree, 0, mode="ratio")
        assert tree.find_by_name("f")[0].inclusive[column] == 2.5

    def test_delta_column_requires_diff_tree(self, simple_profile):
        with pytest.raises(AnalysisError):
            add_delta_column(top_down(simple_profile), 0)

    def test_spark_rdd_vs_sql(self, spark_pair):
        rdd, sql = spark_pair
        tree = diff_profiles(rdd, sql)
        tags = summarize(tree)
        # The SQL engine contexts are new, the iterator chain disappears,
        # and the shared scaffolding shrinks (SQL is faster overall).
        assert tags.get(TAG_ADDED, 0) >= 3
        assert tags.get(TAG_DELETED, 0) >= 3
        assert tags.get(TAG_SHRANK, 0) >= 3
        root_delta = tree.root.delta(0)
        assert root_delta < 0
