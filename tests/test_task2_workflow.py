"""Task II (§VII-D) executed for real against the viewer API.

The control-group simulation models analyst *time*; this test grounds the
mechanism: the bottom-up flame graph answers all three Task II questions
— hot memory allocation, GC invocation, lock wait, and *where they are
called from* — in a handful of API calls, exactly the capability whose
absence costs the baseline tools an hour-plus.
"""

import pytest

from repro.analysis.transform import bottom_up
from repro.ide.mock_ide import MockIDE
from repro.profilers.workloads import go_service_profile


@pytest.fixture(scope="module")
def profile():
    return go_service_profile()


class TestTask2ViaBottomUp:
    def test_all_three_targets_surface_at_level_one(self, profile):
        tree = bottom_up(profile)
        level1 = [n.frame.name
                  for n in sorted(tree.root.children.values(),
                                  key=lambda n: -n.inclusive[0])[:5]]
        assert "runtime.mallocgc" in level1      # hot allocation
        assert "sync.(*Mutex).Lock" in level1    # lock wait
        names = {n.frame.name for n in tree.root.children.values()}
        assert "runtime.gcBgMarkWorker" in names  # GC invocation

    def test_callers_identified(self, profile):
        tree = bottom_up(profile)
        by_name = {n.frame.name: n for n in tree.root.children.values()}
        malloc_callers = {c.frame.name for c in
                          by_name["runtime.mallocgc"].children.values()}
        assert malloc_callers == {"decodeBody", "renderRows"}
        lock_callers = {c.frame.name for c in
                        by_name["sync.(*Mutex).Lock"].children.values()}
        assert lock_callers == {"sessionStore.Put", "sessionStore.Get"}

    def test_companion_metrics_present(self, profile):
        assert profile.total("alloc_ops") > 0
        assert profile.total("lock_wait") > 0

    def test_full_workflow_through_protocol(self, profile):
        """The analyst's clicks, as protocol messages."""
        ide = MockIDE()
        opened = ide.session.open(profile)
        # Switch to the bottom-up view.
        result = ide.request("view/switchShape", profileId=opened.id,
                             shape="bottom_up")
        assert result["blocks"] > 0
        # Search each target and follow its code link.
        for target, expected_file in (
                ("mallocgc", "malloc.go"),
                ("Mutex", "mutex.go"),
                ("gcBgMarkWorker", "mgc.go")):
            found = ide.request("view/search", profileId=opened.id,
                                pattern=target, shape="bottom_up")
            assert found["matches"], target
            ide.request("view/select", profileId=opened.id,
                        nodeRef=found["matches"][0])
            assert ide.state.open_file == expected_file

    def test_single_digit_interaction_count(self, profile):
        """EasyView's whole Task II is under ten protocol interactions —
        the mechanism behind the ~10-minute study cell."""
        ide = MockIDE()
        opened = ide.session.open(profile)
        interactions = 0
        ide.request("view/switchShape", profileId=opened.id,
                    shape="bottom_up")
        interactions += 1
        for target in ("mallocgc", "Mutex", "gcBgMarkWorker"):
            found = ide.request("view/search", profileId=opened.id,
                                pattern=target, shape="bottom_up")
            interactions += 1
            ide.request("view/select", profileId=opened.id,
                        nodeRef=found["matches"][0])
            interactions += 1
        assert interactions <= 8
