"""Tests for top-down, bottom-up, and flat transformations."""

import pytest

from repro import ProfileBuilder
from repro.analysis.transform import bottom_up, flat, top_down, transform
from repro.analysis.viewtree import line_merge_key


class TestTopDown:
    def test_total_preserved(self, simple_profile):
        tree = top_down(simple_profile)
        assert tree.total(0) == 1000.0

    def test_structure_mirrors_cct(self, simple_profile):
        tree = top_down(simple_profile)
        main = tree.find_by_name("main")[0]
        assert {c.frame.name for c in main.children.values()} == \
            {"work", "idle"}

    def test_sibling_contexts_merge_by_default(self):
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        builder.sample([("main", "m.c", 1), ("f", "m.c", 5)], {cpu: 10})
        builder.sample([("main", "m.c", 1), ("f", "m.c", 6)], {cpu: 20})
        tree = top_down(builder.build())
        fs = tree.find_by_name("f")
        assert len(fs) == 1
        assert fs[0].inclusive[0] == 30.0
        assert len(fs[0].sources) == 2

    def test_line_merge_key_keeps_contexts_apart(self):
        builder = ProfileBuilder()
        cpu = builder.metric("cpu")
        builder.sample([("main", "m.c", 1), ("f", "m.c", 5)], {cpu: 10})
        builder.sample([("main", "m.c", 1), ("f", "m.c", 6)], {cpu: 20})
        tree = top_down(builder.build(), key_fn=line_merge_key)
        assert len(tree.find_by_name("f")) == 2

    def test_exclusive_values_carried(self, simple_profile):
        tree = top_down(simple_profile)
        work = tree.find_by_name("work")[0]
        assert work.exclusive[0] == 200.0


class TestBottomUp:
    def test_first_level_is_exclusive_cost(self, simple_profile):
        tree = bottom_up(simple_profile)
        # 'work' has 200 exclusive; at depth 1 of the bottom-up view its
        # inclusive value is exactly that.
        level1 = {n.frame.name: n.inclusive[0]
                  for n in tree.root.children.values()}
        assert level1 == {"main": 0.0, "work": 200.0, "inner": 700.0,
                          "idle": 100.0} or level1 == {
                              "work": 200.0, "inner": 700.0, "idle": 100.0}

    def test_callers_hang_below(self, simple_profile):
        tree = bottom_up(simple_profile)
        inner = [n for n in tree.root.children.values()
                 if n.frame.name == "inner"][0]
        caller = list(inner.children.values())[0]
        assert caller.frame.name == "work"
        grandcaller = list(caller.children.values())[0]
        assert grandcaller.frame.name == "main"

    def test_total_preserved(self, simple_profile):
        tree = bottom_up(simple_profile)
        assert tree.total(0) == 1000.0

    def test_hot_leaf_aggregates_across_paths(self, lulesh):
        tree = bottom_up(lulesh)
        brk = [n for n in tree.root.children.values()
               if n.frame.name == "brk"]
        assert len(brk) == 1
        # brk is called from both malloc and free paths.
        callers = {c.frame.name for c in brk[0].children.values()}
        assert callers == {"malloc", "free"}


class TestFlat:
    def test_hierarchy_module_file_function(self, simple_profile):
        tree = flat(simple_profile)
        modules = list(tree.root.children.values())
        assert len(modules) == 1
        files = list(modules[0].children.values())
        assert files[0].frame.name == "app.c"
        functions = {f.frame.name for f in files[0].children.values()}
        assert functions == {"main", "work", "inner", "idle"}

    def test_flat_exclusive_totals_match(self, simple_profile):
        tree = flat(simple_profile)
        assert tree.root.exclusive[0] == 1000.0

    def test_recursion_not_double_counted(self, recursive_profile):
        tree = flat(recursive_profile)
        f_nodes = tree.find_by_name("f")
        assert len(f_nodes) == 1
        # f's inclusive = everything under the outermost f (100 total
        # program minus main's own 0) — not the sum over every recursion
        # level (which would exceed the program total).
        assert f_nodes[0].inclusive[0] <= 100.0
        assert f_nodes[0].exclusive[0] == 60.0  # 10 + 20 + 30


class TestDispatch:
    def test_transform_by_name(self, simple_profile):
        assert transform(simple_profile, "top_down").shape == "top_down"
        assert transform(simple_profile, "bottom_up").shape == "bottom_up"
        assert transform(simple_profile, "flat").shape == "flat"

    def test_unknown_shape_rejected(self, simple_profile):
        with pytest.raises(ValueError, match="unknown view shape"):
            transform(simple_profile, "sideways")


class TestBottomUpSources:
    def test_caller_rows_link_to_caller_lines(self, simple_profile):
        """Clicking a caller row in a bottom-up view must land on the
        caller's source line, not on the hot leaf that contributed."""
        tree = bottom_up(simple_profile)
        inner = [n for n in tree.root.children.values()
                 if n.frame.name == "inner"][0]
        work_row = [c for c in inner.children.values()
                    if c.frame.name == "work"][0]
        assert work_row.sources
        assert all(s.frame.name == "work" for s in work_row.sources)
        assert work_row.sources[0].frame.line == 42
