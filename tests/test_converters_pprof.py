"""Tests for the pprof converter (both directions)."""

import pytest

from repro.converters.pprof import parse, to_pprof
from repro.errors import FormatError
from repro.proto import pprof_pb


def tiny_pprof(**overrides) -> pprof_pb.Profile:
    profile = pprof_pb.Profile()
    profile.string_table = ["", "cpu", "nanoseconds", "main", "work",
                            "app.go", "/usr/bin/svc", "alloc", "bytes"]
    profile.sample_type = [pprof_pb.ValueType(type=1, unit=2),
                           pprof_pb.ValueType(type=7, unit=8)]
    profile.mapping = [pprof_pb.Mapping(id=1, filename=6)]
    profile.function = [
        pprof_pb.Function(id=1, name=3, filename=5, start_line=5),
        pprof_pb.Function(id=2, name=4, filename=5, start_line=30),
    ]
    profile.location = [
        pprof_pb.Location(id=1, mapping_id=1, address=0x100,
                          line=[pprof_pb.Line(function_id=1, line=7)]),
        pprof_pb.Location(id=2, mapping_id=1, address=0x200,
                          line=[pprof_pb.Line(function_id=2, line=33)]),
    ]
    profile.sample = [
        pprof_pb.Sample(location_id=[2, 1], value=[900, 64]),
        pprof_pb.Sample(location_id=[1], value=[100, 0]),
    ]
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


class TestParse:
    def test_metrics_from_sample_types(self):
        profile = parse(pprof_pb.dumps(tiny_pprof()))
        assert profile.schema.names() == ["cpu", "alloc"]
        assert profile.schema[0].unit == "nanoseconds"

    def test_stacks_reversed_to_root_first(self):
        profile = parse(pprof_pb.dumps(tiny_pprof()))
        work = profile.find_by_name("work")[0]
        assert [f.name for f in work.call_path()] == ["main", "work"]

    def test_values_accumulated(self):
        profile = parse(pprof_pb.dumps(tiny_pprof()))
        assert profile.total("cpu") == 1000.0
        assert profile.total("alloc") == 64.0

    def test_repeated_stacks_hit_leaf_cache(self):
        message = tiny_pprof()
        message.sample.append(pprof_pb.Sample(location_id=[2, 1],
                                              value=[50, 0]))
        profile = parse(pprof_pb.dumps(message))
        work = profile.find_by_name("work")[0]
        assert work.exclusive(0) == 950.0
        assert len(profile.find_by_name("work")) == 1

    def test_module_from_mapping_basename(self):
        profile = parse(pprof_pb.dumps(tiny_pprof()))
        assert profile.find_by_name("main")[0].frame.module == "svc"

    def test_inlined_frames_expand(self):
        message = tiny_pprof()
        # One location carrying two lines = an inlined pair.
        message.location[0].line.append(pprof_pb.Line(function_id=2,
                                                      line=40))
        profile = parse(pprof_pb.dumps(message))
        # Inline chain: callers-first means work (outer) then main (inner)?
        # pprof stores innermost-first, so reversed gives the caller first.
        main = profile.find_by_name("main")
        assert main  # still resolvable

    def test_addresses_without_functions(self):
        message = tiny_pprof()
        message.location.append(pprof_pb.Location(id=3, mapping_id=1,
                                                  address=0xDEAD))
        message.sample.append(pprof_pb.Sample(location_id=[3], value=[5, 0]))
        profile = parse(pprof_pb.dumps(message))
        assert profile.find_by_name("0xdead")

    def test_undefined_location_rejected(self):
        message = tiny_pprof()
        message.sample.append(pprof_pb.Sample(location_id=[99], value=[1, 0]))
        with pytest.raises(FormatError, match="undefined location"):
            parse(pprof_pb.dumps(message))

    def test_garbage_rejected(self):
        with pytest.raises(FormatError):
            parse(b"not a profile at all")

    def test_corpus_parses(self, small_pprof_bytes):
        profile = parse(small_pprof_bytes)
        assert profile.total("samples") > 0
        assert profile.cct.max_depth() >= 3


class TestToPprof:
    def test_roundtrip_totals(self, simple_profile):
        message = to_pprof(simple_profile)
        back = parse(pprof_pb.dumps(message))
        assert back.total("cpu") == simple_profile.total("cpu")
        assert back.total("alloc") == simple_profile.total("alloc")

    def test_roundtrip_structure(self, simple_profile):
        back = parse(pprof_pb.dumps(to_pprof(simple_profile)))
        work = back.find_by_name("work")[0]
        assert [f.name for f in work.call_path()] == ["main", "work"]

    def test_metric_subset(self, simple_profile):
        message = to_pprof(simple_profile, metric_names=["alloc"])
        assert len(message.sample_type) == 1
        back = parse(pprof_pb.dumps(message))
        assert back.total("alloc") == 64.0
