"""Lint the repository's own artifacts (``-m lint_self``).

Self-application of ProfLint: every profile fixture the test suite builds,
every preset formula the viewer ships, and every formula literal that
appears in ``examples/`` and ``benchmarks/`` must come out free of
error-severity findings.  Run just this sweep with::

    pytest -m lint_self
"""

import os
import re

import pytest

from repro.analysis.presets import PRESETS
from repro.lint import Severity, lint_formula, lint_profile

pytestmark = pytest.mark.lint_self

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: formula="..." keyword arguments and derive(..., "name", "formula") calls.
_FORMULA_KWARG = re.compile(r'formula\s*=\s*"([^"]+)"')
_DERIVE_CALL = re.compile(
    r'derive\([^,()]*,\s*"[^"]+",\s*"([^"]+)"')


def errors_of(diagnostics):
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def harvest_formulas():
    """Every formula literal in examples/ and benchmarks/ sources."""
    found = []
    for directory in ("examples", "benchmarks"):
        root = os.path.join(REPO_ROOT, directory)
        for name in sorted(os.listdir(root)):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for pattern in (_FORMULA_KWARG, _DERIVE_CALL):
                for match in pattern.finditer(text):
                    found.append(("%s/%s" % (directory, name),
                                  match.group(1)))
    return found


class TestLintSelf:
    def test_harvest_finds_formulas(self):
        sources = {subject for subject, _ in harvest_formulas()}
        assert "examples/quickstart.py" in sources
        assert any(s.startswith("benchmarks/") for s in sources)

    def test_example_and_benchmark_formulas_are_clean(self):
        # metrics=None: the profiles these formulas run against are built
        # inside the scripts, so only structural rules apply here.
        problems = []
        for subject, formula in harvest_formulas():
            for diag in errors_of(lint_formula(formula, metrics=None)):
                problems.append("%s: %s" % (subject, diag.format()))
        assert not problems, "\n".join(problems)

    def test_preset_formulas_are_clean(self):
        for preset in PRESETS.values():
            diags = errors_of(lint_formula(preset.formula, metrics=None))
            assert not diags, "%s: %s" % (preset.name,
                                          [d.format() for d in diags])

    def test_handbuilt_fixtures_are_clean(self, simple_profile,
                                          recursive_profile):
        for profile in (simple_profile, recursive_profile):
            assert errors_of(lint_profile(profile)) == []

    def test_workload_fixtures_are_clean(self, grpc_profile, lulesh,
                                         lulesh_reuse, spark_pair):
        for profile in (grpc_profile, lulesh, lulesh_reuse) + spark_pair:
            diags = errors_of(lint_profile(profile))
            assert diags == [], [d.format() for d in diags]

    def test_synthetic_pprof_corpus_is_clean(self, small_pprof_bytes):
        from repro.lint import lint_pprof_bytes
        assert errors_of(lint_pprof_bytes(small_pprof_bytes)) == []
