"""Memory-scaling study (the ScaAnalyzer workflow the paper cites).

Run with::

    python examples/scaling_study.py

Profiles the same MPI-style application at 2, 4, 8, and 16 ranks, then
uses EasyView's division-based differentials (§V-B) and the scale-sweep
classifier to find the memory-scaling losses: contexts whose per-rank
memory grows with the rank count instead of staying flat.
"""

from repro.analysis.scaling import scaling_losses, scaling_report, scaling_tree
from repro.profilers.workloads import scaling_workload
from repro.viz.terminal import render_tree_text


def main():
    ranks = (2, 4, 8, 16)
    print("profiling at %s ranks..." % (ranks,))
    sweep = [(float(r), scaling_workload(r)) for r in ranks]

    print("\n== per-context growth exponents (value ∝ ranks^α) ==")
    for verdict in scaling_report(sweep, "alloc_bytes",
                                  expected_exponent=0.0):
        series = " ".join("%8.0f" % v for v in verdict.values)
        print("  %-30s α=%+.2f  [%s]" % (verdict.label[:30],
                                         verdict.exponent, series))

    losses = scaling_losses(sweep, "alloc_bytes", expected_exponent=0.0)
    print("\n== scaling losses ==")
    for verdict in losses:
        print("  " + verdict.describe())

    print("\n== division-based differential (2 ranks vs 16 ranks) ==")
    tree = scaling_tree(sweep[0][1], sweep[-1][1], metric="alloc_bytes")
    ratio_column = tree.schema.index_of("alloc_bytes:ratio")
    print(render_tree_text(tree, metric_index=ratio_column, max_depth=3))
    print("(values are 16-rank / 2-rank memory ratios; flat contexts "
          "read 1.0, the halo buffers read 8.0)")


if __name__ == "__main__":
    main()
