"""Format interoperability tour: one analysis over many profiler formats.

Run with::

    python examples/convert_anything.py

Writes the same logical profile in four foreign formats (collapsed stacks,
speedscope JSON, Chrome cpuprofile, pprof binary), opens each through the
auto-detecting converter registry, and shows that the analysis results
agree — the "generic representation" promise of §IV.
"""

import json
import os
import tempfile

from repro.converters import open_profile
from repro.proto import pprof_pb
from repro.viz.terminal import render_summary
from repro.analysis.transform import top_down


def write_fixtures(directory):
    """The same main→{compute→hot, io} profile in four formats."""
    paths = {}

    # 1. Brendan Gregg folded stacks.
    paths["collapsed"] = os.path.join(directory, "stacks.folded")
    with open(paths["collapsed"], "w") as handle:
        handle.write("main;compute;hot 400\nmain;io 100\n")

    # 2. speedscope JSON.
    paths["speedscope"] = os.path.join(directory, "p.speedscope.json")
    with open(paths["speedscope"], "w") as handle:
        json.dump({
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": "main"}, {"name": "compute"},
                                  {"name": "hot"}, {"name": "io"}]},
            "profiles": [{"type": "sampled", "name": "main thread",
                          "unit": "none",
                          "samples": [[0, 1, 2], [0, 3]],
                          "weights": [400, 100]}],
        }, handle)

    # 3. Chrome DevTools cpuprofile.
    paths["chrome"] = os.path.join(directory, "p.cpuprofile")
    with open(paths["chrome"], "w") as handle:
        json.dump({
            "nodes": [
                {"id": 1, "callFrame": {"functionName": "(root)",
                                        "url": "", "lineNumber": -1},
                 "children": [2]},
                {"id": 2, "callFrame": {"functionName": "main",
                                        "url": "app.js", "lineNumber": 0},
                 "children": [3, 5]},
                {"id": 3, "callFrame": {"functionName": "compute",
                                        "url": "app.js", "lineNumber": 9},
                 "children": [4]},
                {"id": 4, "callFrame": {"functionName": "hot",
                                        "url": "app.js", "lineNumber": 20}},
                {"id": 5, "callFrame": {"functionName": "io",
                                        "url": "app.js", "lineNumber": 40}},
            ],
            "samples": [4] * 400 + [5] * 100,
            "timeDeltas": [1] * 500,
        }, handle)

    # 4. pprof binary (gzipped protobuf), built with the wire codec.
    message = pprof_pb.Profile()
    message.string_table = ["", "samples", "count", "main", "compute",
                            "hot", "io", "app.go"]
    message.sample_type = [pprof_pb.ValueType(type=1, unit=2)]
    for i, name_index in enumerate((3, 4, 5, 6), start=1):
        message.function.append(pprof_pb.Function(id=i, name=name_index,
                                                  filename=7))
        message.location.append(pprof_pb.Location(
            id=i, line=[pprof_pb.Line(function_id=i, line=10 * i)]))
    message.sample = [
        pprof_pb.Sample(location_id=[3, 2, 1], value=[400]),  # leaf first
        pprof_pb.Sample(location_id=[4, 1], value=[100]),
    ]
    paths["pprof"] = os.path.join(directory, "p.pb.gz")
    with open(paths["pprof"], "wb") as handle:
        handle.write(pprof_pb.dumps(message))
    return paths


def main():
    with tempfile.TemporaryDirectory() as directory:
        paths = write_fixtures(directory)
        print("wrote fixtures:",
              ", ".join(os.path.basename(p) for p in paths.values()))
        for format_name, path in paths.items():
            profile = open_profile(path)   # format auto-detected
            tree = top_down(profile)
            hot = tree.find_by_name("hot")[0]
            share = hot.inclusive[0] / tree.total(0)
            print("\n-- %s (detected tool: %s)" % (format_name,
                                                   profile.meta.tool))
            print(render_summary(tree, count=3))
            print("   'hot' holds %.0f%% of the total in every format"
                  % (share * 100))
            assert abs(share - 0.8) < 0.01, share


if __name__ == "__main__":
    main()
