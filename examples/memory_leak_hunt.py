"""The cloud case study (§VII-C1 / Fig. 4): hunting a memory leak in a
gRPC client from periodic heap snapshots.

Run with::

    python examples/memory_leak_hunt.py

The workload mirrors the paper's rpcx-benchmark client: PProf-style heap
snapshots are captured periodically; EasyView aggregates them, draws a
per-context histogram for any frame you click, and the leak detector
flags allocation contexts whose live memory never reclaims.
"""

from repro.analysis.aggregate import snapshot_series, snapshot_totals
from repro.analysis.leak import detect_leaks
from repro.ide.mock_ide import MockIDE
from repro.profilers.workloads import grpc_client_profile
from repro.viz.histogram import histogram_text, sparkline, trend_label
from repro.viz.html import HtmlReport
from repro.viz.flamegraph import FlameGraph


def main():
    print("capturing %d heap snapshots of the gRPC client..." % 20)
    profile = grpc_client_profile(clients=50, snapshots=20)

    print("\n== whole-heap live bytes over time (timeline strip) ==")
    from repro.viz.timeline import timeline_text
    print(timeline_text(profile, "inuse_bytes", width=40))

    print("\n== per-context verdicts ==")
    verdicts = detect_leaks(profile, "inuse_bytes", min_peak=1.0)
    for verdict in verdicts:
        print("  %s %s" % (sparkline(verdict.series), verdict.describe()))

    leaky = [v for v in verdicts if v.suspicious]
    print("\n== drill into the top suspect ==")
    suspect = leaky[0]
    print(histogram_text(suspect.series, width=36))
    print("trend: %s" % trend_label(suspect.series))

    print("\n== jump to the allocation site in the IDE ==")
    ide = MockIDE()
    opened = ide.session.open(profile)
    tree = ide.session.view(opened.id, "top_down")
    frame_node = tree.find_by_name(suspect.context.frame.name)[0]
    link = ide.session.select(opened.id, frame_node)
    print("  code link -> %s:%d  (%s)"
          % (link.file, link.line, link.context))
    path = " -> ".join(f.name for f in suspect.context.call_path())
    print("  allocation path: %s" % path)

    report = HtmlReport("gRPC client memory-leak hunt")
    report.add_heading("Aggregate memory profile")
    report.add_flamegraph(FlameGraph.top_down(profile, metric="alloc_bytes"))
    report.add_heading("Suspect: %s" % suspect.context.frame.label())
    report.add_histogram(suspect.series, title="live bytes per snapshot")
    report.add_paragraph(suspect.describe())
    out = __file__.replace(".py", ".html")
    report.save(out)
    print("\nwrote %s" % out)


if __name__ == "__main__":
    main()
