"""The HPC case study (§VII-C2 / Figs. 6-7): combining two profilers'
outputs on LULESH for hotspot and locality analysis.

Run with::

    python examples/hpc_locality_tour.py

Step 1 uses an HPCToolkit-style CPU profile: the bottom-up flame graph
exposes ``brk`` (libc memory management) as the hotspot, motivating the
TCMalloc swap.  Step 2 uses a DrCCTProf-style use/reuse profile: the
correlated flame graphs expose the fusable loop pair, motivating loop
fusion.  Both optimizations' effects are then measured.
"""

from repro.analysis.transform import bottom_up
from repro.profilers.workloads import (lulesh_fused_profile, lulesh_profile,
                                       lulesh_reuse_profile)
from repro.viz.flamegraph import CorrelatedView, FlameGraph
from repro.viz.terminal import render_tree_text


def step1_hotspot():
    print("== step 1: where does the time go? (HPCToolkit profile) ==")
    profile = lulesh_profile(scale=8)
    tree = bottom_up(profile)
    print(render_tree_text(tree, max_depth=3, max_children=4))

    hottest = max(tree.root.children.values(), key=lambda n: n.inclusive[0])
    share = hottest.inclusive[0] / tree.total(0)
    print("hottest leaf: %s (%.0f%% of cpu time)"
          % (hottest.frame.label(), share * 100))
    print("called from: %s"
          % ", ".join(c.frame.name for c in hottest.children.values()))

    swapped = lulesh_profile(scale=8, allocator="tcmalloc")
    speedup = profile.total("cpu_time") / swapped.total("cpu_time")
    print("\n-> swap libc malloc for TCMalloc: %.2fx whole-program speedup"
          % speedup)
    return profile


def step2_locality():
    print("\n== step 2: why are the loops slow? (DrCCTProf profile) ==")
    profile = lulesh_reuse_profile(scale=4)
    view = CorrelatedView(profile)

    allocations = view.allocations()
    print("allocations by reuse volume:")
    for node, volume in allocations[:3]:
        print("  %-30s %g accesses" % (node.frame.name, volume))

    # Click ①: the hottest allocation.
    uses = view.select_allocation(allocations[0][0])
    # Click ②: its hottest use.
    reuses = view.select_use(uses[0][0])
    print("\ncorrelated panes after selecting %s -> %s:"
          % (allocations[0][0].frame.name, uses[0][0].frame.name))
    print(view.render_text(top=3))

    print("\nguidance:")
    for line in view.guidance(top=2):
        print("  " + line)

    before = lulesh_profile(scale=4).total("cpu_time")
    after = lulesh_fused_profile(scale=4).total("cpu_time")
    print("\n-> fuse the flagged loops: %.2fx additional speedup"
          % (before / after))


def step3_unified_view():
    print("\n== step 3: both profilers in one unified view ==")
    from repro.analysis.combine import combine
    merged = combine([lulesh_profile(scale=4), lulesh_reuse_profile(scale=4)],
                     tool_names=["hpctoolkit", "drcctprof"])
    print("combined tool: %s; metrics: %s"
          % (merged.meta.tool, ", ".join(merged.schema.names())))
    hot = merged.find_by_name("CalcHourglassForceForElems")[0]
    from repro.analysis.metrics import inclusive_value
    print("CalcHourglassForceForElems carries both tools' data: "
          "%.1f ms cpu and the reuse pairs below it"
          % (inclusive_value(merged, hot, "cpu_time") / 1e6))


def main():
    profile = step1_hotspot()
    step2_locality()
    step3_unified_view()

    out = __file__.replace(".py", ".svg")
    with open(out, "w") as handle:
        handle.write(FlameGraph.bottom_up(profile).to_svg(
            title="LULESH bottom-up (HPCToolkit)"))
    print("\nwrote %s" % out)


if __name__ == "__main__":
    main()
