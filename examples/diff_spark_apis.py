"""The differential case study (Fig. 3): Spark RDD APIs vs SQL Dataset
APIs, as captured by Async-Profiler on SparkBench.

Run with::

    python examples/diff_spark_apis.py

P1 runs the job through the RDD APIs, P2 through SQL Datasets.  The
differential flame graph tags every context — [A]dded, [D]eleted, [+]
grew, [-] shrank — and quantifies the change, showing the SQL engine's win
comes from bypassing the costly shuffle and iterator pipeline.
"""

from repro.analysis.diff import add_delta_column, diff_profiles, summarize
from repro.profilers.workloads import spark_profile
from repro.viz.flamegraph import FlameGraph
from repro.viz.html import HtmlReport
from repro.viz.terminal import render_tree_text


def main():
    print("profiling the RDD variant (P1)...")
    rdd = spark_profile("rdd")
    print("profiling the SQL Dataset variant (P2)...")
    sql = spark_profile("sql")

    ratio = rdd.total("cpu") / sql.total("cpu")
    print("\nP1 total %.1f ms, P2 total %.1f ms — SQL is %.1fx faster"
          % (rdd.total("cpu") / 1e6, sql.total("cpu") / 1e6, ratio))

    print("\n== differential view (P2 relative to P1) ==")
    tree = diff_profiles(rdd, sql)
    print(render_tree_text(tree, max_depth=10, max_children=6))
    print("\ntag counts:", summarize(tree))

    print("\n== what appeared, what disappeared ==")
    added = [n for n in tree.nodes() if n.tag == "A"]
    deleted = [n for n in tree.nodes() if n.tag == "D"]
    print("added (the SQL engine):")
    for node in added:
        print("  [A] %s" % node.frame.name)
    print("deleted (the RDD iterator/shuffle pipeline):")
    for node in deleted:
        print("  [D] %s (was %.1f ms)"
              % (node.frame.name, node.baseline.get(0, 0.0) / 1e6))

    print("\n== quantified: biggest savings ==")
    delta = add_delta_column(tree, 0, mode="subtract")
    savers = sorted((n for n in tree.nodes() if n.parent is not None),
                    key=lambda n: n.inclusive.get(delta, 0.0))
    for node in savers[:5]:
        print("  %-45s %+.1f ms" % (node.frame.label()[:45],
                                    node.inclusive[delta] / 1e6))

    report = HtmlReport("Spark: RDD vs SQL Dataset APIs")
    report.add_paragraph("Differential flame graph; red grew, blue shrank.")
    report.add_flamegraph(FlameGraph.differential(rdd, sql))
    out = __file__.replace(".py", ".html")
    report.save(out)
    print("\nwrote %s" % out)


if __name__ == "__main__":
    main()
