"""Quickstart: build a profile, analyze it, render it, annotate source.

Run with::

    python examples/quickstart.py

This walks the core API end to end: the data builder (how profilers emit
EasyView data), the three view shapes, search, derived metrics, and the
IDE annotations, all on a small hand-made profile.
"""

from repro import ProfileBuilder
from repro.analysis.formula import derive
from repro.analysis.prune import hot_path
from repro.ide.annotations import build_code_lenses, build_hover
from repro.viz.flamegraph import FlameGraph
from repro.viz.terminal import render_summary
from repro.viz.treetable import TreeTable


def build_example_profile():
    """A profiler's-eye view: declare metrics, then stream samples."""
    builder = ProfileBuilder(tool="quickstart")
    cpu = builder.metric("cpu", unit="nanoseconds")
    allocations = builder.metric("alloc", unit="bytes")

    # Root-first call stacks with exclusive metric values.
    builder.sample([("main", "app.py", 3), ("load_config", "config.py", 10)],
                   {cpu: 4_000_000})
    builder.sample([("main", "app.py", 3), ("serve", "server.py", 22),
                    ("handle_request", "server.py", 40),
                    ("render_json", "codec.py", 8)],
                   {cpu: 95_000_000, allocations: 3_500_000})
    builder.sample([("main", "app.py", 3), ("serve", "server.py", 22),
                    ("handle_request", "server.py", 40),
                    ("query_db", "db.py", 31)],
                   {cpu: 61_000_000, allocations: 400_000})
    builder.sample([("main", "app.py", 3), ("serve", "server.py", 22),
                    ("log_access", "logging.py", 77)],
                   {cpu: 9_000_000, allocations: 120_000})
    # Dispatch overhead measured in handle_request itself.
    builder.sample([("main", "app.py", 3), ("serve", "server.py", 22),
                    ("handle_request", "server.py", 40)],
                   {cpu: 6_000_000})
    return builder.build()


def main():
    profile = build_example_profile()
    print("== profile summary ==")
    for key, value in profile.summary().items():
        print("  %s: %s" % (key, value))

    print("\n== top-down flame graph (terminal rendering) ==")
    graph = FlameGraph.top_down(profile, metric="cpu")
    print(graph.to_text(width=78))

    print("\n== hottest contexts ==")
    print(render_summary(graph.tree))

    print("\n== hot path ==")
    for node in hot_path(graph.tree):
        print("  -> %s" % node.frame.label())

    print("\n== search: everything matching 'request' ==")
    for node in graph.search("request"):
        print("  %s (%.1f%% of cpu)" % (
            node.frame.label(),
            100.0 * node.inclusive[0] / graph.tree.total(0)))

    print("\n== derived metric: bytes allocated per cpu millisecond ==")
    index = derive(graph.tree, "bytes_per_ms", "alloc / (cpu / 1000000)")
    for node in graph.tree.top(index, count=3):
        print("  %-40s %.0f" % (node.frame.label(),
                                node.inclusive[index]))

    print("\n== tree table (bottom-up, all metrics) ==")
    table = TreeTable(FlameGraph.bottom_up(profile).tree)
    table.expand_hot_path()
    print(table.render_text(max_rows=12))

    print("\n== IDE annotations for server.py ==")
    for lens in build_code_lenses(graph.tree, file="server.py"):
        print("  server.py:%d  ⟪%s⟫" % (lens.line, lens.text))
    hover = build_hover(graph.tree, "codec.py", 8,
                        tips=["JSON rendering dominates; consider a "
                              "streaming encoder"])
    print("\n".join("  " + line for line in hover.lines))

    # Write the SVG next to this script for a browser look.
    out = __file__.replace(".py", ".svg")
    with open(out, "w") as handle:
        handle.write(graph.to_svg(title="quickstart profile"))
    print("\nwrote %s" % out)


if __name__ == "__main__":
    main()
