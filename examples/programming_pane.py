"""The programming pane (§V-B): customize the analysis with user scripts.

Run with::

    python examples/programming_pane.py

EasyView's GUI exposes a pane where users write Python that runs against
the viewer's internal trees.  This example drives the same machinery: a
script that derives a new metric, one that registers node-visit callbacks
(elision and renaming) which the next transform applies, the preset
catalogue for common hardware-counter formulas, and per-thread splitting.
"""

from repro import ProfileBuilder
from repro.analysis.pane import ProgrammingPane
from repro.analysis.presets import apply_all, applicable_presets
from repro.analysis.threads import imbalance, split_by_thread
from repro.analysis.transform import top_down
from repro.core.frame import FrameKind, intern_frame
from repro.viz.terminal import render_tree_text


def build_hw_profile():
    """A perf-style profile with hardware-counter metrics and threads."""
    builder = ProfileBuilder(tool="perf")
    cycles = builder.metric("cycles", unit="count")
    instructions = builder.metric("instructions", unit="count")
    misses = builder.metric("cache_misses", unit="count")

    def thread(name):
        return intern_frame(name, kind=FrameKind.THREAD)

    builder.sample([thread("worker-0"), ("main", "app.c", 3),
                    ("transform", "app.c", 40)],
                   {cycles: 9e6, instructions: 2.2e6, misses: 60_000})
    builder.sample([thread("worker-0"), ("main", "app.c", 3),
                    ("checksum", "app.c", 80)],
                   {cycles: 2e6, instructions: 1.9e6, misses: 800})
    builder.sample([thread("worker-1"), ("main", "app.c", 3),
                    ("transform", "app.c", 40)],
                   {cycles: 4e6, instructions: 1.0e6, misses: 26_000})
    return builder.build()


def main():
    profile = build_hw_profile()
    tree = top_down(profile)

    print("== preset catalogue ==")
    for preset in applicable_presets(tree):
        print("  %-12s %s" % (preset.name, preset.formula))
    applied = apply_all(tree)
    print("applied:", ", ".join(applied))

    print("\n== pane script: find the cache-hostile contexts ==")
    pane = ProgrammingPane(tree)
    outcome = pane.run(
        "bad = [n for n in nodes()\n"
        "       if value(n, 'instructions') > 0\n"
        "       and value(n, 'mpki') > 10]\n"
        "for n in sorted(bad, key=lambda n: -value(n, 'mpki')):\n"
        "    emit('%-30s mpki=%.1f cpi=%.2f'\n"
        "         % (n.frame.name, value(n, 'mpki'), value(n, 'cpi')))\n"
        "result = len(bad)\n")
    for line in outcome.output:
        print("  " + line)
    print("  (%d flagged)" % outcome.result)

    print("\n== pane script: reshape the view ==")
    outcome = pane.run(
        "elide(lambda node: node.frame.name == 'checksum')\n"
        "emit('hiding checksum contexts')\n")
    reshaped = top_down(profile, customization=outcome.customization)
    print(render_tree_text(reshaped, max_depth=3))

    print("\n== per-thread view ==")
    print("imbalance on cycles: %.2f (max/mean)"
          % imbalance(profile, "cycles"))
    for name, part in split_by_thread(profile).items():
        print("  %-10s %.0f cycles" % (name, part.total("cycles")))


if __name__ == "__main__":
    main()
