"""Profile real Python code with the built-in profilers and explore the
result through the full EasyView stack.

Run with::

    python examples/profile_yourself.py

Uses the tracing profiler (exact call accounting via ``sys.setprofile``)
and the heap-snapshot profiler (``tracemalloc``) on a small workload, then
opens both profiles in the viewer session with a scripted IDE attached —
the same protocol path the VSCode extension would drive.
"""

import json

from repro.analysis.leak import detect_leaks
from repro.ide.mock_ide import MockIDE
from repro.profilers.memsnap import snapshot_workload
from repro.profilers.tracing import profile_callable
from repro.viz.flamegraph import FlameGraph


# --- a deliberately imperfect workload --------------------------------------

_CACHE = []


def parse_records(n):
    """CPU-ish work: parse and re-serialize some JSON records."""
    blob = json.dumps({"values": list(range(50))})
    return [json.loads(blob) for _ in range(n)]


def remember_forever(n):
    """Leak-ish work: append buffers to a module-level cache."""
    for _ in range(n):
        _CACHE.append(bytearray(16 * 1024))


def workload():
    records = parse_records(400)
    remember_forever(20)
    return len(records)


# -----------------------------------------------------------------------------


def main():
    print("== tracing profiler (exact call accounting) ==")
    result, cpu_profile = profile_callable(workload)
    print("workload returned %d; %d contexts captured"
          % (result, cpu_profile.node_count()))

    graph = FlameGraph.top_down(cpu_profile, metric="wall_time")
    print(graph.to_text(width=78))

    print("\n== open it in the (scripted) IDE ==")
    ide = MockIDE()
    opened = ide.session.open(cpu_profile)
    matches = ide.session.view(opened.id, "top_down")
    from repro.analysis.query import search
    hot = search(matches, "parse_records")[0]
    link = ide.session.select(opened.id, hot)
    print("clicking parse_records code-links to %s:%d"
          % (link.file, link.line))

    print("\n== heap-snapshot profiler (leak check) ==")
    heap_profile = snapshot_workload(lambda step: remember_forever(5),
                                     steps=6)
    verdicts = detect_leaks(heap_profile, "inuse_bytes",
                            min_peak=32 * 1024)
    for verdict in verdicts[:3]:
        print("  " + verdict.describe())
    flagged = [v for v in verdicts if v.suspicious]
    if flagged:
        path = flagged[0].context.call_path()
        print("top suspect's allocation path tail: ... %s"
              % " -> ".join(str(f.location) for f in path[-2:]))


if __name__ == "__main__":
    main()
